"""Session fixtures for the figure/table benchmarks.

Expensive shared artifacts (GNN stand-ins, the SuiteSparse-like collection,
LiteForm's trained models) are built once per session.  Workload sizes can
be scaled with environment variables:

* ``REPRO_BENCH_COLLECTION`` — matrices in the Fig. 7/9 sweep (default 48)
* ``REPRO_BENCH_TRAIN``      — matrices used for model training / Tables
  5-6 (default 150, paper used 514)
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.harness import BENCH_J_VALUES, COLLECTION_SIZE, TRAIN_SIZE
from repro.core import LiteForm, generate_training_data
from repro.core.training import TrainingData
from repro.gpu import SimulatedDevice
from repro.matrices import GNN_DATASETS, SuiteSparseLikeCollection, make_gnn_standin


@pytest.fixture(scope="session")
def device() -> SimulatedDevice:
    return SimulatedDevice()


@pytest.fixture(scope="session")
def gnn_graphs() -> dict:
    return {name: make_gnn_standin(name, seed=1) for name in GNN_DATASETS}


@pytest.fixture(scope="session")
def collection() -> list:
    coll = SuiteSparseLikeCollection(size=COLLECTION_SIZE, max_rows=30_000, seed=404)
    return list(coll)


@pytest.fixture(scope="session")
def training_data() -> TrainingData:
    coll = SuiteSparseLikeCollection(size=TRAIN_SIZE, max_rows=30_000, seed=2025)
    return generate_training_data(coll, J_values=BENCH_J_VALUES)


@pytest.fixture(scope="session")
def liteform(training_data) -> LiteForm:
    return LiteForm().fit(training_data)


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(31337)
