"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not in the paper's evaluation; they isolate the contribution of
each CELL/LiteForm mechanism on the simulated device:

* folded rows (Section 5.3) vs leaving long rows at their natural width;
* per-partition bucket-width sets (CELL) vs a uniform set (hyb);
* the atomic-aware cost model vs the paper's simplified Eq. 7, and
  Algorithm 3's binary search vs an exhaustive width sweep;
* density features vs raw-count features for the partition predictor
  (the Section 5.2 claim).
"""

import numpy as np
import pytest

from repro.bench import BenchTable, geomean
from repro.core import (
    build_buckets,
    exhaustive_width_search,
    matrix_cost_profiles,
)
from repro.core.training import compose_cell_for_partitions
from repro.formats import CELLFormat
from repro.kernels import CELLSpMM
from repro.matrices import (
    mixture_matrix,
    power_law_graph,
    with_dense_rows,
)
from repro.ml import RandomForestClassifier, accuracy_score, train_test_split

J = 128


@pytest.fixture(scope="module")
def skewed_matrices():
    return {
        "power_law": power_law_graph(8000, 12, seed=1),
        "dense_rows": with_dense_rows(
            power_law_graph(6000, 8, seed=2), 4, row_density=0.3, seed=3
        ),
        "mixture": mixture_matrix(6000, avg_degree=16, seed=4),
    }


def test_ablation_folding(benchmark, skewed_matrices, device):
    """Folded rows let the width search cap long rows; without folding the
    widest bucket must fit the longest row, inflating padding."""

    def run():
        rows = []
        kernel = CELLSpMM()
        for name, A in skewed_matrices.items():
            prof = matrix_cost_profiles(A, 1)[0]
            capped_exp = build_buckets(prof, J).max_exp
            folded = CELLFormat.from_csr(A, num_partitions=1, max_widths=1 << capped_exp)
            natural = CELLFormat.from_csr(A, num_partitions=1)  # no folding occurs
            t_folded = kernel.measure(folded, J, device).time_s
            t_natural = kernel.measure(natural, J, device).time_s
            rows.append((name, natural.padding_ratio, folded.padding_ratio, t_natural / t_folded))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = BenchTable(
        "Ablation: folded rows (width cap) vs natural maximum width",
        ["matrix", "pad_natural", "pad_folded", "speedup_from_folding"],
    )
    for r in rows:
        table.add_row(*r)
    table.emit()
    speedups = [r[3] for r in rows]
    assert geomean(speedups) > 1.1  # folding pays on skewed inputs
    assert max(speedups) > 1.2


def test_ablation_per_partition_widths(benchmark, device):
    """CELL's per-partition width sets vs hyb's uniform set on a matrix
    whose halves have very different row-length distributions."""
    import scipy.sparse as sp

    from repro.formats.base import as_csr

    left = sp.random(6000, 3000, density=0.02, random_state=1)
    right = sp.random(6000, 3000, density=0.0005, random_state=2)
    A = as_csr(sp.hstack([left, right]).tocsr().astype(np.float32))

    def run():
        kernel = CELLSpMM()
        per_partition = compose_cell_for_partitions(A, 2, J)
        uniform_width = max(per_partition.max_widths)
        uniform = CELLFormat.from_csr(A, num_partitions=2, max_widths=uniform_width)
        t_cell = kernel.measure(per_partition, J, device).time_s
        t_hyb = kernel.measure(uniform, J, device).time_s
        return per_partition.max_widths, uniform_width, t_hyb / t_cell

    widths, uniform_width, speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nper-partition widths={widths} uniform width={uniform_width} "
        f"speedup from flexibility={speedup:.3f}x"
    )
    assert widths[0] != widths[1], "halves should want different widths"
    assert speedup >= 0.99  # flexibility never loses; usually wins


def test_ablation_cost_model_variants(benchmark, skewed_matrices, device):
    """Atomic-aware cost (default) vs the paper's simplified Eq. 7, and
    Algorithm 3 vs exhaustive sweep, scored by delivered kernel time."""

    def run():
        kernel = CELLSpMM()
        rows = []
        for name, A in skewed_matrices.items():
            prof = matrix_cost_profiles(A, 1)[0]
            times = {}
            evals = {}
            for label, kwargs, searcher in (
                ("alg3_atomic", {}, build_buckets),
                ("alg3_eq7", {"legacy_eq7": True}, build_buckets),
                ("exhaustive", {}, exhaustive_width_search),
            ):
                res = searcher(prof, J, **kwargs)
                fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=res.max_width)
                times[label] = kernel.measure(fmt, J, device).time_s
                evals[label] = res.evaluations
            oracle = min(
                kernel.measure(
                    CELLFormat.from_csr(A, num_partitions=1, max_widths=1 << e), J, device
                ).time_s
                for e in range(prof.natural_max_exp + 1)
            )
            rows.append((name, times, evals, oracle))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = BenchTable(
        "Ablation: cost-model variants (loss vs time-oracle width)",
        ["matrix", "alg3_atomic", "alg3_eq7", "exhaustive", "alg3_evals"],
    )
    for name, times, evals, oracle in rows:
        table.add_row(
            name,
            times["alg3_atomic"] / oracle,
            times["alg3_eq7"] / oracle,
            times["exhaustive"] / oracle,
            evals["alg3_atomic"],
        )
    table.emit()
    for name, times, evals, oracle in rows:
        # Algorithm 3 with the atomic-aware cost lands within 15% of oracle
        # and matches the exhaustive sweep of the same cost function.
        assert times["alg3_atomic"] <= oracle * 1.15, name
        assert times["alg3_atomic"] <= times["exhaustive"] * 1.01, name
        # the calibrated cost never does worse than the simplified Eq. 7
        assert times["alg3_atomic"] <= times["alg3_eq7"] * 1.02, name


def test_ablation_density_features(benchmark, training_data):
    """Section 5.2: density features beat raw counts for partition
    prediction."""

    def run():
        X_density = training_data.partition_X
        y = training_data.partition_y
        # raw-count variant: undo the density normalization (cols known)
        X_raw = X_density.copy()
        X_raw[:, 3:7] = X_raw[:, 3:7] * X_raw[:, [1]]
        out = {}
        for label, X in (("density", X_density), ("raw", X_raw)):
            Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0)
            model = RandomForestClassifier(n_estimators=50, seed=0).fit(Xtr, ytr)
            out[label] = accuracy_score(yte, model.predict(Xte))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npartition-model accuracy: density={out['density']:.3f} raw={out['raw']:.3f}")
    assert out["density"] >= out["raw"] - 0.05
