"""Extension benchmark: online adaptive format selection under drift.

The §5 selector is frozen at training time, so a mid-trace shift in the
simulated device's per-kernel cost profile (a driver regression, thermal
throttling of one kernel family) leaves it persistently wrong — every
request for an affected matrix pays the now-slow format.  The adaptive
claim: a per-fingerprint Thompson-sampling bandit
(:class:`repro.serve.FormatBandit`), fed only the per-request simulated
latencies already flowing through ``ServerMetrics``, recovers >= 90% of
*oracle* throughput (the per-request best arm, known in hindsight) on a
workload whose optimal format flips mid-trace, while the static
classifier stays below that bar — and it does so deterministically, with
bit-identical numeric results across replays and 100% availability.
"""

import copy

import numpy as np

from repro.core.selector import FormatSelector
from repro.gpu.device import SimulatedOOMError
from repro.serve import (
    ARMS,
    FormatBandit,
    FormatDriftDevice,
    PlanCache,
    SpMMServer,
    WorkloadSpec,
    fingerprint_csr,
    generate_workload,
    plan_arm,
    plan_key,
)
from repro.serve.adaptive import build_arm_plan

#: Latency multiplier the drift applies to the CELL kernel family.
SLOWDOWN = 4.0

#: Seeded Zipf trace; the drift flips at the halfway point.  Long enough
#: that the bandit's fixed per-key detection delay (a few slow serves per
#: fingerprint right after the shift) amortizes below 10% of oracle.
DRIFT_SPEC = WorkloadSpec(
    num_requests=450,
    num_matrices=4,
    zipf_s=1.1,
    J_choices=(32,),
    max_rows=2_000,
    with_operands=False,
    seed=23,
)


def _always_cell(liteform):
    """The session model with its format selector pinned to CELL — the
    "static classifier stays wrong" half of the claim.  (A degenerate
    single-class fit makes the selector constant; the partition predictor
    is shared untouched.)"""
    lf = copy.copy(liteform)
    lf.selector = FormatSelector().fit(np.zeros((4, 7)), np.ones(4, dtype=bool))
    return lf


def _serve_with_drift(lf, requests, bandit=None):
    """Replay ``requests`` on one drift device, flipping it at halfway;
    returns (server, responses)."""
    device = FormatDriftDevice(slowdown=SLOWDOWN)
    server = SpMMServer(
        liteform=lf,
        cache=PlanCache(max_bytes=1 << 30),
        devices=[device],
        bandit=bandit,
    )
    half = len(requests) // 2
    responses = []
    for i, r in enumerate(requests):
        if i == half:
            device.drifted = True
        responses.append(server.serve(r))
    return server, responses


def _arm_times_ms(lf, A, J, drifted):
    """Hindsight per-arm latency of one (matrix, J) in one drift phase."""
    device = FormatDriftDevice(slowdown=SLOWDOWN, drifted=drifted)
    times = {}
    for arm in ARMS:
        plan = build_arm_plan(lf, A, J, arm)
        try:
            times[arm] = plan.kernel.measure(plan.fmt, J, device).time_ms
        except SimulatedOOMError:
            times[arm] = float("inf")
    return times


def _oracle_total_ms(lf, requests):
    """Sum of each request's best-arm latency, phase-aware."""
    cache = {}
    half = len(requests) // 2
    total = 0.0
    for i, r in enumerate(requests):
        drifted = i >= half
        key = (plan_key(fingerprint_csr(r.matrix), r.J), drifted)
        if key not in cache:
            cache[key] = min(_arm_times_ms(lf, r.matrix, r.J, drifted).values())
        total += cache[key]
    return total


def test_ext_adaptive_recovers_oracle_after_drift(liteform):
    lf = _always_cell(liteform)
    requests = generate_workload(DRIFT_SPEC)
    oracle_ms = _oracle_total_ms(lf, requests)

    static_server, static_responses = _serve_with_drift(lf, requests)
    static_ms = sum(r.measurement.time_ms for r in static_responses)

    bandit = FormatBandit(min_obs=3, explore=0.05, seed=7)
    adaptive_server, adaptive_responses = _serve_with_drift(
        lf, requests, bandit=bandit
    )
    adaptive_ms = sum(r.measurement.time_ms for r in adaptive_responses)

    static_recovery = oracle_ms / static_ms
    adaptive_recovery = oracle_ms / adaptive_ms

    # The headline: >= 90% of oracle throughput where the static
    # classifier stays wrong (strictly below the same bar).
    assert adaptive_recovery >= 0.90, (
        f"bandit recovered only {adaptive_recovery:.1%} of oracle "
        f"({adaptive_ms:.3f} ms vs oracle {oracle_ms:.3f} ms)"
    )
    assert static_recovery < 0.90, (
        f"static classifier was not wrong enough to matter "
        f"({static_recovery:.1%} of oracle)"
    )
    assert adaptive_ms < static_ms

    m = adaptive_server.metrics
    assert m.availability == 1.0
    assert all(not r.failed for r in adaptive_responses)
    assert m.bandit_observations == len(requests)
    assert m.bandit_overrides > 0
    # The drift actually forced format flips (cell -> a fixed format).
    assert m.bandit_flips > 0
    post = [plan_arm(r.plan) for r in adaptive_responses[-30:]]
    assert any(arm != "cell" for arm in post), (
        f"bandit never abandoned the drifted CELL arm: {post}"
    )
    # The static server, by construction, served CELL throughout.
    assert all(plan_arm(r.plan) == "cell" for r in static_responses)


def test_ext_adaptive_is_deterministic_and_bit_identical(liteform):
    lf = _always_cell(liteform)
    numeric_spec = WorkloadSpec(
        num_requests=120,
        num_matrices=3,
        zipf_s=1.1,
        J_choices=(32,),
        max_rows=2_000,
        with_operands=True,
        seed=29,
    )

    def run():
        requests = generate_workload(numeric_spec)
        bandit = FormatBandit(min_obs=3, explore=0.05, seed=11)
        _, responses = _serve_with_drift(lf, requests, bandit=bandit)
        return responses

    first, second = run(), run()
    assert [plan_arm(r.plan) for r in first] == [plan_arm(r.plan) for r in second]
    for a, b in zip(first, second):
        assert a.C is not None and b.C is not None
        assert np.array_equal(a.C, b.C), "replay is not bit-identical"


def test_ext_adaptive_periodic_retrain_fixes_static_model(liteform):
    lf = _always_cell(liteform)
    requests = generate_workload(DRIFT_SPEC)
    bandit = FormatBandit(min_obs=3, explore=0.05, seed=7)
    device = FormatDriftDevice(slowdown=SLOWDOWN, drifted=True)
    server = SpMMServer(
        liteform=lf,
        cache=PlanCache(max_bytes=1 << 30),
        devices=[device],
        bandit=bandit,
        bandit_retrain_every=50,
    )
    for r in requests:
        server.serve(r)
    assert server.metrics.bandit_retrains > 0
    # After retraining on drifted-trace rewards, the static selector no
    # longer answers CELL for the matrices it was wrong about.
    preds = {
        name: lf.selector.predict(r.matrix)
        for name, r in {r.name: r for r in requests}.items()
    }
    assert not all(preds.values()), (
        f"retrained selector still always answers CELL: {preds}"
    )
