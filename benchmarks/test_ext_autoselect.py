"""Extension benchmark: the Table 1 hierarchy, measured.

The taxonomy claims a strict capability ladder — fixed format <
automatic (fixed-)format selection < pattern-aware composable formats.
This benchmark runs one representative of each rung on the GNN graphs:
cuSPARSE-style CSR (fixed), the Seer-style selector (automatic), and
LiteForm (composable), confirming the ordering the paper's Table 1 argues
qualitatively.
"""

import pytest

from repro.baselines import LiteFormBaseline, make_baseline
from repro.baselines.autoselect import AutoSelectBaseline
from repro.bench import BenchTable, geomean
from repro.bench.harness import BENCH_J_VALUES, scaled_device
from repro.matrices import SuiteSparseLikeCollection


@pytest.fixture(scope="module")
def ladder_results(gnn_graphs, liteform, device):
    selector = AutoSelectBaseline().fit(
        SuiteSparseLikeCollection(size=24, max_rows=10_000, seed=88),
        device,
        J_values=(32, 128),
    )
    rows = {}
    for graph, A in gnn_graphs.items():
        dev = scaled_device(graph)
        per = {"fixed": [], "autoselect": [], "liteform": []}
        for J in BENCH_J_VALUES:
            fixed = make_baseline("cusparse")
            t_fixed = fixed.measure(fixed.prepare(A, J, dev), J, dev).time_s
            prep = selector.prepare(A, J, dev)
            t_sel = selector.measure(prep, J, dev).time_s
            lf = LiteFormBaseline(liteform)
            t_lf = lf.measure(lf.prepare(A, J, dev), J, dev).time_s
            per["fixed"].append(1.0)
            per["autoselect"].append(t_fixed / t_sel)
            per["liteform"].append(t_fixed / t_lf)
        rows[graph] = {k: geomean(v) for k, v in per.items()}
    return rows


def test_ext_table1_ladder(benchmark, ladder_results):
    rows = benchmark.pedantic(lambda: ladder_results, rounds=1, iterations=1)
    table = BenchTable(
        "Extension: the Table 1 capability ladder, measured (vs cuSPARSE)",
        ["graph", "fixed", "autoselect", "liteform"],
    )
    for graph, r in rows.items():
        table.add_row(graph, r["fixed"], r["autoselect"], r["liteform"])
    gm = {k: geomean(r[k] for r in rows.values()) for k in ("fixed", "autoselect", "liteform")}
    table.add_row("GEOMEAN", gm["fixed"], gm["autoselect"], gm["liteform"])
    table.emit()

    # The ladder: selection >= fixed, composable > selection (geomean).
    assert gm["autoselect"] >= 0.95
    assert gm["liteform"] > gm["autoselect"]
    assert gm["liteform"] > 1.3
