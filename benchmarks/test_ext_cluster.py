"""Extension benchmark: sharded serving fleet — scaling, chaos, rebalance.

The cluster's claims, each checked on seeded deterministic traffic:

* **near-linear scaling** — on a saturated trace over equal-cost
  matrices, 8 shards with hot-key replication and power-of-two-choices
  routing deliver aggregate throughput within ~15% of linear (the
  simulated-makespan efficiency ``total busy / (N x max busy)`` stays
  >= 0.85);
* **chaos availability** — killing the busiest shard mid-replay over
  fault-injecting device pools loses nothing: cluster availability
  stays at 100%, at least matching the fault-free single-node baseline;
* **bounded remigration** — a membership change remaps <= ~1.5/N of the
  key space (probed on 4096 synthetic keys) and the frontend migrates
  only the cached plans that actually moved;
* **bit identity** — numeric results through the fleet (any shard, any
  replica) are byte-identical to single-node serving.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu.faults import FaultPolicy, FaultyDevice
from repro.serve import (
    ClusterFrontend,
    ShardRing,
    SpMMRequest,
    SpMMServer,
    remigration_fraction,
)

#: Equal-cost matrix pool of the scaling trace (same shape and density,
#: distinct sparsity patterns, so every fingerprint carries ~equal work).
POOL_SIZE = 64
POOL_SHAPE = 600
POOL_DENSITY = 0.02

SCALING_REQUESTS = 512
SCALING_ZIPF_S = 1.1
SCALING_EFFICIENCY_FLOOR = 0.85


@pytest.fixture(scope="module")
def pool():
    return [
        sp.random(
            POOL_SHAPE,
            POOL_SHAPE,
            density=POOL_DENSITY,
            random_state=np.random.default_rng(1000 + i),
            dtype=np.float32,
            format="csr",
        )
        for i in range(POOL_SIZE)
    ]


def _zipf_indices(n, s, k, seed):
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, k + 1) ** s
    weights /= weights.sum()
    return rng.choice(k, size=n, p=weights)


def _saturated_run(liteform, pool, num_shards, replication, seed=17):
    """Warm every plan, then slam a saturated Zipf trace through the
    fleet; returns (frontend, saturated-phase scaling efficiency)."""
    frontend = ClusterFrontend(
        liteform,
        num_shards=num_shards,
        virtual_nodes=128,
        replication=replication,
        hot_fraction=0.004,
        hot_min_count=2,
        seed=seed,
    )
    warm = [SpMMRequest(matrix=A, B=None, J=32) for A in pool] * 2
    frontend.replay(warm)
    busy0 = {s["shard_id"]: s["busy_ms"] for s in frontend.snapshot()["shards"]}
    for i in _zipf_indices(SCALING_REQUESTS, SCALING_ZIPF_S, POOL_SIZE, seed=5):
        frontend.submit(SpMMRequest(matrix=pool[i], B=None, J=32))
    frontend.drain()
    busy1 = {s["shard_id"]: s["busy_ms"] for s in frontend.snapshot()["shards"]}
    deltas = [busy1[k] - busy0[k] for k in busy1]
    max_busy = max(deltas)
    efficiency = (
        sum(deltas) / (len(deltas) * max_busy) if max_busy > 0 else 1.0
    )
    return frontend, efficiency


def test_ext_cluster_scaling_near_linear(benchmark, liteform, pool):
    """8 shards reach >= 85% of linear aggregate throughput on the
    saturated Zipf trace (replicated hot keys + power-of-two-choices)."""
    single, _ = _saturated_run(liteform, pool, num_shards=1, replication=1)
    fleet, efficiency = benchmark.pedantic(
        lambda: _saturated_run(liteform, pool, num_shards=8, replication=4),
        rounds=1,
        iterations=1,
    )
    assert fleet.metrics.failed == 0
    assert efficiency >= SCALING_EFFICIENCY_FLOOR
    # Same requests, same plans, same device model — so throughput scales
    # exactly as the makespan shrinks.  Within 15% of linear on 8 shards:
    t1 = single.aggregate_throughput_rps
    t8 = fleet.aggregate_throughput_rps
    assert t8 >= SCALING_EFFICIENCY_FLOOR * 8 * t1 * 0.9  # 0.9: warmup slack
    benchmark.extra_info["throughput_1_rps"] = t1
    benchmark.extra_info["throughput_8_rps"] = t8
    benchmark.extra_info["saturated_efficiency"] = efficiency


CHAOS_FAULT_RATE = 0.08
CHAOS_REQUESTS = 200


def _chaos_requests(pool):
    idx = _zipf_indices(CHAOS_REQUESTS, SCALING_ZIPF_S, 16, seed=23)
    return [SpMMRequest(matrix=pool[i], B=None, J=32) for i in idx]


def test_ext_cluster_chaos_availability(benchmark, liteform, pool):
    """Shard-kill chaos over faulty devices: the fleet's availability
    stays at 100% — no worse than the fault-free single-node baseline."""
    baseline = SpMMServer(liteform=liteform)
    baseline.replay(_chaos_requests(pool))

    def factory(shard_index, device_index):
        return FaultyDevice(
            faults=FaultPolicy(
                transient_oom_rate=CHAOS_FAULT_RATE,
                seed=90 + 10 * shard_index + device_index,
            )
        )

    def chaos_run():
        frontend = ClusterFrontend(
            liteform,
            num_shards=4,
            replication=2,
            device_factory=factory,
            seed=31,
        )
        frontend.replay(
            _chaos_requests(pool), kill_shard_at_ms=CHAOS_REQUESTS / 2
        )
        return frontend

    frontend = benchmark.pedantic(chaos_run, rounds=1, iterations=1)
    m = frontend.metrics
    assert m.shards_killed == 1
    assert m.completed == CHAOS_REQUESTS
    assert m.failed == 0
    assert m.availability >= baseline.metrics.availability
    assert len(frontend.shards) == 3


def test_ext_cluster_remigration_bounded(benchmark, liteform, pool):
    """A membership change remaps <= ~1.5/N of the key space, and the
    frontend only migrates the cached plans that actually moved."""
    probes = [f"probe-{i:05d}" for i in range(4096)]
    ring = ShardRing([f"shard-{i}" for i in range(8)], virtual_nodes=128)
    before = ring.assignment(probes)
    ring.add_shard("shard-8")
    frac_add = remigration_fraction(before, ring.assignment(probes))
    assert 0.0 < frac_add <= 1.5 / 9
    before = ring.assignment(probes)
    ring.remove_shard("shard-3")
    frac_remove = remigration_fraction(before, ring.assignment(probes))
    assert 0.0 < frac_remove <= 1.5 / 8

    def elastic_run():
        frontend = ClusterFrontend(liteform, num_shards=4, seed=3)
        frontend.replay(
            [SpMMRequest(matrix=A, B=None, J=32) for A in pool[:32]]
        )
        return frontend, frontend.add_shard()

    (frontend, change) = benchmark.pedantic(elastic_run, rounds=1, iterations=1)
    assert change.cached_keys == 32
    assert change.keys_moved == change.plans_migrated  # moved plans warm-start
    assert change.fraction <= 1.5 / 5 + 0.1  # small-sample noise on 32 keys
    # the migrated plans serve as hits: replaying composes nothing new
    misses0 = sum(s["cache"]["misses"] for s in frontend.snapshot()["shards"])
    frontend.replay([SpMMRequest(matrix=A, B=None, J=32) for A in pool[:32]])
    misses1 = sum(s["cache"]["misses"] for s in frontend.snapshot()["shards"])
    assert misses1 == misses0
    benchmark.extra_info["ring_fraction_add"] = frac_add
    benchmark.extra_info["ring_fraction_remove"] = frac_remove


def test_ext_cluster_bit_identical_to_single_node(benchmark, liteform, pool):
    """Numeric results through the fleet equal single-node serving byte
    for byte, regardless of which shard or replica executes."""
    rng = np.random.default_rng(77)
    requests = []
    for i in range(24):
        A = pool[i % 6]
        B = rng.standard_normal((A.shape[1], 32)).astype(np.float32)
        requests.append(SpMMRequest(matrix=A, B=B, J=32))
    single = SpMMServer(liteform=liteform)
    expected = [
        single.serve(SpMMRequest(matrix=r.matrix, B=r.B, J=r.J))
        for r in requests
    ]

    def cluster_run():
        frontend = ClusterFrontend(
            liteform,
            num_shards=5,
            replication=3,
            hot_fraction=0.1,
            hot_min_count=2,
            seed=13,
        )
        return [frontend.serve(r) for r in requests]

    got = benchmark.pedantic(cluster_run, rounds=1, iterations=1)
    assert len(got) == len(expected)
    for a, b in zip(expected, got):
        assert not b.failed
        assert np.array_equal(a.C, b.C)
