"""Extension benchmark: parallel, incremental, and speculative compose.

Three claims layered on the paper's composition pipeline:

* **Partition-pool fan-out** — CELL composition over independent column
  partitions parallelizes with zero structural drift: the pooled compose
  is bit-identical to serial, and LPT-scheduling the serial-measured
  per-partition task times onto 4 workers models a >= 2x compose speedup
  on the bench suite's large matrices.
* **Incremental recompose** — ``ComposePlan.patch_rows`` rebuilds only
  the partitions a row update touches; over a 20-step banded update
  stream at P=8 the patched plan stays bit-identical to a full rebuild
  while paying well under the full-recompose cost.
* **Speculative recompose** — under a miss storm (every request a
  distinct matrix) the speculative server answers from the immediate CSR
  plan while background composes fill the cache, cutting p99 request
  latency versus the blocking compose-on-miss server at 100%
  availability.
"""

import numpy as np

from repro.bench import BenchTable
from repro.bench.regress import SUITE_J, _suite_entries
from repro.core.parallel import PoolSpec, compose_partitions
from repro.core.pipeline import compose_cell_plan
from repro.formats.base import as_csr
from repro.matrices.collection import SuiteSparseLikeCollection
from repro.matrices.generators import banded_matrix, random_row_update
from repro.serve import PlanCache, SpMMRequest, SpMMServer
from repro.serve.fingerprint import fingerprint_csr, plan_key


def assert_formats_identical(fmt_a, fmt_b):
    assert fmt_a.shape == fmt_b.shape
    assert fmt_a.footprint_bytes == fmt_b.footprint_bytes
    assert len(fmt_a.partitions) == len(fmt_b.partitions)
    for pa, pb in zip(fmt_a.partitions, fmt_b.partitions):
        assert len(pa.buckets) == len(pb.buckets)
        for ba, bb in zip(pa.buckets, pb.buckets):
            assert ba.width == bb.width
            assert ba.block_rows == bb.block_rows
            assert np.array_equal(ba.row_ind, bb.row_ind)
            assert np.array_equal(ba.col, bb.col)
            assert np.array_equal(ba.val, bb.val)


# ---------------------------------------------------------------------------
# Partition-pool fan-out
# ---------------------------------------------------------------------------


def test_ext_parallel_compose_bit_identical_and_2x_modeled(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    entries = _suite_entries()
    P = 4
    speedups = []
    rows = []
    for e in entries:
        serial = compose_partitions(e.matrix, P, SUITE_J)
        threaded = compose_partitions(
            e.matrix, P, SUITE_J, pool=PoolSpec(workers=4, kind="thread")
        )
        assert_formats_identical(serial.to_format(), threaded.to_format())
        assert serial.predicted_cost == threaded.predicted_cost
        speedup = serial.modeled_speedup(4)
        speedups.append(speedup)
        rows.append((e.name, e.matrix.nnz, speedup))
    # The pool abstraction must also survive pickling into processes.
    big = max(entries, key=lambda e: e.matrix.nnz)
    proc = compose_partitions(
        big.matrix, P, SUITE_J, pool=PoolSpec(workers=2, kind="process")
    )
    assert_formats_identical(
        compose_partitions(big.matrix, P, SUITE_J).to_format(), proc.to_format()
    )

    geomean = float(np.exp(np.mean(np.log(speedups))))
    table = BenchTable(
        "Extension: partition-pool compose, LPT-modeled speedup at 4 workers",
        ["matrix", "nnz", "modeled speedup"],
    )
    for name, nnz, s in rows:
        table.add_row(name, nnz, s)
    table.add_row("geomean", "", geomean)
    table.emit()

    # Headline: >= 2x modeled compose speedup at 4 workers on the suite's
    # large matrices (the small ones are noise-bound either way).
    large = [s for (_, nnz, s) in rows if nnz >= np.median([r[1] for r in rows])]
    assert float(np.exp(np.mean(np.log(large)))) >= 2.0
    assert geomean >= 2.0


# ---------------------------------------------------------------------------
# Incremental recompose
# ---------------------------------------------------------------------------


def test_ext_incremental_delta_replay_bit_identical_and_cheaper(benchmark):
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    P, steps = 8, 20
    A = banded_matrix(4000, 24, fill=0.6, seed=7)
    rng = np.random.default_rng(7)
    plan = compose_cell_plan(A, P, SUITE_J)
    patch_total = 0.0
    full_total = 0.0
    rebuilt_total = 0
    for _ in range(steps):
        rows, A = random_row_update(A, rng, num_rows=3, band=24)
        t0 = time.perf_counter()
        plan = plan.patch_rows(A, rows)
        patch_total += time.perf_counter() - t0
        t0 = time.perf_counter()
        full = compose_cell_plan(A, P, SUITE_J)
        full_total += time.perf_counter() - t0
        assert_formats_identical(plan.fmt, full.fmt)
        assert plan.max_widths == full.max_widths
        assert np.isclose(plan.predicted_cost, full.predicted_cost, rtol=1e-9)
        rebuilt_total += len(plan.incremental.patched)

    table = BenchTable(
        f"Extension: incremental recompose, {steps}-step banded update "
        f"stream at P={P}",
        ["metric", "value"],
    )
    table.add_row("patch total (s)", patch_total)
    table.add_row("full rebuild total (s)", full_total)
    table.add_row("patch / full", patch_total / full_total)
    table.add_row("partitions rebuilt", rebuilt_total)
    table.add_row("partitions total", steps * P)
    table.emit()

    # Headline: bit-identity held every step (asserted above) while the
    # patch stream cost well under the full-recompose stream.
    assert patch_total < full_total * 0.9
    assert rebuilt_total < steps * P


# ---------------------------------------------------------------------------
# Speculative recompose under a miss storm
# ---------------------------------------------------------------------------

def _request_key(r):
    return plan_key(fingerprint_csr(as_csr(r.matrix)), r.J)


def _storm_requests():
    """One measure-only request per distinct matrix: every serve a miss."""
    coll = SuiteSparseLikeCollection(size=20, max_rows=6_000, seed=29)
    return [
        SpMMRequest(matrix=e.matrix, B=None, J=128, name=e.name) for e in coll
    ]


def test_ext_speculative_miss_storm_p99(benchmark, liteform):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    requests = _storm_requests()
    assert len(requests) >= 16

    blocking = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    blocking.replay(requests)
    bm = blocking.metrics
    assert bm.cache_misses == len(requests)

    spec = SpMMServer(
        liteform=liteform, cache=PlanCache(max_bytes=1 << 30), speculative=True
    )
    spec.replay(requests)
    sm = spec.metrics

    p99_blocking = bm.total_ms.percentile(99)
    p99_spec = sm.total_ms.percentile(99)
    table = BenchTable(
        f"Extension: speculative recompose, {len(requests)}-request miss storm",
        ["metric", "blocking", "speculative"],
    )
    table.add_row("p50 latency (ms)", bm.total_ms.percentile(50),
                  sm.total_ms.percentile(50))
    table.add_row("p99 latency (ms)", p99_blocking, p99_spec)
    table.add_row("availability", bm.availability, sm.availability)
    table.add_row("speculative misses", bm.speculative_misses,
                  sm.speculative_misses)
    table.add_row("swaps applied", bm.speculative_swaps, sm.speculative_swaps)
    table.emit()

    # Headline: the storm stays fully served, every miss was answered
    # speculatively, every background compose landed, and the tail
    # collapses from "full CELL compose" to "CSR fallback build".
    assert sm.availability == 1.0
    assert sm.speculative_misses == len(requests)
    assert sm.speculative_swaps == len(requests)
    assert sm.speculative_skipped == 0
    assert p99_spec < p99_blocking * 0.75
    # The swapped-in plans are the ones a blocking compose would build.
    for r in requests[:4]:
        entry = spec.cache.peek(_request_key(r))
        ref = blocking.cache.peek(_request_key(r))
        assert entry is not None and ref is not None
        assert entry.plan.use_cell == ref.plan.use_cell
        if entry.plan.use_cell and ref.plan.use_cell:
            assert_formats_identical(entry.plan.fmt, ref.plan.fmt)


def test_ext_speculative_serves_same_results(benchmark, liteform):
    """After the storm settles, a repeat pass over the same trace is all
    cache hits on plans identical to the blocking server's."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    requests = _storm_requests()
    server = SpMMServer(
        liteform=liteform, cache=PlanCache(max_bytes=1 << 30), speculative=True
    )
    server.replay(requests)
    hits_before = server.metrics.cache_hits
    responses = [server.serve(r) for r in requests]
    assert server.metrics.cache_hits == hits_before + len(requests)
    assert all(r.cache_hit and not r.speculative for r in responses)
