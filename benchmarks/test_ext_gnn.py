"""Extension benchmark: GNN graph serving amortizes compose per (A, op-set).

The live-serving version of the paper's Fig. 8 argument: a multi-layer
GNN epoch is a chain of device stages (SDDMM, SpMM) that all traverse the
same adjacency pattern.  A naive op-level server recomposes per stage; the
graph-serving stack composes the pattern ONCE — the first stage's miss
runs the pipeline, every later stage either hits the plan cache outright
or re-values the recorded geometry — so the amortized compose overhead is
bounded by 1/num_stages of the per-stage recompose baseline.  The chained
result stays bit-identical to a sequential un-batched execution of the
same op requests.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.matrices.gnn import GNNWorkloadSpec, generate_gnn_workload
from repro.serve import (
    GraphRequest,
    OpRequest,
    PlanCache,
    SpMMServer,
)
from repro.serve.graph import row_softmax

#: Seeded 3-layer GAT epochs over one adjacency: 6 device stages per
#: epoch (3 SDDMM + 3 SpMM), 12 total — the ISSUE's >= 12-compose naive
#: baseline.
GNN_SPEC = GNNWorkloadSpec(
    dataset="cora",
    model="gat",
    layers=3,
    epochs=2,
    feature_dim=32,
    hidden_dim=32,
    seed=23,
)


@pytest.fixture(scope="module")
def epoch_replay(liteform):
    """Serve the multi-epoch trace through one graph-serving server."""
    graphs = generate_gnn_workload(GNN_SPEC)
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    responses = [server.serve_graph(g) for g in graphs]
    return server, graphs, responses


@pytest.fixture(scope="module")
def naive_compose_total(liteform, epoch_replay):
    """The per-stage recompose baseline: one fresh pipeline compose per
    device stage of the same trace (what an op-level server without the
    plan cache or structural reuse would pay)."""
    _, graphs, responses = epoch_replay
    overheads = []
    for graph, resp in zip(graphs, responses):
        for stage in graph.stages:
            if stage.op not in ("spmm", "sddmm", "spmv"):
                continue
            r = resp.responses[stage.name]
            A = r.plan.fmt.to_csr()
            J = GNN_SPEC.feature_dim if stage.op != "spmv" else 1
            overheads.append(liteform.compose(A, J).overhead.total_s)
    return overheads


def test_ext_gnn_compose_charged_once_per_pattern(benchmark, epoch_replay,
                                                  naive_compose_total):
    server, graphs, responses = benchmark.pedantic(
        lambda: epoch_replay, rounds=1, iterations=1
    )
    m = server.metrics
    assert all(r.ok for r in responses)
    num_stages = sum(r.device_stages for r in responses)
    assert num_stages == 12 and len(naive_compose_total) == 12

    # Deterministic counter form of the claim: every epoch shares one
    # adjacency pattern, so exactly ONE full pipeline compose ran across
    # the whole replay; every other device stage hit the cache or
    # re-valued the recorded structure.
    full_composes = m.cache_misses - m.plan_reuses
    assert full_composes == 1
    assert m.cache_hits + m.plan_reuses + full_composes == num_stages
    assert m.plan_reuses >= 1

    # Wall-clock form: amortized compose overhead <= 1/num_stages of the
    # naive per-stage recompose baseline (x1.5 timer noise allowance) —
    # re-value rebuilds are charged, full pipeline runs are not repeated.
    naive_total = float(np.sum(naive_compose_total))
    amortized = m.compose_spent_s + m.revalue_s
    bound = naive_total / num_stages * 1.5
    assert amortized <= bound, (amortized, bound)

    table = BenchTable(
        "Extension: GNN graph serving (cora GAT, 3 layers x 2 epochs)",
        ["metric", "value"],
    )
    table.add_row("device stages", num_stages)
    table.add_row("full composes", full_composes)
    table.add_row("plan cache hits", m.cache_hits)
    table.add_row("structural re-values", m.plan_reuses)
    table.add_row("naive per-stage compose (s)", naive_total)
    table.add_row("amortized compose+revalue (s)", amortized)
    table.add_row("amortization factor", naive_total / max(amortized, 1e-12))
    table.emit()


def test_ext_gnn_chain_bit_identical_to_sequential(liteform, epoch_replay):
    """The chained epoch output equals a sequential un-batched execution
    of the same op requests, bit for bit."""
    _, graphs, responses = epoch_replay
    seq = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    J = GNN_SPEC.feature_dim
    for graph, resp in zip(graphs, responses):
        outputs = {}
        h = None
        for stage in graph.stages:
            if stage.op == "sddmm":
                U = h if h is not None else stage.inputs[0]
                r = seq.serve(OpRequest(matrix=stage.matrix, B=None, J=J,
                                        operands=(U, U), op="sddmm"))
                outputs[stage.name] = r.C
            elif stage.op == "normalize":
                outputs[stage.name] = row_softmax(outputs[stage.inputs[0][1:]])
            elif stage.op == "spmm":
                r = seq.serve(OpRequest(matrix=outputs[stage.matrix[1:]],
                                        B=h if h is not None
                                        else stage.inputs[0], J=J))
                outputs[stage.name] = r.C
            else:  # dense
                H = outputs[stage.inputs[0][1:]]
                out = (H @ stage.weight).astype(np.float32)
                if stage.activation == "relu":
                    out = np.maximum(out, np.float32(0.0))
                outputs[stage.name] = out
                h = out
        assert np.array_equal(resp.output, outputs[graph.stages[-1].name]), (
            graph.name
        )


def test_ext_gnn_wave_replay_matches_sequential_graphs(liteform, epoch_replay):
    """serve_graphs (stage-lockstep wave replay with SpMM coalescing)
    returns the same per-graph outputs as serving each graph alone."""
    _, _, responses = epoch_replay
    waved = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    wave_responses = waved.serve_graphs(generate_gnn_workload(GNN_SPEC))
    for a, b in zip(responses, wave_responses):
        assert np.array_equal(a.output, b.output)
