"""Extension benchmark: analytical model vs discrete-event micro-simulator.

The reproduction's conclusions rest on the analytical timing model
(repro.gpu.timing).  This benchmark cross-validates it against the
independent discrete-event engine (repro.gpu.microsim) on the Figure 11
question — where is the optimal maximum bucket width? — across several
matrix patterns, reporting both engines' curves and their agreement.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.formats import CELLFormat
from repro.gpu.microsim import simulate_cell
from repro.kernels import CELLSpMM
from repro.matrices import community_graph, mixture_matrix, power_law_graph

J = 64
MATRICES = {
    "power_law": lambda: power_law_graph(2500, 10, seed=1),
    "community": lambda: community_graph(2500, 12, num_communities=20, seed=2),
    "mixture": lambda: mixture_matrix(2000, avg_degree=14, seed=3),
}


@pytest.fixture(scope="module")
def validation_results(device):
    out = {}
    for name, make in MATRICES.items():
        A = make()
        micro, analytic = [], []
        from repro.core import matrix_cost_profiles

        max_exp = matrix_cost_profiles(A, 1)[0].natural_max_exp
        exps = list(range(0, max_exp + 1))
        for e in exps:
            fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=1 << e)
            micro.append(simulate_cell(fmt, J).time_s)
            analytic.append(CELLSpMM().measure(fmt, J, device).time_s)
        out[name] = (exps, micro, analytic)
    return out


def test_ext_model_validation(benchmark, validation_results):
    results = benchmark.pedantic(lambda: validation_results, rounds=1, iterations=1)
    table = BenchTable(
        "Extension: analytical model vs discrete-event engine (optimal max width)",
        ["matrix", "argmin micro", "argmin analytic", "pearson r"],
    )
    for name, (exps, micro, analytic) in results.items():
        r = float(np.corrcoef(micro, analytic)[0, 1])
        table.add_row(
            name,
            f"2^{exps[int(np.argmin(micro))]}",
            f"2^{exps[int(np.argmin(analytic))]}",
            r,
        )
    table.emit()

    for name, (exps, micro, analytic) in results.items():
        # The two engines place the optimum within one doubling of each
        # other and their curves co-move.
        assert abs(int(np.argmin(micro)) - int(np.argmin(analytic))) <= 1, name
        assert float(np.corrcoef(micro, analytic)[0, 1]) > 0.5, name


def test_ext_microsim_memory_bound(benchmark, validation_results):
    """SpMM stays memory-bound in the discrete-event engine too."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    A = MATRICES["power_law"]()
    fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=16)
    r = simulate_cell(fmt, J)
    print(f"\n  memory-pipe utilization at the optimum: {r.memory_utilization:.1%}")
    assert r.memory_utilization > 0.5
