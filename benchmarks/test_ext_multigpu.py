"""Extension benchmark: multi-GPU strong scaling (Section 10 future work)."""

import pytest

from repro.bench import BenchTable
from repro.gpu.multi import MultiGPUSimulator, MultiGPUSpec, liteform_compose_fn

J = 256
GPU_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def scaling_results(gnn_graphs, liteform):
    compose = liteform_compose_fn(liteform)
    out = {}
    for graph in ("reddit", "cora"):
        A = gnn_graphs[graph]
        rows = []
        for g in GPU_COUNTS:
            r = MultiGPUSimulator(MultiGPUSpec(num_gpus=g)).measure(A, J, compose)
            rows.append((g, r))
        out[graph] = rows
    return out


def test_ext_multigpu_strong_scaling(benchmark, scaling_results):
    results = benchmark.pedantic(lambda: scaling_results, rounds=1, iterations=1)
    table = BenchTable(
        "Extension: multi-GPU SpMM strong scaling (LiteForm-composed shards)",
        ["graph", "gpus", "total_ms", "compute_ms", "comm_ms", "speedup", "balance"],
    )
    for graph, rows in results.items():
        base = rows[0][1].total_s
        for g, r in rows:
            table.add_row(
                graph,
                g,
                r.total_s * 1e3,
                r.compute_s * 1e3,
                (r.broadcast_s + r.gather_s) * 1e3,
                base / r.total_s,
                r.balance,
            )
    table.emit()

    # Shape: the big graph gains from 4 GPUs; the tiny one does not.
    reddit = results["reddit"]
    base = reddit[0][1].total_s
    t4 = next(r for g, r in reddit if g == 4).total_s
    assert t4 < base
    cora = results["cora"]
    t8 = next(r for g, r in cora if g == 8).total_s
    assert t8 > cora[0][1].total_s * 0.9  # no meaningful gain on tiny input


def test_ext_multigpu_compute_monotone(benchmark, scaling_results):
    """More GPUs never make the compute phase meaningfully slower (2%
    tolerance: shard boundaries shift the per-shard composition)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for graph, rows in scaling_results.items():
        compute = [r.compute_s for _, r in rows]
        for earlier, later in zip(compute, compute[1:]):
            assert later <= earlier * 1.02, graph
