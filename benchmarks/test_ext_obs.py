"""Extension benchmark: cluster observability under chaos.

Three claims, each on seeded deterministic traffic:

* **cross-lane tracing** — killing devices and a shard mid-replay, a
  rerouted request's spans are linked by a single trace id across two
  shards' lanes of the merged Perfetto trace (the causal path survives
  the failure);
* **alert leads breach** — the fast-burn ``page`` fires during the fault
  storm (on attempt-level SLI) while request-level cluster availability
  never drops below its 99% target — burn-rate alerting pages *before*
  the user-visible objective is lost;
* **telemetry is nearly free** — per-request tracing + SLO + attribution
  cost, bounded by a microbenchmark of the span hot path times the
  measured span density, stays within 2% of the untraced request
  latency.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gpu.faults import FaultPolicy, FaultyDevice
from repro.gpu.multi import MultiGPUSpec
from repro.obs import (
    SLOEngine,
    Tracer,
    default_policies,
    default_slos,
    set_tracer,
    trace_ids_by_lane,
)
from repro.serve import ClusterFrontend, RetryPolicy
from repro.serve.workload import WorkloadSpec, generate_workload

#: Virtual-ms scale of the burn-rate windows (replays finish in ~hundreds
#: of virtual ms, so the SRE hour-scale windows compress to this).
SLO_SCALE_MS = 200.0
CHAOS_SEED = 3
#: Uniform per-launch probability that a device dies permanently.  High
#: enough that some shard loses devices mid-replay (attempt failures →
#: reroutes → burn), low enough that replication absorbs every loss.
DEATH_RATE = 0.01


def _workload(n, seed):
    spec = WorkloadSpec(
        num_requests=n,
        num_matrices=8,
        J_choices=(32,),
        max_rows=2000,
        with_operands=False,
        seed=seed,
    )
    return generate_workload(spec)


def _chaos_factory(shard_index, device_index):
    return FaultyDevice(
        faults=FaultPolicy(
            death_rate=DEATH_RATE,
            seed=CHAOS_SEED + 1000 + shard_index * 100 + device_index,
        )
    )


@pytest.fixture(scope="module")
def chaos_run(liteform):
    """One traced chaos replay shared by the tracing and SLO tests."""
    slo = SLOEngine(
        specs=default_slos(), policies=default_policies(SLO_SCALE_MS)
    )
    frontend = ClusterFrontend(
        liteform,
        num_shards=4,
        replication=2,
        multi_spec=MultiGPUSpec(num_gpus=2),
        device_factory=_chaos_factory,
        retry=RetryPolicy(max_attempts=2),
        seed=CHAOS_SEED,
        slo=slo,
    )
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        frontend.replay(_workload(240, CHAOS_SEED), kill_shard_at_ms=60.0)
    finally:
        set_tracer(previous)
    return frontend, slo


def test_ext_obs_trace_links_rerouted_requests(benchmark, chaos_run):
    """A request failed on one shard and served by another leaves spans
    in both lanes under one trace id in the merged trace."""
    frontend, _ = benchmark.pedantic(
        lambda: chaos_run, rounds=1, iterations=1
    )
    assert frontend.metrics.rerouted > 0
    ids = trace_ids_by_lane(frontend.lanes())
    assert set(ids) >= {"frontend", "shard-0", "shard-1", "shard-2", "shard-3"}
    shard_lanes = [v for k, v in ids.items() if k.startswith("shard")]
    crossed = set()
    for i, a in enumerate(shard_lanes):
        for b in shard_lanes[i + 1:]:
            crossed |= a & b
    assert crossed, "no trace id appears on two shard lanes"
    benchmark.extra_info["cross_lane_trace_ids"] = len(crossed)

    trace = frontend.merged_trace()
    pids = {e["pid"] for e in trace["traceEvents"]}
    assert len(pids) >= 5  # frontend + 4 shards
    # Every exported span of a crossed request carries its trace id.
    example = next(iter(crossed))
    tagged = [
        e for e in trace["traceEvents"]
        if e.get("args", {}).get("trace_id") == example
    ]
    assert len({e["pid"] for e in tagged}) >= 2


def test_ext_obs_alert_leads_availability_breach(benchmark, chaos_run):
    """The fast-burn page fires on attempt-level SLI during the storm,
    while request-level availability finishes at 100%."""
    frontend, slo = benchmark.pedantic(
        lambda: chaos_run, rounds=1, iterations=1
    )
    pages = [a for a in slo.alerts if a.severity == "page"]
    assert pages, f"no page fired: {slo.alerts}"
    # Request-level availability never breached its target...
    target = next(s.target for s in slo.specs if s.name == "availability")
    assert frontend.metrics.availability >= target
    # ...because reroutes absorbed the shard-level failures the SLI saw.
    assert all(0.0 < a.cumulative_sli < 1.0 for a in pages)
    assert frontend.metrics.failed == 0
    benchmark.extra_info["page_fired_at_ms"] = pages[0].fired_at_ms
    benchmark.extra_info["sli_at_fire"] = pages[0].cumulative_sli


SPAN_OVERHEAD_BUDGET = 0.02  # tracing + SLO + attribution vs. untraced


def test_ext_obs_overhead_within_budget(benchmark, liteform):
    """Per-request telemetry cost (span hot path x measured span density
    + SLO/attribution accounting) stays within 2% of request latency.

    Bounded via a span microbenchmark rather than two noisy end-to-end
    walls: replay jitter on shared runners (~10%) dwarfs the real
    overhead, which this isolates deterministically.
    """
    requests = _workload(96, seed=5)

    # Untraced per-request wall time (median of repeats).
    def replay_plain():
        frontend = ClusterFrontend(liteform, num_shards=2, seed=9)
        frontend.replay(requests)
        return frontend

    replay_plain()  # warm compose caches
    walls = []
    for _ in range(5):
        t0 = time.perf_counter()
        replay_plain()
        walls.append(time.perf_counter() - t0)
    per_request_s = float(np.median(walls)) / len(requests)

    # Span density of the fully-observed replay.
    frontend = ClusterFrontend(
        liteform, num_shards=2, seed=9, slo=SLOEngine(
            specs=default_slos(), policies=default_policies(SLO_SCALE_MS)
        )
    )
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        frontend.replay(requests)
    finally:
        set_tracer(previous)
    spans = sum(len(lane.spans) for lane in frontend.lanes().values())
    spans_per_request = spans / len(requests)

    # Span hot-path cost, measured in isolation.
    bench_tracer = Tracer()
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with bench_tracer.span("x", key="v"):
            pass
    span_cost_s = (time.perf_counter() - t0) / n

    overhead = (span_cost_s * spans_per_request) / per_request_s
    benchmark.extra_info["spans_per_request"] = spans_per_request
    benchmark.extra_info["span_cost_us"] = span_cost_s * 1e6
    benchmark.extra_info["overhead_fraction"] = overhead
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert overhead <= SPAN_OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead:.2%} exceeds "
        f"{SPAN_OVERHEAD_BUDGET:.0%}: {spans_per_request:.1f} spans/request "
        f"x {span_cost_s * 1e6:.1f} us vs {per_request_s * 1e3:.2f} ms/request"
    )
