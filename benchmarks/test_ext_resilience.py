"""Extension benchmark: chaos replay — availability under injected faults.

Without recovery, a request stream over fault-injecting devices fails at
roughly the injection rate: each transient OOM kills its request.  The
resilience layer (bounded retry across the pool + circuit breaker + CSR
degradation) turns the same fault stream into ~100% availability, because
independent per-launch faults almost never survive four placement
attempts.  This benchmark replays the same seeded workload over the same
seeded fault sequence three ways (no recovery / retries+degradation /
fault-free baseline) and checks the paper-style claim: availability goes
from ≈(1 - fault rate) to ≥99%, failed requests stay out of the success
latency series, and the recovered tail stays bounded.
"""

import pytest

from repro.gpu.faults import FaultPolicy, FaultyDevice
from repro.serve import (
    PlanCache,
    RetryPolicy,
    SpMMServer,
    WorkloadSpec,
    generate_workload,
)

#: Per-launch transient-OOM injection rate of the chaos replay.
FAULT_RATE = 0.10
NUM_DEVICES = 3

CHAOS_SPEC = WorkloadSpec(
    num_requests=300,
    num_matrices=16,
    zipf_s=1.1,
    J_choices=(32, 64, 128),
    max_rows=2_500,
    with_operands=False,
    seed=23,
)


def _chaos_server(liteform, fault_rate, retries, degrade):
    devices = [
        FaultyDevice(faults=FaultPolicy(transient_oom_rate=fault_rate, seed=90 + i))
        for i in range(NUM_DEVICES)
    ]
    return SpMMServer(
        liteform=liteform,
        cache=PlanCache(max_bytes=1 << 30),
        devices=devices,
        retry=RetryPolicy(max_attempts=retries),
        degrade_on_oom=degrade,
    )


@pytest.fixture(scope="module")
def unprotected(liteform):
    server = _chaos_server(liteform, FAULT_RATE, retries=1, degrade=False)
    server.replay(generate_workload(CHAOS_SPEC))
    return server


@pytest.fixture(scope="module")
def protected(liteform):
    server = _chaos_server(liteform, FAULT_RATE, retries=4, degrade=True)
    server.replay(generate_workload(CHAOS_SPEC))
    return server


@pytest.fixture(scope="module")
def fault_free(liteform):
    server = _chaos_server(liteform, 0.0, retries=4, degrade=True)
    server.replay(generate_workload(CHAOS_SPEC))
    return server


def test_ext_chaos_availability_recovered(benchmark, unprotected, protected):
    """Retries + degradation lift availability from ≈(1-rate) to ≥99%."""
    protected_server = benchmark.pedantic(lambda: protected, rounds=1, iterations=1)
    base, hard = unprotected.metrics, protected_server.metrics
    n = CHAOS_SPEC.num_requests
    # without recovery the failure rate tracks the injection rate
    assert 0.5 * FAULT_RATE <= base.failed / n <= 2.0 * FAULT_RATE, base.failed
    # with recovery, availability is production-grade
    assert hard.availability >= 0.99, hard.availability
    assert hard.retries > 0 and hard.recovered > 0
    print(
        f"\nchaos replay ({FAULT_RATE:.0%} fault rate, {n} requests): "
        f"availability {base.availability:.1%} -> {hard.availability:.1%} "
        f"({hard.retries} retries, {hard.recovered} recovered)"
    )


def test_ext_chaos_failed_requests_stay_out_of_success_series(unprotected):
    """The success latency histogram only contains served requests."""
    m = unprotected.metrics
    assert m.failed > 0  # chaos actually bit
    assert len(m.exec_ms) == CHAOS_SPEC.num_requests - m.failed
    assert len(m.total_ms) == CHAOS_SPEC.num_requests - m.failed
    assert len(m.failed_ms) == m.failed
    # served requests all executed, so the success p50 cannot be zero
    assert m.exec_ms.percentile(50) > 0


def test_ext_chaos_tail_latency_bounded(protected, fault_free):
    """Recovery (backoff included) keeps the served tail within ~10x of a
    fault-free replay — retries cost backoff, not unbounded stalls."""
    p99_chaos = protected.metrics.total_ms.percentile(99)
    p99_clean = fault_free.metrics.total_ms.percentile(99)
    assert p99_chaos <= 10 * p99_clean + 1.0, (p99_chaos, p99_clean)


def test_ext_chaos_failed_attempts_tracked_per_device(protected):
    m = protected.metrics
    devices = protected.snapshot()["devices"]
    # every retry was preceded by a failed attempt on some device
    assert sum(d["failures"] for d in devices) >= m.retries
    # slot.requests counts completed serves only, never failed attempts
    assert sum(d["requests"] for d in devices) == CHAOS_SPEC.num_requests - m.failed
