"""Extension benchmark: open-loop batched scheduling beats sequential serve.

The serving layer's caching benchmark (test_ext_serving) shows composition
amortizes across repeated requests; this one shows *execution* amortizes
too.  Under Zipf traffic many queued requests share a plan key, so the
scheduler coalesces them into wider fused launches — and on the simulated
V100 a launch at ``n*J`` columns is far cheaper than ``n`` launches at
``J`` (higher arithmetic intensity, one launch overhead), exactly the
design-principles argument of Yang et al. for wide dense operands.

Three claims are checked against a saturated Zipf(1.3) stream:

* served throughput (requests per *simulated* second) is >= 2x the
  sequential ``serve()`` baseline on the identical trace;
* batched results are bit-identical to sequentially served ones;
* the scheduler's metrics snapshot reports queueing-delay percentiles
  (p50/p95) alongside batch-size and coalesce-rate figures.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.kernels.registry import resolve
from repro.serve import (
    PlanCache,
    Scheduler,
    SpMMServer,
    WorkloadSpec,
    generate_workload,
)

#: Single-J Zipf stream arriving fast enough to saturate the batcher:
#: at 1M requests per simulated second the queue is always deep, so batch
#: sizes approach ``max_batch`` and throughput is compute-bound (the
#: interesting regime — a trickle never benefits from batching).
SCHED_SPEC = WorkloadSpec(
    num_requests=400,
    num_matrices=16,
    zipf_s=1.3,
    J_choices=(32,),
    max_rows=3_000,
    seed=7,
    arrival_rate_rps=1_000_000.0,
)

MAX_BATCH = 16
MAX_WAIT_MS = 0.5


@pytest.fixture(scope="module")
def trace():
    return generate_workload(SCHED_SPEC)


@pytest.fixture(scope="module")
def sequential(liteform, trace):
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    responses = [server.serve(r) for r in trace]
    return server, responses


@pytest.fixture(scope="module")
def scheduled(liteform, trace):
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    scheduler = Scheduler(
        server=server, max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS
    )
    scheduler.replay(trace)
    return scheduler


def test_ext_scheduler_throughput_and_identity(
    benchmark, liteform, trace, sequential
):
    seq_server, seq_responses = sequential
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    scheduler = Scheduler(
        server=server, max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS
    )

    def run():
        for r in trace:
            scheduler.submit(r)
        return scheduler.drain()

    batched_responses = benchmark.pedantic(run, rounds=1, iterations=1)
    m = scheduler.metrics

    # Sequential simulated throughput: the trace back-to-back on one
    # device, i.e. one launch per request.
    seq_exec_ms = float(
        sum(r.measurement.time_ms for r in seq_responses)
    )
    seq_rps = len(trace) / (seq_exec_ms / 1e3)
    ratio = m.throughput_rps / seq_rps

    # Bit-identical results, request by request.
    assert len(batched_responses) == len(seq_responses)
    identical = all(
        np.array_equal(b.C, s.C)
        for b, s in zip(batched_responses, seq_responses)
    )

    snap = scheduler.snapshot()
    table = BenchTable(
        "Extension: open-loop batched scheduling (Zipf 1.3, 400 requests, "
        f"16 matrices, max_batch={MAX_BATCH})",
        ["metric", "value"],
    )
    table.add_row("sequential throughput (req/s sim)", seq_rps)
    table.add_row("batched throughput (req/s sim)", m.throughput_rps)
    table.add_row("throughput ratio", ratio)
    table.add_row("micro-batches launched", m.batches)
    table.add_row("mean batch size", m.mean_batch_size)
    table.add_row("coalesce rate", m.coalesce_rate)
    table.add_row("composes (batched)", server.metrics.cache_misses)
    table.add_row("composes (sequential)", seq_server.metrics.cache_misses)
    table.add_row("plan lookups per request",
                  m.batches / max(1, m.dispatched))
    table.add_row("queue wait p50 (sim ms)", snap["queue_wait_ms"]["p50"])
    table.add_row("queue wait p95 (sim ms)", snap["queue_wait_ms"]["p95"])
    table.add_row("bit-identical to sequential", identical)
    table.emit()

    # Headline: >= 2x served throughput at bit-identical numerics, with
    # queueing delay visible in the snapshot.
    assert identical
    assert ratio >= 2.0
    assert snap["queue_wait_ms"]["p95"] >= 0.0
    assert "p50" in snap["queue_wait_ms"] and "p95" in snap["queue_wait_ms"]
    # Coalescing actually happened (Zipf + single J => shared plan keys).
    assert m.mean_batch_size > 2.0
    assert m.coalesce_rate > 0.9


def test_ext_scheduler_amortizes_lookups(scheduled, trace):
    """One cache interaction per micro-batch: lookups-per-request shrink
    by the mean batch size relative to sequential serving."""
    m = scheduled.metrics
    server_m = scheduled.server.metrics
    lookups = server_m.cache_hits + server_m.cache_misses
    assert lookups == m.batches
    # Sequential serving does exactly one lookup per request.
    assert lookups * 2 <= len(trace)


def test_ext_scheduler_batched_launch_is_cheaper(liteform, device):
    """Sanity-check the physics the scheduler exploits: one fused launch
    at ``n*J`` columns is cheaper than ``n`` launches at ``J`` for the
    plans LiteForm actually picks (CSR row-split here, via the kernel
    registry)."""
    from repro.formats.base import as_csr
    from repro.matrices import power_law_graph

    fmt_cls, kernel_cls = resolve("csr")
    A = as_csr(power_law_graph(2_000, 8, seed=3))
    fmt, kernel = fmt_cls.from_csr(A), kernel_cls()
    J, n = 32, 8
    one = kernel.measure(fmt, J, device).time_s
    fused = kernel.measure(fmt, n * J, device).time_s
    assert fused < n * one
