"""Extension benchmark: the serving layer amortizes composition overhead.

The paper's Figures 8-9 establish that one LiteForm compose is cheap; the
serving claim is stronger — under Zipf traffic, plan caching recovers the
compose cost of every repeated request, so the *aggregate* overhead of a
cached server is a small fraction of compose-per-request LiteForm while
execution picks the exact same plans.  The deadline tier additionally
shows admission control bounding worst-case composition latency by the
CSR fallback build cost.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.serve import (
    PlanCache,
    SpMMRequest,
    SpMMServer,
    WorkloadSpec,
    generate_workload,
)

#: >= 200 requests over >= 32 distinct matrices, Zipf(1.1), mixed J.
SERVE_SPEC = WorkloadSpec(
    num_requests=300,
    num_matrices=32,
    zipf_s=1.1,
    J_choices=(32, 64, 128),
    max_rows=3_000,
    with_operands=False,
    seed=17,
)


@pytest.fixture(scope="module")
def replayed(liteform):
    requests = generate_workload(SERVE_SPEC)
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    responses = [server.serve(r) for r in requests]
    return server, requests, responses


@pytest.fixture(scope="module")
def fresh_overheads(liteform):
    """What a cacheless compose-per-request server pays for the same trace."""
    return [
        liteform.compose(r.matrix, r.J).overhead.total_s
        for r in generate_workload(SERVE_SPEC)
    ]


def test_ext_serving_amortizes_composition(benchmark, replayed, fresh_overheads):
    server, requests, responses = benchmark.pedantic(
        lambda: replayed, rounds=1, iterations=1
    )
    m = server.metrics
    fresh_total = float(np.sum(fresh_overheads))
    reduction = fresh_total / m.compose_spent_s
    half = len(responses) // 2
    steady_hits = [r.cache_hit for r in responses[half:]]
    steady_hit_rate = float(np.mean(steady_hits))

    table = BenchTable(
        "Extension: serving-layer plan caching (Zipf 1.1, 300 requests, "
        "32 matrices)",
        ["metric", "value"],
    )
    table.add_row("compose-per-request total (s)", fresh_total)
    table.add_row("cached server compose spent (s)", m.compose_spent_s)
    table.add_row("aggregate overhead reduction", reduction)
    table.add_row("overall hit rate", m.hit_rate)
    table.add_row("steady-state hit rate (2nd half)", steady_hit_rate)
    table.add_row("cache entries", len(server.cache))
    table.add_row("exec p50 (ms)", m.exec_ms.percentile(50))
    table.add_row("exec p99 (ms)", m.exec_ms.percentile(99))
    table.emit()

    # Headline: >= 5x aggregate composition-overhead reduction at a >= 90%
    # steady-state hit rate.
    assert reduction >= 5.0
    assert steady_hit_rate >= 0.9
    assert m.cache_misses == len(server.cache)  # one compose per distinct plan


def test_ext_serving_cached_execution_identical(benchmark, replayed, liteform):
    """A cache hit serves the same plan a fresh compose would pick, so the
    simulated execution time is identical — caching trades no performance."""
    server, requests, responses = benchmark.pedantic(
        lambda: replayed, rounds=1, iterations=1
    )
    seen = set()
    checked = 0
    for req, resp in zip(requests, responses):
        if resp.key in seen or checked >= 8:
            continue
        seen.add(resp.key)
        fresh_plan = liteform.compose(req.matrix, req.J)
        fresh = liteform.measure(fresh_plan, req.J)
        assert fresh_plan.use_cell == resp.plan.use_cell
        assert fresh_plan.max_widths == resp.plan.max_widths
        assert np.isclose(fresh.time_s, resp.measurement.time_s, rtol=1e-9)
        checked += 1
    assert checked >= 8


def test_ext_serving_deadline_bounded_by_fallback(benchmark, liteform):
    """Degraded requests pay fingerprint + CSR build, nothing else: the
    overshoot past any deadline is bounded by the CSR build cost."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    requests = generate_workload(
        WorkloadSpec(
            num_requests=40,
            num_matrices=12,
            max_rows=3_000,
            with_operands=False,
            seed=23,
        )
    )
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    server.serve(requests[0])  # prime the overhead estimator

    tight_ms = 1e-3  # far below any compose estimate -> always degrade
    degraded = []
    for r in requests[1:]:
        resp = server.serve(
            SpMMRequest(matrix=r.matrix, B=None, J=r.J, deadline_ms=tight_ms)
        )
        if not resp.cache_hit:
            assert resp.degraded, r.name
            degraded.append(resp)

    assert degraded
    assert server.metrics.degraded == len(degraded)
    for resp in degraded:
        # total overhead minus the measured CSR build is just fingerprint +
        # admission bookkeeping; generous wall-clock slack for CI noise.
        assert resp.compose_overhead_s - resp.plan.overhead.build_s < 0.05
        assert not resp.plan.use_cell
