"""Extension benchmark: cross-device transfer learning (Section 8).

The paper's stated limitation: LiteForm's predictors are device-specific
and retraining for a new architecture costs hours; it suggests transfer
learning as the fix.  This benchmark quantifies both halves on the
simulated V100 -> A100 pair:

* a V100-trained partition predictor degrades on A100-optimal labels
  (the bigger L2 and bandwidth shift the partition trade-off);
* :func:`repro.core.transfer.transfer_fit` with a *small* A100 sample
  recovers most of the gap at a fraction of the retraining cost.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.core import LiteForm, generate_training_data
from repro.core.transfer import transfer_training_data
from repro.gpu import A100, SimulatedDevice
from repro.matrices import SuiteSparseLikeCollection
from repro.ml import RandomForestClassifier, accuracy_score


def _partition_accuracy(model_data, eval_data) -> float:
    model = RandomForestClassifier(n_estimators=50, seed=0)
    model.fit(model_data.partition_X, model_data.partition_y)
    pred = model.predict(eval_data.partition_X)
    return accuracy_score(eval_data.partition_y, pred)


@pytest.fixture(scope="module")
def transfer_results(training_data):
    """training_data is the session V100 history; generate A100 labels."""
    a100 = SimulatedDevice(spec=A100)
    target_small = generate_training_data(
        SuiteSparseLikeCollection(size=12, max_rows=20_000, seed=909),
        device=a100,
        J_values=(32, 128, 512),
    )
    eval_set = generate_training_data(
        SuiteSparseLikeCollection(size=16, max_rows=20_000, seed=910),
        device=a100,
        J_values=(32, 128, 512),
    )
    source_only = _partition_accuracy(training_data, eval_set)
    target_only = _partition_accuracy(target_small, eval_set)
    transferred = _partition_accuracy(
        transfer_training_data(training_data, target_small, target_weight=4), eval_set
    )
    return {
        "source_only": source_only,
        "target_only": target_only,
        "transferred": transferred,
        "target_samples": len(target_small.partition_samples),
        "source_samples": len(training_data.partition_samples),
    }


def test_ext_transfer_learning(benchmark, transfer_results):
    r = benchmark.pedantic(lambda: transfer_results, rounds=1, iterations=1)
    table = BenchTable(
        "Extension: V100 -> A100 transfer learning (partition predictor)",
        ["model", "training samples", "A100 accuracy"],
    )
    table.add_row("V100 source only", r["source_samples"], r["source_only"])
    table.add_row("small A100 set only", r["target_samples"], r["target_only"])
    table.add_row(
        "transfer (source + 4x target)",
        f"{r['source_samples']}+{r['target_samples']}",
        r["transferred"],
    )
    table.emit()

    # Shape: the combined model is at least as good as either ingredient
    # alone (within noise), using an order of magnitude fewer target-device
    # measurements than full retraining.
    assert r["transferred"] >= r["source_only"] - 0.05
    assert r["transferred"] >= r["target_only"] - 0.05
    assert r["target_samples"] < r["source_samples"] / 3
