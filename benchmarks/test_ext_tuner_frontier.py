"""Extension benchmark: the prediction-vs-search frontier.

Places LiteForm on the (construction overhead, delivered SpMM time) plane
against search strategies of increasing budget — random-4, hill-climb,
exhaustive.  The paper's pitch in one plot: prediction reaches
search-quality execution at orders of magnitude less construction cost.
"""

import pytest

from repro.baselines import LiteFormBaseline
from repro.bench import BenchTable, geomean
from repro.matrices import SuiteSparseLikeCollection
from repro.tuning import ExhaustiveTuner, HillClimbTuner, RandomSearchTuner

J = 128


@pytest.fixture(scope="module")
def frontier_results(liteform, device):
    matrices = [
        e.matrix
        for e in SuiteSparseLikeCollection(size=6, min_rows=2000, max_rows=8000, seed=515)
    ]
    strategies = {
        "random-4": RandomSearchTuner(budget=4, seed=0, device=device),
        "hill-climb": HillClimbTuner(device=device),
        "exhaustive": ExhaustiveTuner(device=device),
    }
    rows = {name: {"time": [], "overhead": []} for name in (*strategies, "liteform")}
    lf = LiteFormBaseline(liteform, force_cell=True)
    for A in matrices:
        for name, tuner in strategies.items():
            res = tuner.tune(A, J)
            rows[name]["time"].append(res.best.time_s)
            rows[name]["overhead"].append(res.overhead_s)
        prep = lf.prepare(A, J, device)
        rows["liteform"]["time"].append(lf.measure(prep, J, device).time_s)
        rows["liteform"]["overhead"].append(prep.construction_overhead_s)
    return rows


def test_ext_prediction_vs_search_frontier(benchmark, frontier_results):
    rows = benchmark.pedantic(lambda: frontier_results, rounds=1, iterations=1)
    table = BenchTable(
        "Extension: prediction vs search (geomeans over 6 matrices)",
        ["strategy", "delivered time (ms)", "construction overhead (s)"],
    )
    for name, r in rows.items():
        table.add_row(name, geomean(r["time"]) * 1e3, geomean(r["overhead"]))
    table.emit()

    t = {name: geomean(r["time"]) for name, r in rows.items()}
    o = {name: geomean(r["overhead"]) for name, r in rows.items()}
    # Search quality improves with budget...
    assert t["exhaustive"] <= t["random-4"] * 1.001
    # ...but LiteForm reaches near-exhaustive quality...
    assert t["liteform"] <= t["exhaustive"] * 1.6
    # ...at a tiny fraction of every search strategy's cost.
    for name in ("random-4", "hill-climb", "exhaustive"):
        assert o["liteform"] < o[name] / 10
