"""Figure 10: prediction accuracy vs training-set size.

The Random Forest models cross 80% accuracy with a few hundred samples and
approach 90% as the set grows.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.ml import RandomForestClassifier, accuracy_score, train_test_split

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _learning_curve(X, y, seed=0):
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=seed)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(Xtr))
    out = []
    for frac in FRACTIONS:
        k = max(5, int(round(len(Xtr) * frac)))
        idx = order[:k]
        if np.unique(ytr[idx]).size < 2:
            out.append((k, float("nan")))
            continue
        model = RandomForestClassifier(n_estimators=50, seed=0).fit(Xtr[idx], ytr[idx])
        out.append((k, accuracy_score(yte, model.predict(Xte))))
    return out


@pytest.fixture(scope="module")
def fig10_results(training_data):
    fmt_curve = _learning_curve(
        training_data.format_X, training_data.format_y.astype(int)
    )
    part_curve = _learning_curve(training_data.partition_X, training_data.partition_y)
    return fmt_curve, part_curve


def test_fig10_accuracy_vs_training_size(benchmark, fig10_results):
    fmt_curve, part_curve = benchmark.pedantic(
        lambda: fig10_results, rounds=1, iterations=1
    )
    table = BenchTable(
        "Figure 10: prediction accuracy vs training-set size (Random Forest)",
        ["series", *(f"{int(f*100)}%" for f in FRACTIONS)],
    )
    table.add_row("format selection (n)", *(str(k) for k, _ in fmt_curve))
    table.add_row("format selection acc", *(a for _, a in fmt_curve))
    table.add_row("num partitions (n)", *(str(k) for k, _ in part_curve))
    table.add_row("num partitions acc", *(a for _, a in part_curve))
    table.emit()

    # Shape: accuracy does not degrade with more data, and the full-set
    # model is usefully accurate on both tasks.
    for curve in (fmt_curve, part_curve):
        accs = [a for _, a in curve if np.isfinite(a)]
        assert accs[-1] >= accs[0] - 0.1  # monotone-ish within noise
        assert accs[-1] > 0.6


def test_fig10_partition_task_reaches_high_accuracy(benchmark, fig10_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, part_curve = fig10_results
    final = part_curve[-1][1]
    assert final > 0.65  # paper approaches ~0.9 with 4000+ samples
