"""Figure 11: cost-model fidelity on the reddit stand-in.

Sweeping the maximum bucket width, the cost-model value, the simulated GPU
compute throughput, and the execution time are plotted together (normalized)
— the width minimizing the cost also minimizes time and maximizes
throughput.  The paper's optimum for reddit is 2^8 on the full-size graph.
"""

import numpy as np
import pytest

from repro.bench import BenchTable
from repro.core import matrix_cost_profiles
from repro.formats import CELLFormat
from repro.kernels import CELLSpMM
from repro.bench.harness import scaled_device

FIG11_J = 128


@pytest.fixture(scope="module")
def fig11_results(gnn_graphs):
    A = gnn_graphs["reddit"]
    dev = scaled_device("reddit")
    profile = matrix_cost_profiles(A, 1)[0]
    kernel = CELLSpMM()
    rows = []
    for exp in range(profile.natural_max_exp + 1):
        fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=1 << exp)
        m = kernel.measure(fmt, FIG11_J, dev)
        rows.append(
            {
                "exp": exp,
                "cost": profile.cost(exp, FIG11_J),
                "time_s": m.time_s,
                "throughput": m.compute_throughput,
            }
        )
    return rows


def test_fig11_cost_model_tracks_performance(benchmark, fig11_results):
    rows = benchmark.pedantic(lambda: fig11_results, rounds=1, iterations=1)
    costs = np.array([r["cost"] for r in rows])
    times = np.array([r["time_s"] for r in rows])
    thr = np.array([r["throughput"] for r in rows])
    table = BenchTable(
        "Figure 11: cost value vs GPU throughput vs execution time (reddit)",
        ["max_width", "cost (norm)", "throughput (norm)", "time (norm)"],
    )
    for r, c, t, th in zip(rows, costs / costs.max(), times / times.max(), thr / thr.max()):
        table.add_row(f"2^{r['exp']}", c, th, t)
    table.emit()

    best_cost = int(np.argmin(costs))
    best_time = int(np.argmin(times))
    best_thr = int(np.argmax(thr))
    print(
        f"  argmin cost = 2^{rows[best_cost]['exp']}, argmin time = 2^{rows[best_time]['exp']}, "
        f"argmax throughput = 2^{rows[best_thr]['exp']}"
    )

    # The paper's claim: the minimum-cost width delivers (near-)optimal
    # performance and peak throughput.
    assert abs(best_cost - best_time) <= 1
    assert times[best_cost] <= times.min() * 1.1
    assert thr[best_cost] >= thr.max() * 0.9


def test_fig11_cost_and_time_strongly_correlated(benchmark, fig11_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    costs = np.array([r["cost"] for r in fig11_results])
    times = np.array([r["time_s"] for r in fig11_results])
    r = np.corrcoef(costs, times)[0, 1]
    print(f"\n  Pearson r(cost, time) = {r:.3f}")
    assert r > 0.9
