"""Figure 6 + Section 7.1 headline numbers.

Normalized SpMM speedup relative to cuSPARSE for the eight systems on the
seven GNN graphs, geometric mean over the dense-width sweep.  Paper
geomeans: Triton 0.11x, Sputnik 1.14x, dgSPARSE 1.16x, TACO 0.49x,
SparseTIR 1.63x, STile 1.36x, LiteForm 2.06x (all vs cuSPARSE = 1.0);
Triton OOMs on the largest graphs.
"""

import numpy as np
import pytest

from repro.baselines import LiteFormBaseline, make_baseline
from repro.bench import BenchTable, geomean
from repro.gpu.device import SimulatedOOMError

from repro.bench.harness import BENCH_J_VALUES, scaled_device

SYSTEMS = ("cusparse", "triton", "sputnik", "dgsparse", "taco", "sparsetir", "stile")

PAPER_GEOMEANS = {
    "cusparse": 1.0,
    "triton": 0.11,
    "sputnik": 1.14,
    "dgsparse": 1.16,
    "taco": 0.49,
    "sparsetir": 1.63,
    "stile": 1.36,
    "liteform": 2.06,
}


@pytest.fixture(scope="module")
def fig6_results(gnn_graphs, liteform):
    """speedup[graph][system] = geomean over J of t_cusparse / t_system."""
    results: dict[str, dict[str, float]] = {}
    fmt_cache: dict = {}
    for graph, A in gnn_graphs.items():
        dev = scaled_device(graph)
        per_J: dict[str, list[float]] = {s: [] for s in (*SYSTEMS, "liteform")}
        for J in BENCH_J_VALUES:
            times: dict[str, float] = {}
            for name in SYSTEMS:
                kwargs = {"format_cache": fmt_cache} if name == "sparsetir" else {}
                system = make_baseline(name, **kwargs)
                try:
                    prep = system.prepare(A, J, dev)
                    times[name] = system.measure(prep, J, dev).time_s
                except SimulatedOOMError:
                    times[name] = float("inf")
            lf = LiteFormBaseline(liteform)
            prep = lf.prepare(A, J, dev)
            times["liteform"] = lf.measure(prep, J, dev).time_s
            for name, t in times.items():
                per_J[name].append(
                    times["cusparse"] / t if np.isfinite(t) else float("nan")
                )
        results[graph] = {name: geomean(v) for name, v in per_J.items()}
        # remember OOMs (geomean of empty -> nan marks OOM)
        for name, v in per_J.items():
            if all(not np.isfinite(x) for x in v):
                results[graph][name] = float("inf")  # rendered as OOM
    return results


def test_fig6_normalized_speedup(benchmark, fig6_results):
    results = benchmark.pedantic(lambda: fig6_results, rounds=1, iterations=1)
    table = BenchTable(
        "Figure 6: normalized speedup vs cuSPARSE (geomean over J)",
        ["graph", *SYSTEMS, "liteform"],
    )
    for graph, row in results.items():
        table.add_row(graph, *(row[s] for s in (*SYSTEMS, "liteform")))
    gm = {
        s: geomean(
            row[s]
            for row in results.values()
            if np.isfinite(row[s]) and row[s] > 0
        )
        for s in (*SYSTEMS, "liteform")
    }
    table.add_row("GEOMEAN", *(gm[s] for s in (*SYSTEMS, "liteform")))
    table.add_row("paper", *(PAPER_GEOMEANS[s] for s in (*SYSTEMS, "liteform")))
    table.emit()

    # --- shape assertions (who wins, by roughly what factor) ----------
    # LiteForm wins overall and beats the composable-format competitors.
    assert gm["liteform"] > 1.3
    assert gm["liteform"] > gm["sparsetir"]
    assert gm["liteform"] > gm["stile"]
    # The hand-tuned fixed libraries modestly beat cuSPARSE...
    assert 0.9 < gm["sputnik"] < 2.0
    assert 0.9 < gm["dgsparse"] < 2.0
    # ...while TACO and Triton lose badly, Triton by an order of magnitude.
    assert gm["taco"] < 0.9
    assert gm["triton"] < 0.3


def test_fig6_triton_ooms_on_large_graphs(benchmark, gnn_graphs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The OOM bars of Figure 6: Triton's BSR blow-up exceeds device memory
    on the (scale-adjusted) largest graphs."""
    oom = {}
    for graph in ("proteins", "reddit"):
        dev = scaled_device(graph)
        system = make_baseline("triton")
        try:
            prep = system.prepare(gnn_graphs[graph], 512, dev)
            system.measure(prep, 512, dev)
            oom[graph] = False
        except SimulatedOOMError:
            oom[graph] = True
    print(f"\nTriton OOM status at J=512: {oom}")
    assert any(oom.values()), "expected at least one simulated OOM"


def test_fig6_liteform_wins_every_graph(benchmark, fig6_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Per-graph: LiteForm's bar tops cuSPARSE on all seven inputs
    (paper range 1.22x-3.73x)."""
    for graph, row in fig6_results.items():
        assert row["liteform"] > 1.0, graph
        assert row["liteform"] < 6.0, graph
