"""Figure 7: LiteForm vs optimal-tuned SparseTIR over the collection.

The paper reports a geometric-mean speedup of 0.99x (range 0.19x-5.21x)
relative to SparseTIR tuned with its full exhaustive search — i.e.
LiteForm's millisecond prediction matches hours of tuning on average, but
individual matrices land on both sides.
"""

import numpy as np
import pytest

from repro.baselines import LiteFormBaseline, SparseTIRBaseline
from repro.bench import BenchTable, geomean

FIG7_J = 128


@pytest.fixture(scope="module")
def fig7_results(collection, liteform, device):
    """Per-matrix (rows, t_sparsetir / t_liteform)."""
    lf = LiteFormBaseline(liteform)
    out = []
    for entry in collection:
        A = entry.matrix
        tir_prep = SparseTIRBaseline().prepare(A, FIG7_J, device)
        t_tir = SparseTIRBaseline().measure(tir_prep, FIG7_J, device).time_s
        lf_prep = lf.prepare(A, FIG7_J, device)
        t_lf = lf.measure(lf_prep, FIG7_J, device).time_s
        out.append((entry.name, entry.num_rows, t_tir / t_lf))
    return out


def test_fig7_liteform_vs_optimal_sparsetir(benchmark, fig7_results):
    results = benchmark.pedantic(lambda: fig7_results, rounds=1, iterations=1)
    speedups = np.array([s for _, _, s in results])
    table = BenchTable(
        "Figure 7: LiteForm speedup relative to optimal-tuned SparseTIR",
        ["statistic", "measured", "paper"],
    )
    table.add_row("geomean", geomean(speedups), 0.99)
    table.add_row("min", float(speedups.min()), 0.19)
    table.add_row("max", float(speedups.max()), 5.21)
    table.add_row("matrices", len(results), 1351)
    table.emit()
    from repro.bench.ascii_plot import scatter

    print(
        scatter(
            [r for _, r, _ in results],
            [s for _, _, s in results],
            hline=1.0,
            title="Figure 7 (scatter): speedup vs SparseTIR over matrix size",
            xlabel="rows (log)",
            ylabel="speedup (log)",
        )
    )
    print("  per-matrix (rows, speedup):")
    for name, rows, s in sorted(results, key=lambda r: r[1]):
        print(f"    {name:32s} rows={rows:7d} speedup={s:6.2f}")

    # Shape: near parity on average, with spread on both sides of 1.0.
    gm = geomean(speedups)
    assert 0.6 < gm < 1.5
    assert speedups.min() < 0.95
    assert speedups.max() > 1.05


def test_fig7_spread_is_wide(benchmark, fig7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The scatter is not degenerate: at least a 2x spread end to end."""
    speedups = np.array([s for _, _, s in fig7_results])
    assert speedups.max() / speedups.min() > 2.0
