"""Figure 8: format-construction overhead on the GNN graphs.

Paper: SparseTIR's auto-tuning and STile's microbenchmark search cost
geometric means of 65.5x and 42.3x LiteForm's construction overhead,
respectively (both orders of magnitude in absolute seconds on the largest
graphs).
"""

import pytest

from repro.baselines import LiteFormBaseline, SparseTIRBaseline, STileBaseline
from repro.bench import BenchTable, geomean
from repro.bench.harness import phase, scaled_device

FIG8_J = 128


@pytest.fixture(scope="module")
def fig8_results(gnn_graphs, liteform):
    out = {}
    for graph, A in gnn_graphs.items():
        dev = scaled_device(graph)
        with phase("fig8:prepare", graph=graph, system="sparsetir"):
            o_tir = SparseTIRBaseline().prepare(A, FIG8_J, dev).construction_overhead_s
        with phase("fig8:prepare", graph=graph, system="stile"):
            o_stile = STileBaseline().prepare(A, FIG8_J, dev).construction_overhead_s
        with phase("fig8:prepare", graph=graph, system="liteform"):
            o_lf = LiteFormBaseline(liteform).prepare(A, FIG8_J, dev).construction_overhead_s
        out[graph] = {"sparsetir": o_tir, "stile": o_stile, "liteform": o_lf}
    return out


def test_fig8_construction_overhead(benchmark, fig8_results):
    results = benchmark.pedantic(lambda: fig8_results, rounds=1, iterations=1)
    table = BenchTable(
        "Figure 8: format construction overhead (seconds)",
        ["graph", "sparsetir", "stile", "liteform", "tir/lf", "stile/lf"],
    )
    tir_ratios, stile_ratios = [], []
    for graph, row in results.items():
        tir_ratio = row["sparsetir"] / row["liteform"]
        stile_ratio = row["stile"] / row["liteform"]
        tir_ratios.append(tir_ratio)
        stile_ratios.append(stile_ratio)
        table.add_row(
            graph, row["sparsetir"], row["stile"], row["liteform"], tir_ratio, stile_ratio
        )
    table.add_row("GEOMEAN", "-", "-", "-", geomean(tir_ratios), geomean(stile_ratios))
    table.add_row("paper", "-", "-", "-", 65.5, 42.3)
    table.emit()

    # Shape: both tuners cost at least an order of magnitude more than
    # LiteForm's inference + search on every graph.
    for graph, row in results.items():
        assert row["sparsetir"] > 10 * row["liteform"], graph
        assert row["stile"] > 5 * row["liteform"], graph
    assert geomean(tir_ratios) > 20
    assert geomean(stile_ratios) > 10
    # SparseTIR's exhaustive search is the most expensive of the three.
    assert geomean(tir_ratios) > geomean(stile_ratios)


def test_fig8_liteform_overhead_is_lightweight(benchmark, fig8_results):
    """LiteForm's whole composition runs in seconds at most — the
    'lightweight' claim of the title.  (The bound is loose because this is
    real single-core wall-clock work, unlike the tuners' simulated GPU
    time; on the paper's 20-core host it is sub-second.)"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for graph, row in fig8_results.items():
        assert row["liteform"] < 3.0, graph
