"""Figure 9: construction overhead, SparseTIR vs LiteForm, over the
collection.  Paper: geometric-mean ratio 1150.2x."""

import numpy as np
import pytest

from repro.baselines import LiteFormBaseline, SparseTIRBaseline
from repro.bench import BenchTable, geomean, phase

FIG9_J = 128


@pytest.fixture(scope="module")
def fig9_results(collection, liteform, device):
    out = []
    for entry in collection:
        A = entry.matrix
        with phase("fig9:prepare", matrix=entry.name, system="sparsetir"):
            o_tir = SparseTIRBaseline().prepare(A, FIG9_J, device).construction_overhead_s
        with phase("fig9:prepare", matrix=entry.name, system="liteform"):
            o_lf = LiteFormBaseline(liteform).prepare(A, FIG9_J, device).construction_overhead_s
        out.append((entry.name, entry.num_rows, o_tir, o_lf))
    return out


def test_fig9_overhead_vs_matrix_size(benchmark, fig9_results):
    results = benchmark.pedantic(lambda: fig9_results, rounds=1, iterations=1)
    ratios = np.array([o_tir / o_lf for _, _, o_tir, o_lf in results])
    table = BenchTable(
        "Figure 9: construction overhead over the collection (seconds)",
        ["statistic", "measured", "paper"],
    )
    table.add_row("geomean ratio sparsetir/liteform", geomean(ratios), 1150.2)
    table.add_row("min ratio", float(ratios.min()), "-")
    table.add_row("max ratio", float(ratios.max()), "-")
    table.add_row("matrices", len(results), 1351)
    table.emit()
    from repro.bench.ascii_plot import scatter

    print(
        scatter(
            [rows for _, rows, _, _ in results] * 2,
            [o for _, _, o, _ in results] + [o for _, _, _, o in results],
            title="Figure 9 (scatter): construction overhead vs matrix size "
            "(upper band = SparseTIR, lower = LiteForm)",
            xlabel="rows (log)",
            ylabel="seconds (log)",
        )
    )
    print("  per-matrix (rows, sparsetir_s, liteform_s):")
    for name, rows, o_tir, o_lf in sorted(results, key=lambda r: r[1]):
        print(f"    {name:32s} rows={rows:7d} sparsetir={o_tir:9.2f}s liteform={o_lf:8.4f}s")

    # Shape: SparseTIR's overhead is orders of magnitude above LiteForm's
    # in most cases (the Fig. 9 scatter lives 2-4 decades up).
    gm = geomean(ratios)
    assert gm > 100
    assert (ratios > 10).mean() > 0.9


def test_fig9_liteform_overhead_scales_gently(benchmark, fig9_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """LiteForm's overhead grows roughly linearly with matrix size, staying
    below a second even for the largest collection entries."""
    for name, _, _, o_lf in fig9_results:
        assert o_lf < 1.5, name
