"""Table 1: prior work taxonomy (regenerated from the encoded rows)."""

from repro.baselines.taxonomy import TABLE1, liteform_row
from repro.bench import BenchTable


def test_table1_prior_work(benchmark):
    def build():
        table = BenchTable(
            "Table 1: prior work on sparse computation on GPUs",
            ["system", "category", "auto-select", "pattern-aware", "overhead"],
        )
        for r in TABLE1:
            table.add_row(
                r.system,
                r.category,
                "yes" if r.automatic_selection else "no",
                "yes" if r.sparsity_pattern_aware else "no",
                r.construction_overhead,
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    table.emit()
    lf = liteform_row()
    assert lf.automatic_selection and lf.sparsity_pattern_aware
    assert lf.construction_overhead == "low"
