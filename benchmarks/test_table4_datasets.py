"""Table 4: the input sparse matrices (GNN stand-ins + collection summary)."""

import numpy as np

from repro.bench import BenchTable
from repro.matrices import GNN_DATASETS


def test_table4_dataset_statistics(benchmark, gnn_graphs, collection):
    def build_table():
        table = BenchTable(
            "Table 4: sparse matrices information (stand-ins, see DESIGN.md)",
            ["graph", "#nodes", "#edges", "density", "paper_density", "scale"],
        )
        for name, A in gnn_graphs.items():
            spec = GNN_DATASETS[name]
            density = A.nnz / (A.shape[0] * A.shape[1])
            table.add_row(name, A.shape[0], A.nnz, density, spec.density, spec.scale)
        densities = [e.density for e in collection]
        rows = [e.num_rows for e in collection]
        table.add_row(
            f"collection({len(collection)})",
            f"{min(rows)}-{max(rows)}",
            f"{min(e.nnz for e in collection)}-{max(e.nnz for e in collection)}",
            f"{min(densities):.1e}-{max(densities):.1e}",
            "8.7e-07-0.1",
            1,
        )
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table.emit()

    # Shape assertions: stand-in densities track Table 4 within 30%.
    for name, A in gnn_graphs.items():
        spec = GNN_DATASETS[name]
        density = A.nnz / (A.shape[0] * A.shape[1])
        assert density == np.float64(density)
        assert abs(density - spec.density) / spec.density < 0.3, name
    # Collection spans several orders of magnitude of density (the paper's
    # 1,351 matrices span 8.7e-7-0.1; a 48-matrix sample at <=30k rows
    # covers a proportionate slice).
    densities = [e.density for e in collection]
    assert max(densities) / min(densities) > 3e2
    # The paper's filter: every matrix has >= 2000 rows (rmat rounds down
    # to a power of two, so allow its one-level slack).
    assert min(e.num_rows for e in collection) >= 1000
