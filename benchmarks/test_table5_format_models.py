"""Table 5: ML-model comparison for the CELL-benefit predictor.

Trains the ten classifiers on the Table 2 features with the 1.1x labels,
80/20 split, and reports training time, inference time, and micro-averaged
accuracy/precision/recall/F1 (which coincide — the Table 5 signature).
Paper: Random Forest best at 88.92%; Naive Bayes worst at 63.30%;
Gaussian Process slowest to train by orders of magnitude.
"""

import time

import pytest

from repro.bench import BenchTable
from repro.ml import (
    CLASSIFIER_NAMES,
    accuracy_score,
    f1_score,
    make_classifier_zoo,
    precision_score,
    recall_score,
    train_test_split,
)

PAPER_ACCURACY = {
    "Random Forest": 0.8892,
    "KNeighbors": 0.7931,
    "Linear SVM": 0.6700,
    "RBF SVM": 0.7340,
    "Gaussian Process": 0.8424,
    "Decision Tree": 0.8596,
    "Neural Net": 0.6650,
    "AdaBoost": 0.8645,
    "Naive Bayes": 0.6330,
    "QDA": 0.6675,
}


@pytest.fixture(scope="module")
def table5_results(training_data):
    X = training_data.format_X
    y = training_data.format_y.astype(int)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=0)
    rows = {}
    for name, factory in make_classifier_zoo(seed=0).items():
        model = factory()
        t0 = time.perf_counter()
        model.fit(Xtr, ytr)
        t_train = time.perf_counter() - t0
        t0 = time.perf_counter()
        pred = model.predict(Xte)
        t_infer = time.perf_counter() - t0
        rows[name] = {
            "train_s": t_train,
            "infer_s": t_infer,
            "accuracy": accuracy_score(yte, pred),
            "precision": precision_score(yte, pred),
            "recall": recall_score(yte, pred),
            "f1": f1_score(yte, pred),
        }
    return rows


def test_table5_model_comparison(benchmark, table5_results):
    rows = benchmark.pedantic(lambda: table5_results, rounds=1, iterations=1)
    table = BenchTable(
        "Table 5: classifiers predicting CELL performance benefit",
        ["name", "train(s)", "infer(s)", "acc", "prec", "recall", "f1", "paper_acc"],
    )
    for name in CLASSIFIER_NAMES:
        r = rows[name]
        table.add_row(
            name,
            r["train_s"],
            r["infer_s"],
            r["accuracy"],
            r["precision"],
            r["recall"],
            r["f1"],
            PAPER_ACCURACY[name],
        )
    table.emit()

    # Micro-averaged P/R/F1 equal accuracy (the identical-columns signature).
    for r in rows.values():
        assert r["precision"] == pytest.approx(r["accuracy"])
        assert r["f1"] == pytest.approx(r["accuracy"])

    # Shape: ensemble trees sit at the top, simple generative models at the
    # bottom, and the forest is deployable-accurate.
    rf = rows["Random Forest"]["accuracy"]
    assert rf > 0.7
    assert rf >= rows["Naive Bayes"]["accuracy"]
    tree_family = max(rows[n]["accuracy"] for n in ("Random Forest", "Decision Tree", "AdaBoost"))
    weak_family = min(rows[n]["accuracy"] for n in ("Random Forest", "Decision Tree", "AdaBoost"))
    assert tree_family >= rows["Naive Bayes"]["accuracy"]
    assert weak_family > 0.5


def test_table5_training_costs(benchmark, table5_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Training-cost ordering: Naive Bayes/KNN near-free; the forest takes
    well under a minute (paper: 0.29 s)."""
    rows = table5_results
    assert rows["Naive Bayes"]["train_s"] < rows["Random Forest"]["train_s"]
    assert rows["KNeighbors"]["train_s"] < rows["Random Forest"]["train_s"]
    assert rows["Random Forest"]["train_s"] < 60.0
