"""Table 6: ML-model comparison for the partition-count predictor.

Same ten classifiers on the Table 3 density features, with the cosine
similarity of Eq. 2 (per-matrix vectors of predicted vs actual partition
counts across dense widths) as the extra column.  Paper: Random Forest
87.30% / cos 0.77; most kernel/linear models collapse to the majority
class (~82%, cos 0.25); QDA fails outright (0.21%).
"""

import time
from collections import defaultdict

import numpy as np
import pytest

from repro.bench import BenchTable, geomean
from repro.ml import (
    CLASSIFIER_NAMES,
    accuracy_score,
    cosine_similarity,
    make_classifier_zoo,
    partition_similarity,
)

PAPER = {
    "Random Forest": (0.8730, 0.77),
    "KNeighbors": (0.8298, 0.23),
    "Linear SVM": (0.8245, 0.25),
    "RBF SVM": (0.8256, 0.25),
    "Gaussian Process": (0.8256, 0.25),
    "Decision Tree": (0.8540, 0.77),
    "Neural Net": (0.8245, 0.25),
    "AdaBoost": (0.8213, 0.25),
    "Naive Bayes": (0.5641, 0.29),
    "QDA": (0.0021, 0.25),
}


def _split_by_matrix(samples, test_frac=0.2, seed=0):
    """Split partition samples by *matrix* so one matrix's J-sweep stays on
    one side — needed for the per-matrix cosine similarity of Eq. 2."""
    names = sorted({s.name for s in samples})
    rng = np.random.default_rng(seed)
    rng.shuffle(names)
    n_test = max(1, int(round(len(names) * test_frac)))
    test_names = set(names[:n_test])
    train = [s for s in samples if s.name not in test_names]
    test = [s for s in samples if s.name in test_names]
    return train, test


@pytest.fixture(scope="module")
def table6_results(training_data):
    train, test = _split_by_matrix(training_data.partition_samples)
    Xtr = np.vstack([s.features for s in train])
    ytr = np.array([s.best_partitions for s in train])
    Xte = np.vstack([s.features for s in test])
    yte = np.array([s.best_partitions for s in test])
    rows = {}
    for name, factory in make_classifier_zoo(seed=0).items():
        model = factory()
        t0 = time.perf_counter()
        model.fit(Xtr, ytr)
        t_train = time.perf_counter() - t0
        t0 = time.perf_counter()
        pred = model.predict(Xte)
        t_infer = time.perf_counter() - t0
        # Eq. 2: cosine similarity of the per-matrix partition vectors.
        by_matrix = defaultdict(lambda: ([], []))
        for s, p in zip(test, pred):
            by_matrix[s.name][0].append(s.best_partitions)
            by_matrix[s.name][1].append(int(p))
        cos = np.mean(
            [cosine_similarity(np.array(a), np.array(b)) for a, b in by_matrix.values()]
        )
        # Eq. 1: mean relative-difference similarity per sample.
        eq1 = np.mean([partition_similarity(int(p), int(t)) for p, t in zip(pred, yte)])
        rows[name] = {
            "train_s": t_train,
            "infer_s": t_infer,
            "accuracy": accuracy_score(yte, pred),
            "cos_sim": float(cos),
            "eq1_sim": float(eq1),
        }
    return rows


def test_table6_model_comparison(benchmark, table6_results):
    rows = benchmark.pedantic(lambda: table6_results, rounds=1, iterations=1)
    table = BenchTable(
        "Table 6: classifiers predicting the optimal number of partitions",
        ["name", "train(s)", "infer(s)", "acc", "cos_sim", "eq1_sim", "paper_acc", "paper_cos"],
    )
    for name in CLASSIFIER_NAMES:
        r = rows[name]
        pa, pc = PAPER[name]
        table.add_row(
            name, r["train_s"], r["infer_s"], r["accuracy"], r["cos_sim"], r["eq1_sim"], pa, pc
        )
    table.emit()

    rf = rows["Random Forest"]
    # The adopted model is accurate and similar to ground truth.
    assert rf["accuracy"] > 0.6
    assert rf["cos_sim"] > 0.6
    # Tree models track the ground-truth vectors at least as well as the
    # majority-collapsing baselines (the paper's cos 0.77 vs 0.25 gap).
    assert rf["cos_sim"] >= rows["Naive Bayes"]["cos_sim"] - 0.05


def test_table6_similarity_vs_accuracy(benchmark, table6_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Eq. 1 similarity upper-bounds raw accuracy: wrong-but-close
    predictions earn partial credit (the motivation of Section 5.2)."""
    for name, r in table6_results.items():
        assert r["eq1_sim"] >= r["accuracy"] - 1e-9, name
