#!/usr/bin/env python
"""Cluster demo: a 4-shard serving fleet with routing, replication, chaos.

One `SpMMServer` scales a device pool; `ClusterFrontend` scales the
fleet.  Requests route to shards by plan key over a consistent-hash
ring, so every repeat of a matrix lands where its plan is cached.  This
demo drives a 4-shard fleet through the whole lifecycle:

1. replays skewed traffic and shows cache-aware routing — the fleet
   composes each fingerprint exactly once, wherever it is popular,
2. hammers one hot matrix until the frequency sketch flags it, its plan
   replicates to ring successors, and traffic spreads over the replicas
   by power-of-two-choices,
3. grows the fleet with `add_shard()` — only ~1/N of the keys move, and
   their plans move with them (no recompose storm),
4. kills the busiest shard mid-replay and shows that requests re-route
   through the repaired ring: cache warmth is lost, requests are not.

Run:  python examples/cluster_demo.py
"""

from repro.core import LiteForm, generate_training_data
from repro.matrices import SuiteSparseLikeCollection
from repro.serve import ClusterFrontend, SpMMRequest, WorkloadSpec, generate_workload


def fleet_misses(frontend: ClusterFrontend) -> int:
    return sum(s["cache"]["misses"] for s in frontend.snapshot()["shards"])


def main() -> None:
    # ------------------------------------------------------------------
    # Offline: train the predictors once, shared by every shard.
    print("training LiteForm's predictors on a 12-matrix collection ...")
    collection = SuiteSparseLikeCollection(size=12, max_rows=2_500, seed=1)
    lf = LiteForm().fit(generate_training_data(collection, J_values=(32,)))

    # ------------------------------------------------------------------
    # 1. Cache-aware routing: 120 requests over 10 matrices, 4 shards.
    spec = WorkloadSpec(
        num_requests=120, num_matrices=10, zipf_s=1.1,
        J_choices=(32,), max_rows=2_500, seed=7,
    )
    requests = generate_workload(spec)
    frontend = ClusterFrontend(
        lf, num_shards=4, replication=2, hot_fraction=0.25, seed=3
    )
    frontend.replay(requests)
    print(
        f"\n--- 4 shards, {spec.num_requests} requests over "
        f"{spec.num_matrices} matrices ---"
    )
    print(
        f"fleet composed {fleet_misses(frontend)} plans "
        f"(one per fingerprint), routing skew "
        f"{frontend.routing_skew:.2f}x"
    )

    # ------------------------------------------------------------------
    # 2. Hot-key replication: one matrix dominates the stream.
    hot = requests[0].matrix
    frontend.replay(
        [SpMMRequest(matrix=hot, B=None, J=32) for _ in range(60)]
    )
    m = frontend.metrics
    print("\n--- after hammering one matrix ---")
    print(
        f"hot keys {m.hot_keys}, plans replicated {m.plans_replicated}, "
        f"replica-routed requests {m.replica_routes}"
    )

    # ------------------------------------------------------------------
    # 3. Elastic growth: plans migrate with their keys.
    before = fleet_misses(frontend)
    change = frontend.add_shard()
    frontend.replay(requests)
    print(f"\n--- {change.shard_id} joined ---")
    print(
        f"{change.keys_moved}/{change.cached_keys} cached keys moved "
        f"({change.fraction:.0%} of the key space), "
        f"{change.plans_migrated} plans migrated"
    )
    print(
        f"replaying the same trace composed "
        f"{fleet_misses(frontend) - before} new plans (warm start)"
    )

    # ------------------------------------------------------------------
    # 4. Chaos: kill the busiest shard mid-replay.  The ring repairs,
    # requests re-route, and only cache warmth is lost.
    metrics = frontend.replay(requests, kill_shard_at_ms=len(requests) / 2)
    print("\n--- shard killed mid-replay ---")
    print(
        f"completed {metrics.completed - 120 - 60 - 120}/{len(requests)}, "
        f"failed {metrics.failed}, availability {metrics.availability:.0%}, "
        f"{len(frontend.shards)} shards live"
    )

    print("\n--- final fleet report ---")
    print(frontend.report())


if __name__ == "__main__":
    main()
