#!/usr/bin/env python
"""Format explorer: how each sparse format represents the same matrix.

Builds every storage format on a heterogeneous matrix (community core +
power-law overlay + dense rows) and reports storage footprint, padding
ratio, and simulated SpMM time — making the Section 2.1 trade-offs and the
Section 4 CELL design tangible.  Also sweeps CELL's two composition knobs
(partitions, max bucket width) to show the space Algorithm 3 searches.

Run:  python examples/format_explorer.py
"""

import numpy as np

from repro.core import build_buckets, matrix_cost_profiles
from repro.formats import (
    BCSRFormat,
    BlockedELLFormat,
    CELLFormat,
    COOFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.gpu import SimulatedDevice
from repro.kernels import (
    BCSRSpMM,
    CELLSpMM,
    ELLSpMM,
    RowSplitCSRSpMM,
    SlicedELLSpMM,
)
from repro.matrices import mixture_matrix

J = 128


def main() -> None:
    A = mixture_matrix(12_000, avg_degree=18, seed=11)
    device = SimulatedDevice()
    lengths = np.diff(A.indptr)
    print(
        f"matrix: {A.shape[0]}x{A.shape[1]} nnz={A.nnz} "
        f"rows: mean={lengths.mean():.1f} max={lengths.max()} "
        f"(mixture: community + power-law + dense rows)\n"
    )

    print(f"{'format':22s} {'stored':>10s} {'padding':>9s} {'MiB':>8s} {'SpMM ms':>9s}")
    cases = [
        ("COO", COOFormat.from_csr(A), None),
        ("CSR", CSRFormat.from_csr(A), RowSplitCSRSpMM()),
        ("ELL", ELLFormat.from_csr(A), ELLSpMM()),
        ("Sliced-ELL (h=32)", SlicedELLFormat.from_csr(A, slice_height=32), SlicedELLSpMM()),
        ("BCSR 8x8", BCSRFormat.from_csr(A, block_shape=(8, 8)), BCSRSpMM()),
        ("Blocked-ELL 16x16", BlockedELLFormat.from_csr(A, block_shape=(16, 16)), None),
        ("CELL (natural)", CELLFormat.from_csr(A, num_partitions=1), CELLSpMM()),
    ]
    for name, fmt, kernel in cases:
        t = (
            f"{kernel.measure(fmt, J, device).time_ms:9.3f}"
            if kernel is not None
            else f"{'-':>9s}"
        )
        print(
            f"{name:22s} {fmt.stored_elements:10d} {fmt.padding_ratio:8.1%} "
            f"{fmt.footprint_bytes / 2**20:8.2f} {t}"
        )

    print("\nCELL composition space (simulated SpMM ms):")
    kernel = CELLSpMM()
    widths = [4, 16, 64, 256]
    print(f"{'partitions':>10s} " + " ".join(f"W={w:<6d}" for w in widths) + "  Algorithm 3")
    for P in (1, 2, 4, 8):
        row = []
        for w in widths:
            fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=w)
            row.append(f"{kernel.measure(fmt, J, device).time_ms:8.3f}")
        profiles = matrix_cost_profiles(A, P)
        chosen = [1 << build_buckets(p, J, num_partitions=P).max_exp for p in profiles]
        fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=chosen)
        alg3 = kernel.measure(fmt, J, device).time_ms
        row.append(f"{alg3:8.3f} (widths={chosen})")
        print(f"{P:10d} " + " ".join(row))
    print("\nAlgorithm 3 lands on (or near) the best column of each row —")
    print("without ever executing a kernel.")


if __name__ == "__main__":
    main()
