#!/usr/bin/env python
"""A two-layer GCN forward pass built on the library's sparse kernels.

The paper's introduction motivates SpMM with graph neural networks; this
example closes the loop by implementing an actual GCN forward pass
(Kipf & Welling) whose sparse aggregations run through LiteForm-composed
CELL formats, plus an attention-score step using the SDDMM extension:

    H1 = ReLU(A_hat @ (X W0))          # SpMM aggregation, layer 1
    S  = A .* (H1 @ H1^T)              # SDDMM edge scores (attention-style)
    H2 = softmax(A_hat @ (H1 W1))      # SpMM aggregation, layer 2

Run:  python examples/gcn_layer.py [graph]
"""

import sys

import numpy as np
import scipy.sparse as sp

from repro.core import LiteForm, generate_training_data
from repro.formats.base import as_csr
from repro.formats.cell import CELLFormat
from repro.kernels.sddmm import CELLSDDMM
from repro.matrices import GNN_DATASETS, SuiteSparseLikeCollection, make_gnn_standin


def normalize(A):
    A_hat = as_csr(A + sp.eye(A.shape[0], format="csr", dtype=np.float32))
    d = np.asarray(A_hat.sum(axis=1)).ravel()
    D = sp.diags(1.0 / np.sqrt(np.maximum(d, 1e-12))).astype(np.float32)
    return as_csr(D @ A_hat @ D)


def main() -> None:
    graph = sys.argv[1] if len(sys.argv) > 1 else "cora"
    if graph not in GNN_DATASETS:
        raise SystemExit(f"unknown graph {graph!r}; choose from {sorted(GNN_DATASETS)}")
    rng = np.random.default_rng(0)
    A = make_gnn_standin(graph, seed=1)
    A_hat = normalize(A)
    n = A.shape[0]
    f_in, f_hidden, f_out = 128, 64, 16
    X = rng.standard_normal((n, f_in)).astype(np.float32)
    W0 = (rng.standard_normal((f_in, f_hidden)) / np.sqrt(f_in)).astype(np.float32)
    W1 = (rng.standard_normal((f_hidden, f_out)) / np.sqrt(f_hidden)).astype(np.float32)

    print(f"{graph}: {n} nodes, {A.nnz} edges; GCN {f_in}->{f_hidden}->{f_out}")
    print("training LiteForm (offline, amortized) ...")
    lf = LiteForm().fit(
        generate_training_data(
            SuiteSparseLikeCollection(size=16, max_rows=8_000, seed=3), J_values=(32, 64)
        )
    )

    total_ms = 0.0
    # layer 1: aggregate
    plan = lf.compose(A_hat, f_hidden)
    H1, m = lf.run(plan, X @ W0)
    H1 = np.maximum(H1, 0.0)
    total_ms += m.time_ms
    print(f"layer 1 SpMM: {m.time_ms:.3f} ms simulated "
          f"(P={plan.num_partitions}, widths={plan.max_widths})")

    # attention-style edge scores with SDDMM on the CELL format
    cell = CELLFormat.from_csr(A, num_partitions=1)
    scores = CELLSDDMM().execute(cell, (H1, H1))
    m_sddmm = lf.device.measure(CELLSDDMM().plan(cell, f_hidden))
    total_ms += m_sddmm.time_ms
    print(f"edge-score SDDMM: {m_sddmm.time_ms:.3f} ms simulated "
          f"({scores.nnz} scored edges)")

    # layer 2: aggregate + softmax
    plan2 = lf.compose(A_hat, f_out)
    H2, m2 = lf.run(plan2, H1 @ W1)
    total_ms += m2.time_ms
    logits = H2 - H2.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    print(f"layer 2 SpMM: {m2.time_ms:.3f} ms simulated")

    # sanity: valid distribution, finite activations
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
    assert np.isfinite(H1).all() and np.isfinite(H2).all()
    print(f"\nforward pass OK; total simulated sparse-kernel time {total_ms:.3f} ms")
    print(f"output class distribution entropy: "
          f"{-(probs * np.log(probs + 1e-12)).sum(axis=1).mean():.3f} nats")


if __name__ == "__main__":
    main()
