#!/usr/bin/env python
"""GNN aggregation workload: SpMM on the Table 4 benchmark graphs.

A graph neural network layer computes ``H' = A_hat @ (H W)`` — the sparse
half is exactly the SpMM this library optimizes.  This example runs one
aggregation step on every GNN stand-in graph at several feature widths and
compares LiteForm's composed CELL format against the fixed-format
baselines, reproducing the texture of Figure 6 at example scale.

Run:  python examples/gnn_spmm.py [graph ...]
"""

import sys

import numpy as np

from repro.baselines import LiteFormBaseline, make_baseline
from repro.core import LiteForm, generate_training_data
from repro.gpu.device import SimulatedOOMError
from repro.matrices import GNN_DATASETS, SuiteSparseLikeCollection, make_gnn_standin

SYSTEMS = ("cusparse", "sputnik", "dgsparse", "triton")
FEATURE_WIDTHS = (32, 128)


def normalize_adjacency(A):
    """Symmetric GCN normalization: D^-1/2 (A + I) D^-1/2."""
    import scipy.sparse as sp

    from repro.formats.base import as_csr

    A_hat = as_csr(A + sp.eye(A.shape[0], format="csr", dtype=np.float32))
    deg = np.asarray(A_hat.sum(axis=1)).ravel()
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    D = sp.diags(d_inv_sqrt).astype(np.float32)
    return as_csr(D @ A_hat @ D)


def main() -> None:
    graphs = sys.argv[1:] or ["cora", "citeseer", "pubmed", "ppi"]
    unknown = set(graphs) - set(GNN_DATASETS)
    if unknown:
        raise SystemExit(f"unknown graphs {sorted(unknown)}; choose from {sorted(GNN_DATASETS)}")

    print("training LiteForm (offline, amortized) ...")
    training = generate_training_data(
        SuiteSparseLikeCollection(size=24, max_rows=10_000, seed=5), J_values=(32, 128)
    )
    lf = LiteForm().fit(training)
    lf_system = LiteFormBaseline(lf)
    device = lf.device
    rng = np.random.default_rng(0)

    header = f"{'graph':10s} {'J':>4s} " + " ".join(f"{s:>10s}" for s in SYSTEMS) + f" {'liteform':>10s}"
    print("\nsimulated SpMM time (ms); GCN-normalized adjacency")
    print(header)
    for name in graphs:
        A_hat = normalize_adjacency(make_gnn_standin(name, seed=1))
        for J in FEATURE_WIDTHS:
            H = rng.standard_normal((A_hat.shape[1], J)).astype(np.float32)
            cells = []
            for sysname in SYSTEMS:
                system = make_baseline(sysname)
                try:
                    prep = system.prepare(A_hat, J, device)
                    C, m = system.execute(prep, H, device)
                    cells.append(f"{m.time_ms:10.3f}")
                except SimulatedOOMError:
                    cells.append(f"{'OOM':>10s}")
            prep = lf_system.prepare(A_hat, J, device)
            C, m = lf_system.execute(prep, H, device)
            cells.append(f"{m.time_ms:10.3f}")
            print(f"{name:10s} {J:4d} " + " ".join(cells))
    print("\n(LiteForm column uses the trained pipeline end to end:")
    print(" selector -> partition predictor -> Algorithm 3 -> CELL kernel.)")


if __name__ == "__main__":
    main()
