#!/usr/bin/env python
"""Multi-GPU SpMM scaling — the Section 10 future-work item, implemented.

Row-decomposes a large graph's SpMM across 1-8 simulated V100s (balanced
by non-zeros), composes a CELL format per shard with LiteForm, and reports
the strong-scaling curve including broadcast/gather communication.  Small
inputs show the classic communication-bound crossover.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.core import LiteForm, generate_training_data
from repro.gpu.multi import MultiGPUSimulator, MultiGPUSpec, liteform_compose_fn
from repro.matrices import SuiteSparseLikeCollection, make_gnn_standin, power_law_graph

J = 256


def main() -> None:
    print("training LiteForm (offline, amortized) ...")
    training = generate_training_data(
        SuiteSparseLikeCollection(size=16, max_rows=8_000, seed=13), J_values=(32, 256)
    )
    lf = LiteForm().fit(training)
    compose = liteform_compose_fn(lf)

    workloads = {
        "reddit-standin": make_gnn_standin("reddit", seed=1),
        "small-graph": power_law_graph(2_000, 8, seed=2),
    }
    for name, A in workloads.items():
        print(f"\n{name}: {A.shape[0]} rows, {A.nnz} nnz, J={J}")
        print(f"{'GPUs':>5s} {'total_ms':>10s} {'compute_ms':>11s} {'comm_ms':>9s} "
              f"{'speedup':>8s} {'balance':>8s}")
        base = None
        for g in (1, 2, 4, 8):
            sim = MultiGPUSimulator(MultiGPUSpec(num_gpus=g))
            r = sim.measure(A, J, compose)
            base = base or r.total_s
            comm = r.broadcast_s + r.gather_s
            print(f"{g:5d} {r.total_s*1e3:10.3f} {r.compute_s*1e3:11.3f} "
                  f"{comm*1e3:9.3f} {base/r.total_s:8.2f} {r.balance:8.2f}")
    print("\nLarge inputs scale until communication dominates; tiny inputs")
    print("lose immediately — the standard strong-scaling crossover.")


if __name__ == "__main__":
    main()
