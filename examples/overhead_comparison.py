#!/usr/bin/env python
"""Construction-overhead comparison: LiteForm vs auto-tuning (Figs. 8-9).

For a sequence of growing matrices, measures what each composable-format
system spends *before* the first useful SpMM:

* SparseTIR — exhaustive (partitions x width) search, compiling and timing
  every candidate;
* STile — microbenchmark-calibrated hybrid search;
* LiteForm — two model inferences + the Algorithm 3 cost-model search.

Run:  python examples/overhead_comparison.py
"""

import numpy as np

from repro.baselines import LiteFormBaseline, SparseTIRBaseline, STileBaseline
from repro.core import LiteForm, generate_training_data
from repro.gpu import SimulatedDevice
from repro.matrices import SuiteSparseLikeCollection, power_law_graph

J = 128


def main() -> None:
    device = SimulatedDevice()
    print("training LiteForm (offline, amortized) ...")
    training = generate_training_data(
        SuiteSparseLikeCollection(size=20, max_rows=8_000, seed=9), J_values=(32, 128)
    )
    lf_system = LiteFormBaseline(LiteForm().fit(training))

    sizes = (2_000, 8_000, 32_000)
    print(f"\n{'rows':>8s} {'nnz':>10s} {'sparsetir(s)':>13s} {'stile(s)':>10s} "
          f"{'liteform(s)':>12s} {'tir/lf':>9s} {'stile/lf':>9s}")
    ratios_tir, ratios_stile = [], []
    for n in sizes:
        A = power_law_graph(n, avg_degree=14, seed=n)
        o_tir = SparseTIRBaseline().prepare(A, J, device).construction_overhead_s
        o_stile = STileBaseline().prepare(A, J, device).construction_overhead_s
        o_lf = lf_system.prepare(A, J, device).construction_overhead_s
        ratios_tir.append(o_tir / o_lf)
        ratios_stile.append(o_stile / o_lf)
        print(f"{n:8d} {A.nnz:10d} {o_tir:13.2f} {o_stile:10.2f} {o_lf:12.4f} "
              f"{o_tir / o_lf:9.0f}x {o_stile / o_lf:8.0f}x")

    gm = lambda v: float(np.exp(np.mean(np.log(v))))
    print(f"\ngeomean overhead ratio: SparseTIR/LiteForm = {gm(ratios_tir):.0f}x, "
          f"STile/LiteForm = {gm(ratios_stile):.0f}x")
    print("(paper, Figure 8: 65.5x and 42.3x on the GNN graphs; Figure 9: "
          "1150x over the SuiteSparse collection)")


if __name__ == "__main__":
    main()
