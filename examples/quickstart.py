#!/usr/bin/env python
"""Quickstart: compose a CELL format with LiteForm and run SpMM.

Walks the whole public API in one page:

1. generate a sparse workload,
2. train LiteForm's predictors on a small synthetic collection (offline,
   amortized — Section 5.1),
3. compose the format for a new matrix in milliseconds (Figure 2),
4. execute SpMM on the simulated V100 and check the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LiteForm, generate_training_data
from repro.formats import CSRFormat
from repro.kernels import RowSplitCSRSpMM, spmm_reference
from repro.matrices import SuiteSparseLikeCollection, power_law_graph


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A sparse workload: a power-law graph (hub-heavy row lengths, the
    #    regime where fixed formats struggle) and a dense feature matrix.
    A = power_law_graph(n=20_000, avg_degree=12, seed=7)
    J = 128
    B = np.random.default_rng(0).standard_normal((A.shape[1], J)).astype(np.float32)
    print(f"matrix: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}, "
          f"max row={int(np.diff(A.indptr).max())}")

    # ------------------------------------------------------------------
    # 2. Offline: train the two predictors from simulated execution history.
    print("training LiteForm's predictors on a 24-matrix collection ...")
    collection = SuiteSparseLikeCollection(size=24, max_rows=10_000, seed=1)
    training = generate_training_data(collection, J_values=(32, 128))
    lf = LiteForm().fit(training)

    # ------------------------------------------------------------------
    # 3. Online: compose the format for the new matrix.  No kernel runs,
    #    no auto-tuning — two model inferences and a cost-model search.
    plan = lf.compose(A, J)
    print(f"composed: use_cell={plan.use_cell}, partitions={plan.num_partitions}, "
          f"max bucket widths={plan.max_widths}")
    print(f"construction overhead: {plan.overhead.total_s * 1e3:.1f} ms "
          f"(selection {plan.overhead.selection_s * 1e3:.2f}, "
          f"partition {plan.overhead.partition_s * 1e3:.2f}, "
          f"width search {plan.overhead.search_s * 1e3:.2f}, "
          f"build {plan.overhead.build_s * 1e3:.2f})")

    # ------------------------------------------------------------------
    # 4. Execute on the simulated V100 and compare with cuSPARSE-style CSR.
    C, measurement = lf.run(plan, B)
    np.testing.assert_allclose(C, spmm_reference(A, B), rtol=1e-4, atol=1e-4)
    print(f"SpMM result verified; simulated time {measurement.time_ms:.3f} ms")

    csr_time = RowSplitCSRSpMM().measure(CSRFormat.from_csr(A), J, lf.device).time_s
    print(f"cuSPARSE-style CSR baseline: {csr_time * 1e3:.3f} ms "
          f"-> speedup {csr_time / measurement.time_s:.2f}x")


if __name__ == "__main__":
    main()
