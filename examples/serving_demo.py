#!/usr/bin/env python
"""Serving demo: replay Zipf traffic through `SpMMServer` with plan caching.

The one-shot pipeline composes a format per matrix; a serving deployment
sees the *same* matrices over and over (hot GNN graphs, popular
recommender shards), so composed plans should be cached and reused.
This demo:

1. generates a seeded Zipf(1.1) workload over a small matrix pool,
2. replays it through :class:`repro.serve.SpMMServer` on two simulated
   devices — under a :class:`repro.obs.Tracer`, so every request leaves
   nested spans (cache lookup, admission, compose stages, execution),
3. replays a latency-sensitive tier with a composition deadline, showing
   admission control degrading to the CSR fallback instead of blocking,
4. prints the metrics snapshot, a span flame summary, and writes a
   Chrome trace (open build/serving_demo_trace.json in
   https://ui.perfetto.dev).

Run:  python examples/serving_demo.py
"""

from pathlib import Path

from repro.core import LiteForm, generate_training_data
from repro.matrices import SuiteSparseLikeCollection
from repro.obs import tracing
from repro.serve import PlanCache, SpMMServer, WorkloadSpec, generate_workload

#: Trace output lives under build/ (gitignored), not the repo root.
TRACE_PATH = Path("build") / "serving_demo_trace.json"


def main() -> None:
    # ------------------------------------------------------------------
    # Offline: train the predictors once (amortized across all traffic).
    print("training LiteForm's predictors on a 12-matrix collection ...")
    collection = SuiteSparseLikeCollection(size=12, max_rows=2_500, seed=1)
    lf = LiteForm().fit(generate_training_data(collection, J_values=(32, 128)))

    # ------------------------------------------------------------------
    # Online: 150 requests over 10 matrices, web-like popularity skew.
    spec = WorkloadSpec(
        num_requests=150, num_matrices=10, zipf_s=1.1,
        J_choices=(32, 64, 128), max_rows=2_500, seed=7,
    )
    server = SpMMServer(
        liteform=lf, cache=PlanCache(max_bytes=128 * 2**20), num_devices=2
    )
    with tracing() as tracer:
        server.replay(generate_workload(spec))
    print("\n--- best-effort tier ---")
    print(server.report())

    # ------------------------------------------------------------------
    # Where did the time go?  The tracer recorded a span per request with
    # children for cache lookup, compose stages, and kernel launches.
    TRACE_PATH.parent.mkdir(parents=True, exist_ok=True)
    out = tracer.write(TRACE_PATH)
    print(f"\n--- trace: {len(tracer.spans)} spans "
          f"({tracer.coverage():.0%} of wall time), written to {out} ---")
    print(tracer.flame_summary())

    # ------------------------------------------------------------------
    # A latency-sensitive tier: half the requests carry a 0.5 ms composition
    # deadline far below what the pipeline needs, so admission control
    # serves them the CSR row-split fallback immediately.
    tight = WorkloadSpec(
        num_requests=60, num_matrices=10, zipf_s=1.1,
        J_choices=(32, 64, 128), max_rows=2_500, seed=8,
        deadline_ms=0.5, deadline_fraction=0.5,
    )
    server.replay(generate_workload(tight))
    print("\n--- after the deadline tier ---")
    print(server.report())

    snap = server.snapshot()
    print(
        f"\nsnapshot: hit_rate={snap['hit_rate']:.1%} "
        f"degraded={snap['degraded']} "
        f"compose saved {snap['compose_saved_s'] * 1e3:.0f} ms "
        f"vs spent {snap['compose_spent_s'] * 1e3:.0f} ms"
    )


if __name__ == "__main__":
    main()
