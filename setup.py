"""Shim for legacy editable installs (environment lacks the wheel package)."""
from setuptools import setup

setup()
