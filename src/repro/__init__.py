"""Reproduction of LiteForm (HPDC '25): lightweight automatic format
composition for sparse matrix-matrix multiplication on (simulated) GPUs.

High-level entry points:

* :class:`repro.core.LiteForm` — the paper's pipeline (Figure 2);
* :func:`repro.spmm` — one-call SpMM with any of the compared systems;
* :mod:`repro.formats` — CELL and the classic sparse formats;
* :mod:`repro.baselines` — the seven Section 7 comparison systems;
* :mod:`repro.gpu` — the analytical V100 performance model;
* :mod:`repro.serve` — the SpMM serving layer (plan cache, admission
  control, workload replay) amortizing composition across requests.

See README.md for a guided tour and DESIGN.md for the reproduction plan.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__version__ = "1.0.0"


def spmm(
    A: sp.spmatrix,
    B: np.ndarray,
    method: str = "cell",
    device=None,
    **format_kwargs,
):
    """One-call SpMM: ``C = A @ B`` through a chosen format/kernel pair.

    Parameters
    ----------
    A, B:
        Sparse matrix and dense operand.
    method:
        ``"cell"`` (CELL format, optionally with ``num_partitions`` /
        ``max_widths``), ``"csr"``, ``"sputnik"``, ``"dgsparse"``,
        ``"taco"``, ``"bcsr"``, ``"ell"``, or ``"sliced-ell"``.
    device:
        Optional :class:`repro.gpu.SimulatedDevice` for the measurement.

    Returns
    -------
    (C, measurement):
        The numeric product and the simulated-device measurement.
    """
    from repro.formats.base import as_csr
    from repro.gpu import SimulatedDevice
    from repro.kernels.registry import resolve

    fmt_cls, kernel_cls = resolve(method)
    fmt = fmt_cls.from_csr(as_csr(A), **format_kwargs)
    return kernel_cls().run(fmt, np.asarray(B), device or SimulatedDevice())


#: Serving-layer names importable from the top level (resolved lazily so
#: ``import repro`` stays light).
_SERVE_EXPORTS = (
    "SpMMServer",
    "SpMMRequest",
    "SpMMResponse",
    "ResponseStatus",
    "PlanCache",
    "WorkloadSpec",
    "generate_workload",
    "Scheduler",
    "Batcher",
    "ClusterFrontend",
    "ShardRing",
)


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        import repro.serve as serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["spmm", "__version__", *_SERVE_EXPORTS]
