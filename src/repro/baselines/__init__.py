"""Baseline SpMM systems of the paper's evaluation (Section 7).

Each baseline reimplements the *scheduling strategy* of the corresponding
system as a kernel on the simulated GPU, behind a uniform
``prepare -> measure/execute`` interface that also accounts construction
overhead (the quantity of Figures 8-9):

* cuSPARSE, Sputnik, dgSPARSE — fixed CSR kernels;
* Triton — block-sparse BSR kernel (OOMs on the large graphs, Fig. 6);
* TACO — 36-point schedule sweep, best time reported (Section 7.1);
* SparseTIR — composable ``hyb`` format with exhaustive auto-tuning;
* STile — hybrid per-panel formats with microbenchmark-guided search;
* LiteForm — this paper, wrapping :class:`repro.core.LiteForm`.
"""

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.baselines.fixed import (
    CuSparseBaseline,
    DgSparseBaseline,
    SputnikBaseline,
    TritonBaseline,
)
from repro.baselines.liteform import LiteFormBaseline
from repro.baselines.registry import FIG6_BASELINES, make_baseline
from repro.baselines.sparsetir import SparseTIRBaseline
from repro.baselines.stile import STileBaseline
from repro.baselines.taco import TacoBaseline

__all__ = [
    "BaselineSystem",
    "PreparedInput",
    "CuSparseBaseline",
    "SputnikBaseline",
    "DgSparseBaseline",
    "TritonBaseline",
    "TacoBaseline",
    "SparseTIRBaseline",
    "STileBaseline",
    "LiteFormBaseline",
    "FIG6_BASELINES",
    "make_baseline",
]
