"""Seer-style automatic format selection — Table 1's middle category.

The paper's taxonomy places "Automatic Selection" systems (Seer, Auto-SpMV,
SpTFS, IA-SpGEMM, AlphaSparse) between fixed formats and composable ones:
an ML model picks the best *fixed* format per input, but one format must
serve the whole matrix.  The paper argues this ceiling is what composable
formats break through; this baseline makes that argument measurable.

A Random Forest over the Table 2 features picks among four fixed
format/kernel pairs; training labels come from simulated execution, like
LiteForm's own training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.formats.base import SparseFormat
from repro.formats.bcsr import BCSRFormat
from repro.formats.csr import CSRFormat
from repro.formats.sliced_ell import SlicedELLFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.kernels.base import SpMMKernel
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM, SputnikSpMM
from repro.kernels.ell_spmm import SlicedELLSpMM
from repro.matrices.features import format_selection_features
from repro.ml.forest import RandomForestClassifier


@dataclass(frozen=True)
class _Candidate:
    key: str
    build: object  # (csr_matrix) -> SparseFormat
    kernel: object  # () -> SpMMKernel


CANDIDATES: tuple[_Candidate, ...] = (
    _Candidate("csr", lambda A: CSRFormat.from_csr(A), RowSplitCSRSpMM),
    _Candidate("csr-swizzled", lambda A: CSRFormat.from_csr(A), SputnikSpMM),
    _Candidate("bcsr", lambda A: BCSRFormat.from_csr(A, block_shape=(8, 8)), BCSRSpMM),
    _Candidate(
        "sliced-ell", lambda A: SlicedELLFormat.from_csr(A, slice_height=32), SlicedELLSpMM
    ),
)
_BY_KEY = {c.key: c for c in CANDIDATES}


class AutoSelectBaseline(BaselineSystem):
    """ML-selected fixed format (one format for the whole matrix)."""

    name = "autoselect"

    def __init__(self, model=None):
        self.model = model or RandomForestClassifier(n_estimators=50, seed=0)
        self._fitted = False
        self._constant: str | None = None

    # ------------------------------------------------------------------
    def fit(self, entries, device: SimulatedDevice, J_values=(32, 128)) -> "AutoSelectBaseline":
        """Label each training matrix with its fastest fixed candidate."""
        X, y = [], []
        for entry in entries:
            name, A = (entry if isinstance(entry, tuple) else (entry.name, entry.matrix))
            if A.nnz == 0:
                continue
            best_key, best_time = None, float("inf")
            for cand in CANDIDATES:
                try:
                    fmt = cand.build(A)
                    t = float(
                        np.mean([cand.kernel().measure(fmt, J, device).time_s for J in J_values])
                    )
                except SimulatedOOMError:
                    continue
                if t < best_time:
                    best_key, best_time = cand.key, t
            if best_key is None:
                continue
            X.append(format_selection_features(A))
            y.append(best_key)
        if not X:
            raise ValueError("no usable training matrices")
        y_arr = np.array(y)
        if np.unique(y_arr).size < 2:
            self._constant = str(y_arr[0])
        else:
            self.model.fit(np.vstack(X), y_arr)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        if not self._fitted:
            raise RuntimeError("AutoSelectBaseline.fit must run before prepare")
        A = self._canonical(A)
        t0 = time.perf_counter()
        if self._constant is not None:
            key = self._constant
        else:
            key = str(self.model.predict(format_selection_features(A)[None, :])[0])
        cand = _BY_KEY[key]
        fmt: SparseFormat = cand.build(A)
        kernel: SpMMKernel = cand.kernel()
        overhead = time.perf_counter() - t0
        return PreparedInput(
            system=self.name,
            fmt=fmt,
            kernel=kernel,
            construction_overhead_s=overhead,
            config={"selected": key},
        )
