"""Uniform interface for the compared SpMM systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.formats.base import SparseFormat, as_csr
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import Measurement
from repro.kernels.base import SpMMKernel


@dataclass
class PreparedInput:
    """A matrix converted/tuned into a system's execution-ready form.

    ``construction_overhead_s`` is the cost of getting here: wall-clock
    seconds for work this reproduction actually performs (format conversion,
    model inference, cost-model search) plus simulated seconds for work the
    original systems spend on the GPU/compiler (auto-tuning trials, kernel
    compilation, microbenchmarks).  Figures 8-9 compare exactly this
    quantity across systems.
    """

    system: str
    fmt: SparseFormat
    kernel: SpMMKernel
    construction_overhead_s: float
    config: dict[str, Any] = field(default_factory=dict)


class BaselineSystem(abc.ABC):
    """One system of the Section 7 comparison."""

    #: Display name used in figures (matches the paper's legends).
    name: str = "abstract"

    @abc.abstractmethod
    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        """Convert (and, for tuners, auto-tune) the matrix for width ``J``."""

    def measure(self, prepared: PreparedInput, J: int, device: SimulatedDevice) -> Measurement:
        """Simulated execution time of the prepared input."""
        return prepared.kernel.measure(prepared.fmt, J, device)

    def execute(
        self, prepared: PreparedInput, B: np.ndarray, device: SimulatedDevice
    ) -> tuple[np.ndarray, Measurement]:
        """Numeric result + simulated measurement."""
        return prepared.kernel.run(prepared.fmt, B, device)

    @staticmethod
    def _canonical(A: sp.spmatrix) -> sp.csr_matrix:
        return as_csr(A)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
