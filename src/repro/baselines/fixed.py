"""Fixed-format baselines: cuSPARSE, Sputnik, dgSPARSE, Triton."""

from __future__ import annotations

import time

import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.formats.bcsr import BCSRFormat
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.csr_spmm import DgSparseSpMM, RowSplitCSRSpMM, SputnikSpMM


class _FixedCSRBaseline(BaselineSystem):
    """Shared plumbing for the CSR-based libraries: conversion only."""

    kernel_cls = RowSplitCSRSpMM

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        t0 = time.perf_counter()
        fmt = CSRFormat.from_csr(self._canonical(A))
        overhead = time.perf_counter() - t0
        return PreparedInput(
            system=self.name,
            fmt=fmt,
            kernel=self.kernel_cls(),
            construction_overhead_s=overhead,
        )


class CuSparseBaseline(_FixedCSRBaseline):
    """NVIDIA cuSPARSE: generic row-split CSR SpMM."""

    name = "cusparse"
    kernel_cls = RowSplitCSRSpMM


class SputnikBaseline(_FixedCSRBaseline):
    """Sputnik [Gale et al.]: row-swizzled, output-tiled CSR SpMM."""

    name = "sputnik"
    kernel_cls = SputnikSpMM


class DgSparseBaseline(_FixedCSRBaseline):
    """dgSPARSE: coalesced row-group CSR SpMM."""

    name = "dgsparse"
    kernel_cls = DgSparseSpMM


class TritonBaseline(BaselineSystem):
    """Triton block-sparse SpMM over BSR tiles.

    Conversion to BSR inflates the footprint by the tile padding ratio;
    the large Fig. 6 graphs exceed device memory (the OOM bars).
    """

    name = "triton"

    def __init__(self, block_shape: tuple[int, int] = (16, 16)):
        self.block_shape = block_shape

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        t0 = time.perf_counter()
        fmt = BCSRFormat.from_csr(self._canonical(A), block_shape=self.block_shape)
        overhead = time.perf_counter() - t0
        return PreparedInput(
            system=self.name,
            fmt=fmt,
            kernel=BCSRSpMM(),
            construction_overhead_s=overhead,
            config={"block_shape": self.block_shape},
        )
