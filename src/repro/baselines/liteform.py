"""LiteForm as a baseline-system wrapper (this paper's system)."""

from __future__ import annotations

import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.core.pipeline import LiteForm
from repro.gpu.device import SimulatedDevice


class LiteFormBaseline(BaselineSystem):
    """Adapter exposing :class:`repro.core.LiteForm` through the baseline
    interface, so figures sweep all systems uniformly.

    Construction overhead is the *wall-clock* compose time — LiteForm's
    whole point is that its construction does no kernel trials, so there is
    no simulated-tuning component (Figures 8-9).
    """

    name = "liteform"

    def __init__(self, liteform: LiteForm, force_cell: bool | None = None):
        self.liteform = liteform
        self.force_cell = force_cell

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        plan = self.liteform.compose(A, J, force_cell=self.force_cell)
        return PreparedInput(
            system=self.name,
            fmt=plan.fmt,
            kernel=plan.kernel,
            construction_overhead_s=plan.overhead.total_s,
            config={
                "use_cell": plan.use_cell,
                "num_partitions": plan.num_partitions,
                "max_widths": plan.max_widths,
            },
        )
