"""Baseline registry used by the benchmark harness."""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.baselines.fixed import (
    CuSparseBaseline,
    DgSparseBaseline,
    SputnikBaseline,
    TritonBaseline,
)
from repro.baselines.sparsetir import SparseTIRBaseline
from repro.baselines.stile import STileBaseline
from repro.baselines.taco import TacoBaseline

#: The systems of Figure 6, in the paper's legend order (LiteForm is added
#: by the harness once its models are trained).
FIG6_BASELINES = (
    "cusparse",
    "triton",
    "sputnik",
    "dgsparse",
    "taco",
    "sparsetir",
    "stile",
)

_FACTORIES = {
    "cusparse": CuSparseBaseline,
    "triton": TritonBaseline,
    "sputnik": SputnikBaseline,
    "dgsparse": DgSparseBaseline,
    "taco": TacoBaseline,
    "sparsetir": SparseTIRBaseline,
    "stile": STileBaseline,
}


def make_baseline(name: str, **kwargs) -> BaselineSystem:
    """Instantiate a baseline by figure-legend name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
