"""SparseTIR baseline: composable ``hyb`` format + exhaustive auto-tuning.

SparseTIR's hybrid format is, structurally, CELL with one restriction: the
*same* maximum bucket width applies to every column partition (Section 4
contrasts CELL's per-partition width sets against hyb).  Its published
workflow finds the format composition by exhaustive search: every candidate
``(partitions, max_width)`` pair is compiled by TVM and measured on the
GPU.  That search is what makes its construction overhead orders of
magnitude larger than LiteForm's (Figures 8-9).

``prepare`` reproduces the search on the simulated device and charges

``overhead = sum over candidates of (compile_s + runs * exec_time)``.
"""

from __future__ import annotations

import time

import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.core.partition_model import PARTITION_CANDIDATES
from repro.formats.base import ceil_pow2_exponent
from repro.formats.cell import CELLFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.kernels.cell_spmm import CELLSpMM

import numpy as np


class SparseTIRBaseline(BaselineSystem):
    """Exhaustively tuned hyb (uniform-width CELL)."""

    name = "sparsetir"

    def __init__(
        self,
        partition_candidates: tuple[int, ...] = PARTITION_CANDIDATES,
        compile_s: float = 1.0,
        runs_per_candidate: int = 10,
        max_width_cap: int = 512,
        format_cache: dict | None = None,
    ):
        self.partition_candidates = partition_candidates
        #: Simulated TVM build+load time per candidate schedule.
        self.compile_s = compile_s
        self.runs_per_candidate = runs_per_candidate
        self.max_width_cap = max_width_cap
        #: Optional (id(A), P, W) -> CELLFormat cache; hyb structures do not
        #: depend on J, so sweeps over dense widths can reuse them.
        self.format_cache = format_cache

    def candidate_space(self, A: sp.csr_matrix) -> list[tuple[int, int]]:
        """All (num_partitions, uniform max width) pairs searched."""
        lengths = np.diff(A.indptr)
        max_len = int(lengths.max()) if lengths.size else 1
        max_exp = int(ceil_pow2_exponent(max(max_len, 1)))
        max_exp = min(max_exp, int(np.log2(self.max_width_cap)))
        widths = [1 << e for e in range(max_exp + 1)]
        parts = [p for p in self.partition_candidates if p <= A.shape[1]]
        return [(p, w) for p in parts for w in widths]

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        A = self._canonical(A)
        t0 = time.perf_counter()
        space = self.candidate_space(A)
        # Stock SparseTIR emits one CUDA kernel per bucket; the horizontal
        # fusion pass is LiteForm's addition (Section 6), so hyb pays one
        # launch per bucket here.
        kernel = CELLSpMM(fused=False)
        best_fmt, best_cfg, best_time = None, None, float("inf")
        tuning_s = 0.0
        for p, w in space:
            key = (id(A), p, w)
            if self.format_cache is not None and key in self.format_cache:
                fmt = self.format_cache[key]
            else:
                fmt = CELLFormat.from_csr(A, num_partitions=p, max_widths=w)
                if self.format_cache is not None:
                    self.format_cache[key] = fmt
            try:
                t = kernel.measure(fmt, J, device).time_s
            except SimulatedOOMError:
                tuning_s += self.compile_s
                continue
            tuning_s += self.compile_s + self.runs_per_candidate * t
            if t < best_time:
                best_fmt, best_cfg, best_time = fmt, (p, w), t
        if best_fmt is None:
            raise RuntimeError("SparseTIR search found no feasible candidate")
        wall_s = time.perf_counter() - t0
        return PreparedInput(
            system=self.name,
            fmt=best_fmt,
            kernel=kernel,
            construction_overhead_s=tuning_s + wall_s,
            config={
                "num_partitions": best_cfg[0],
                "max_width": best_cfg[1],
                "candidates": len(space),
            },
        )
