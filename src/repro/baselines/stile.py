"""STile baseline: hybrid per-panel formats with microbenchmark search.

STile [Fang et al., SIGMOD'24] partitions the operator into regions and
chooses, per region, among a small set of formats using a cost model
refined by microbenchmarking (Roofline-style).  This reproduction:

* splits the matrix into fixed-height row panels;
* chooses ELL-bucket vs CSR per panel with a roofline cost model whose
  bandwidth coefficients are calibrated by running microbenchmarks on
  sampled panels (each microbenchmark is charged to construction
  overhead — the source of STile's Fig. 8 cost);
* executes the composite with one fused launch per format kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.core.bucket_search import build_buckets
from repro.core.cost_model import matrix_cost_profiles
from repro.formats.base import SparseFormat, VALUE_DTYPE, ceil_pow2
from repro.formats.cell import CELLFormat
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import KernelStats
from repro.kernels.base import SpMMKernel, check_dense_operand
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM


@dataclass
class _Panel:
    kind: str  # "ell" | "csr"
    row_start: int
    fmt: SparseFormat


class HybridPanelFormat(SparseFormat):
    """A vertical concatenation of per-panel sub-formats."""

    def __init__(self, shape: tuple[int, int], panels: list[_Panel]):
        self.shape = (int(shape[0]), int(shape[1]))
        self.panels = panels
        self.nnz = int(sum(p.fmt.nnz for p in panels))

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, **kwargs) -> "HybridPanelFormat":
        raise NotImplementedError("built by STileBaseline.prepare")

    def to_csr(self) -> sp.csr_matrix:
        parts = []
        for p in self.panels:
            sub = p.fmt.to_csr()
            parts.append(sub)
        out = sp.vstack(parts).tocsr() if parts else sp.csr_matrix(self.shape)
        out = sp.csr_matrix(out, dtype=VALUE_DTYPE)
        out.resize(self.shape)
        return out

    @property
    def footprint_bytes(self) -> int:
        return int(sum(p.fmt.footprint_bytes for p in self.panels))

    @property
    def stored_elements(self) -> int:
        return int(sum(p.fmt.stored_elements for p in self.panels))


class HybridPanelSpMM(SpMMKernel):
    """Executes a :class:`HybridPanelFormat`: panels of the same kind are
    horizontally fused into one launch."""

    name = "stile"

    def __init__(self):
        self._csr = RowSplitCSRSpMM()
        self._cell = CELLSpMM()

    def plan(self, fmt: HybridPanelFormat, J: int) -> KernelStats:
        if not isinstance(fmt, HybridPanelFormat):
            raise TypeError(f"stile kernel requires HybridPanelFormat, got {type(fmt).__name__}")
        stats = []
        kinds = set()
        for p in fmt.panels:
            kinds.add(p.kind)
            kern = self._cell if p.kind == "ell" else self._csr
            s = kern.plan(p.fmt, J)
            s.num_launches = 0
            stats.append(s)
        if not stats:
            return KernelStats(num_launches=1, label=self.name)
        merged = KernelStats.merge(stats)
        # Same-kind panels fuse into one launch; atomic CELL panels still
        # need their zero-initialization launch.
        merged.num_launches = max(1, len(kinds)) + (
            1 if merged.atomic_store_bytes > 0 else 0
        )
        merged.label = self.name
        return merged

    def execute(self, fmt: HybridPanelFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        C = np.zeros((fmt.shape[0], B.shape[1]), dtype=VALUE_DTYPE)
        for p in fmt.panels:
            kern = self._cell if p.kind == "ell" else self._csr
            out = kern.execute(p.fmt, B)
            C[p.row_start : p.row_start + out.shape[0]] = out
        return C


class STileBaseline(BaselineSystem):
    """Hybrid-format search with microbenchmark-calibrated cost model."""

    name = "stile"

    def __init__(
        self,
        panel_rows: int = 4096,
        micro_samples: int = 8,
        micro_setup_s: float = 0.5,
        micro_runs: int = 10,
    ):
        if panel_rows < 1:
            raise ValueError(f"panel_rows must be >= 1, got {panel_rows}")
        self.panel_rows = panel_rows
        self.micro_samples = micro_samples
        #: Simulated compile/setup per microbenchmark (kernel build + load).
        self.micro_setup_s = micro_setup_s
        self.micro_runs = micro_runs

    @staticmethod
    def _panel_cost_ell(lengths: np.ndarray, J: int) -> float:
        """Roofline bytes for the panel stored as padded ELL buckets."""
        nz = lengths[lengths > 0]
        if nz.size == 0:
            return 0.0
        widths = ceil_pow2(np.maximum(nz, 1))
        stored = float(widths.sum())
        return stored * 8 + stored * J * 2 + nz.size * J * 4

    @staticmethod
    def _panel_cost_csr(lengths: np.ndarray, J: int) -> float:
        """Roofline bytes for the panel kept in CSR (plus imbalance proxy)."""
        nnz = float(lengths.sum())
        if nnz == 0:
            return 0.0
        imbalance = float(lengths.max()) / max(float(lengths.mean()), 1e-9)
        return nnz * 8 + nnz * J * 2.5 + lengths.size * J * 4 + imbalance * J * 16

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        A = self._canonical(A)
        t0 = time.perf_counter()
        I, K = A.shape
        lengths_all = np.diff(A.indptr).astype(np.int64)
        panels: list[_Panel] = []
        micro_s = 0.0
        rng = np.random.default_rng(0x5711E)
        starts = list(range(0, I, self.panel_rows))
        sampled = set(
            rng.choice(len(starts), size=min(self.micro_samples, len(starts)), replace=False)
        )
        for idx, start in enumerate(starts):
            stop = min(start + self.panel_rows, I)
            sub = A[start:stop]
            lengths = lengths_all[start:stop]
            use_ell = self._panel_cost_ell(lengths, J) <= self._panel_cost_csr(lengths, J)
            if sub.nnz == 0:
                use_ell = False
            if use_ell:
                # STile picks the tile shape per region with its cost model;
                # reuse the width search on the panel.
                prof = matrix_cost_profiles(sub, 1)[0]
                width = 1 << build_buckets(prof, J).max_exp
                fmt: SparseFormat = CELLFormat.from_csr(
                    sub, num_partitions=1, max_widths=width
                )
            else:
                fmt = CSRFormat.from_csr(sub)
            panels.append(_Panel(kind="ell" if use_ell else "csr", row_start=start, fmt=fmt))
            if idx in sampled and sub.nnz:
                # Microbenchmark both variants of the sampled panel on the
                # device — the calibration loop of STile's cost model.
                for probe_fmt, kern in (
                    (CELLFormat.from_csr(sub, num_partitions=1), CELLSpMM()),
                    (CSRFormat.from_csr(sub), RowSplitCSRSpMM()),
                ):
                    t = kern.measure(probe_fmt, J, device).time_s
                    micro_s += self.micro_setup_s + self.micro_runs * t
        wall_s = time.perf_counter() - t0
        hybrid = HybridPanelFormat((I, K), panels)
        return PreparedInput(
            system=self.name,
            fmt=hybrid,
            kernel=HybridPanelSpMM(),
            construction_overhead_s=micro_s + wall_s,
            config={
                "panels": len(panels),
                "ell_panels": sum(1 for p in panels if p.kind == "ell"),
            },
        )
