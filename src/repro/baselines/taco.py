"""TACO baseline: 36-schedule sweep, best execution time (Section 7.1)."""

from __future__ import annotations

import time

import scipy.sparse as sp

from repro.baselines.base import BaselineSystem, PreparedInput
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.kernels.taco_spmm import TacoSchedule, TacoSpMM


class TacoBaseline(BaselineSystem):
    """The paper runs TACO under all 36 combinations of non-zeros-per-warp
    and warps-per-block and reports the shortest time; ``prepare`` performs
    that sweep on the simulated device and keeps the winning schedule.

    The sweep's cost (compile + run each schedule) is recorded as
    construction overhead, though Fig. 8 only plots the composable systems.
    """

    name = "taco"

    #: Simulated compile time per schedule variant (TACO codegen + nvcc).
    compile_s = 0.8
    #: Timing repetitions per schedule during the sweep.
    runs_per_schedule = 10

    def prepare(self, A: sp.spmatrix, J: int, device: SimulatedDevice) -> PreparedInput:
        t0 = time.perf_counter()
        fmt = CSRFormat.from_csr(self._canonical(A))
        convert_s = time.perf_counter() - t0
        best_sched, best_time = None, float("inf")
        sweep_s = 0.0
        for sched in TacoSchedule.space():
            t = TacoSpMM(schedule=sched).measure(fmt, J, device).time_s
            sweep_s += self.compile_s + self.runs_per_schedule * t
            if t < best_time:
                best_sched, best_time = sched, t
        assert best_sched is not None
        return PreparedInput(
            system=self.name,
            fmt=fmt,
            kernel=TacoSpMM(schedule=best_sched),
            construction_overhead_s=convert_s + sweep_s,
            config={"schedule": best_sched, "schedules_tried": len(TacoSchedule.space())},
        )
