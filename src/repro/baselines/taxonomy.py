"""Table 1: taxonomy of prior work on GPU sparse computation.

The paper classifies systems by three axes: automatic format selection,
sparsity-pattern awareness, and format-construction overhead.  Encoding the
table here keeps the benchmark suite able to regenerate *every* table of
the paper, and gives tests a machine-checkable statement of where each
reimplemented baseline sits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaxonomyRow:
    system: str
    category: str  # "fixed" | "automatic-selection" | "composable"
    automatic_selection: bool
    sparsity_pattern_aware: bool
    construction_overhead: str  # "low" | "high"
    reimplemented: bool  # whether this repo ships an executable model of it


#: The rows of Table 1 (systems the paper's evaluation also runs are marked
#: ``reimplemented=True``).
TABLE1: tuple[TaxonomyRow, ...] = (
    TaxonomyRow("cuSPARSE", "fixed", False, False, "low", True),
    TaxonomyRow("Triton", "fixed", False, False, "low", True),
    TaxonomyRow("TACO", "fixed", False, False, "low", True),
    TaxonomyRow("Sputnik", "fixed", False, False, "low", True),
    TaxonomyRow("dgSPARSE", "fixed", False, False, "low", True),
    TaxonomyRow("Auto-SpMV", "automatic-selection", True, False, "low", False),
    TaxonomyRow("SpTFS", "automatic-selection", True, False, "low", False),
    TaxonomyRow("IA-SpGEMM", "automatic-selection", True, False, "low", False),
    TaxonomyRow("AlphaSparse", "automatic-selection", True, False, "low", False),
    TaxonomyRow("Seer", "automatic-selection", True, False, "low", False),
    TaxonomyRow("SparseTIR", "composable", False, True, "high", True),
    TaxonomyRow("STile", "composable", True, True, "high", True),
    TaxonomyRow("LiteForm", "composable", True, True, "low", True),
)


def liteform_row() -> TaxonomyRow:
    """LiteForm's unique cell: the only automatic + pattern-aware + low-
    overhead system in the table — the paper's positioning claim."""
    return next(r for r in TABLE1 if r.system == "LiteForm")
