"""Benchmark harness utilities shared by the per-figure benchmark files."""

from repro.bench.harness import (
    BENCH_J_VALUES,
    COLLECTION_SIZE,
    TRAIN_SIZE,
    phase,
    scaled_device,
)
from repro.bench.regress import (
    SCHEMA_VERSION,
    ComparisonReport,
    Metric,
    MetricComparison,
    compare_snapshots,
    default_baseline_path,
    load_snapshot,
    run_suite,
    snapshot_filename,
    write_snapshot,
)
from repro.bench.reporting import (
    BenchTable,
    geomean,
    normalized_speedups,
)

__all__ = [
    "BenchTable",
    "geomean",
    "normalized_speedups",
    "BENCH_J_VALUES",
    "COLLECTION_SIZE",
    "TRAIN_SIZE",
    "phase",
    "scaled_device",
    "SCHEMA_VERSION",
    "ComparisonReport",
    "Metric",
    "MetricComparison",
    "compare_snapshots",
    "default_baseline_path",
    "load_snapshot",
    "run_suite",
    "snapshot_filename",
    "write_snapshot",
]
