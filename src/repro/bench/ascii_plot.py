"""Terminal scatter/bar rendering for the figure benchmarks.

The paper's Figures 7 and 9 are log-log scatters; rendering them as ASCII
in the benchmark output makes the *shape* reviewable without a plotting
stack (none is available offline).
"""

from __future__ import annotations

import math

import numpy as np


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo_e = math.floor(math.log10(lo))
    hi_e = math.ceil(math.log10(hi))
    return [10.0**e for e in range(lo_e, hi_e + 1)]


def scatter(
    x,
    y,
    width: int = 64,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
    marker: str = "o",
    hline: float | None = None,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render a scatter plot as text.

    ``hline`` draws a horizontal reference line (e.g. speedup = 1.0).
    """
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"x and y must align, got {x.shape} vs {y.shape}")
    ok = np.isfinite(x) & np.isfinite(y) & (x > 0 if logx else True) & (y > 0 if logy else True)
    x, y = x[ok], y[ok]
    if x.size == 0:
        return f"{title}\n(no finite points)"
    fx = np.log10(x) if logx else x
    fy = np.log10(y) if logy else y
    values_y = [float(fy.min()), float(fy.max())]
    if hline is not None and (not logy or hline > 0):
        values_y.append(math.log10(hline) if logy else hline)
    x0, x1 = float(fx.min()), float(fx.max())
    y0, y1 = min(values_y), max(values_y)
    x1 += (x1 - x0 or 1.0) * 0.02
    y1 += (y1 - y0 or 1.0) * 0.02
    sx = (width - 1) / (x1 - x0 or 1.0)
    sy = (height - 1) / (y1 - y0 or 1.0)

    grid = [[" "] * width for _ in range(height)]
    if hline is not None and (not logy or hline > 0):
        h = math.log10(hline) if logy else hline
        r = height - 1 - int(round((h - y0) * sy))
        if 0 <= r < height:
            grid[r] = ["-"] * width
    for xi, yi in zip(fx, fy):
        c = int(round((xi - x0) * sx))
        r = height - 1 - int(round((yi - y0) * sy))
        if 0 <= r < height and 0 <= c < width:
            grid[r][c] = marker

    top = f"{y.max():.3g}"
    bottom = f"{y.min():.3g}"
    pad = max(len(top), len(bottom))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}s} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{x.min():.3g}"
    right = f"{x.max():.3g}"
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * (pad + 2) + left + " " * gap + right)
    if xlabel or ylabel:
        lines.append(" " * (pad + 2) + f"x: {xlabel}   y: {ylabel}")
    return "\n".join(lines)


def bars(labels, values, width: int = 48, title: str = "") -> str:
    """Horizontal bar chart (linear scale)."""
    labels = [str(l) for l in labels]
    vals = np.asarray(list(values), dtype=np.float64)
    if len(labels) != vals.size:
        raise ValueError("labels and values must align")
    if vals.size == 0:
        return f"{title}\n(no data)"
    vmax = float(np.nanmax(vals))
    lw = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, vals):
        if not np.isfinite(v):
            lines.append(f"{label:>{lw}s} | OOM")
            continue
        n = 0 if vmax <= 0 else int(round(v / vmax * width))
        lines.append(f"{label:>{lw}s} |{'#' * n} {v:.3g}")
    return "\n".join(lines)
