"""Shared configuration for the figure benchmarks."""

from __future__ import annotations

import os

from repro.gpu import SimulatedDevice
from repro.gpu.device import V100
from repro.matrices import GNN_DATASETS
from repro.obs import get_tracer

#: Matrices in the Fig. 7/9 collection sweeps.
COLLECTION_SIZE = int(os.environ.get("REPRO_BENCH_COLLECTION", "48"))
#: Matrices used for model training and Tables 5-6 (paper used 514).
TRAIN_SIZE = int(os.environ.get("REPRO_BENCH_TRAIN", "150"))
#: Dense widths swept in the figures.  The paper sweeps {32,64,128,256,512};
#: three representative points bound the benchmark runtime (EXPERIMENTS.md).
BENCH_J_VALUES = (32, 128, 512)


def phase(name: str, **attributes: object):
    """Span a named benchmark phase on the global tracer.

    Figure benchmarks wrap their stages (training, per-system prepare,
    measurement sweeps) in ``with phase("fig8:prepare", system=name):`` so
    a traced run (``repro.obs.tracing``) attributes where the harness
    spends its wall time.  A no-op when tracing is disabled.
    """
    return get_tracer().span(f"phase:{name}", **attributes)


def scaled_device(dataset: str) -> SimulatedDevice:
    """Device whose DRAM is scaled by the dataset's down-scale factor.

    The proteins/reddit stand-ins shrink nodes by ``scale`` and edges by
    ``scale**2`` (DESIGN.md); scaling capacity by ``scale**2`` keeps the
    footprint-to-capacity ratio — and hence the Fig. 6 OOM behaviour —
    faithful to the V100's 16 GB.
    """
    scale = GNN_DATASETS[dataset].scale
    if scale == 1:
        return SimulatedDevice()
    return SimulatedDevice(
        spec=V100.with_overrides(dram_bytes=V100.dram_bytes // (scale * scale))
    )
