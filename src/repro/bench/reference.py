"""Reference (pre-vectorization) compose and kernel implementations.

These are the scipy-slicing / per-bucket-matmul code paths that
``CELLFormat.from_csr``, ``matrix_cost_profiles``, ``build_buckets`` and
``CELLSpMM.execute`` used before the bulk-NumPy rewrite.  They are kept
verbatim for two consumers:

* the equivalence tests, which assert the vectorized paths produce
  **bit-identical** CELL structures, costs, and SpMM outputs; and
* :mod:`repro.bench.regress`, whose ``compose.speedup_vs_reference``
  metric times the vectorized pipeline against this one — a
  machine-relative ratio that survives CI-runner speed differences.

Do not "optimize" this module; its value is staying byte-for-byte
faithful to the historical behaviour.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.cost_model import DEFAULT_ATOMIC_WEIGHT, bucket_cost
from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, ceil_pow2_exponent
from repro.formats.cell import (
    Bucket,
    CELLFormat,
    Partition,
    _fold_chunks,
    partition_bounds,
)
from repro.formats.ell import PAD
from repro.kernels.base import check_dense_operand


# ----------------------------------------------------------------------
# CELL construction (old per-partition scipy CSC slicing)
# ----------------------------------------------------------------------
def _reference_partition_buckets(
    sub: sp.csr_matrix, col_offset: int, max_width: int | None, block_multiple: int
) -> list[Bucket]:
    lengths = np.diff(sub.indptr).astype(np.int64)
    chunk_row, chunk_off, chunk_len, chunk_exp, chunk_folded = _fold_chunks(
        lengths, max_width
    )
    if chunk_row.size == 0:
        return []
    max_exp = int(chunk_exp.max())
    partition_max_width = 1 << max_exp
    block_nnz = block_multiple * partition_max_width
    order = np.argsort(chunk_exp, kind="stable")
    chunk_row = chunk_row[order]
    chunk_off = chunk_off[order]
    chunk_len = chunk_len[order]
    chunk_exp = chunk_exp[order]
    chunk_folded = chunk_folded[order]
    buckets: list[Bucket] = []
    boundaries = np.searchsorted(chunk_exp, np.arange(max_exp + 2))
    indptr = sub.indptr.astype(np.int64)
    for e in range(max_exp + 1):
        lo, hi = boundaries[e], boundaries[e + 1]
        if lo == hi:
            continue
        width = 1 << e
        rows = chunk_row[lo:hi]
        offs = chunk_off[lo:hi]
        lens = chunk_len[lo:hi]
        R = rows.size
        col = np.full((R, width), PAD, dtype=INDEX_DTYPE)
        val = np.zeros((R, width), dtype=VALUE_DTYPE)
        total = int(lens.sum())
        if total:
            starts = indptr[rows] + offs
            within = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
            src = np.repeat(starts, lens) + within
            dst = np.repeat(np.arange(R, dtype=np.int64), lens) * width + within
            col.ravel()[dst] = sub.indices[src] + col_offset
            val.ravel()[dst] = sub.data[src]
        buckets.append(
            Bucket(
                width=width,
                row_ind=rows.astype(INDEX_DTYPE),
                col=col,
                val=val,
                has_folds=bool(chunk_folded[lo:hi].any()),
                block_rows=max(1, block_nnz // width),
            )
        )
    return buckets


def reference_cell_from_csr(
    A: sp.csr_matrix,
    num_partitions: int = 1,
    max_widths: int | list[int | None] | None = None,
    block_multiple: int = 2,
) -> CELLFormat:
    """The pre-vectorization ``CELLFormat.from_csr``: one scipy
    ``csc[:, c0:c1].tocsr()`` slice per partition."""
    if block_multiple < 1 or (block_multiple & (block_multiple - 1)):
        raise ValueError(f"block_multiple must be a power of two, got {block_multiple}")
    I, K = A.shape
    bounds = partition_bounds(K, num_partitions)
    if max_widths is None or isinstance(max_widths, (int, np.integer)):
        width_caps: list[int | None] = [max_widths] * num_partitions  # type: ignore[list-item]
    else:
        width_caps = list(max_widths)
        if len(width_caps) != num_partitions:
            raise ValueError(
                f"max_widths has {len(width_caps)} entries for {num_partitions} partitions"
            )
    csc = A.tocsc() if num_partitions > 1 else None
    partitions: list[Partition] = []
    for p, (c0, c1) in enumerate(bounds):
        if csc is not None:
            sub = csc[:, c0:c1].tocsr()
        else:
            sub = A
        buckets = _reference_partition_buckets(
            sub, col_offset=c0, max_width=width_caps[p], block_multiple=block_multiple
        )
        partitions.append(Partition(index=p, col_start=c0, col_end=c1, buckets=buckets))
    return CELLFormat((I, K), partitions, int(A.nnz))


# ----------------------------------------------------------------------
# Cost profile (old per-partition np.unique sorts + scalar cost loop)
# ----------------------------------------------------------------------
class ReferencePartitionCostProfile:
    """The pre-vectorization :class:`repro.core.cost_model.PartitionCostProfile`."""

    def __init__(self, lengths: np.ndarray, indptr: np.ndarray, indices: np.ndarray):
        lengths = np.asarray(lengths, dtype=np.int64)
        rows = np.nonzero(lengths > 0)[0]
        self.num_nonempty_rows = int(rows.size)
        if rows.size == 0:
            self.natural_max_exp = 0
            self._naturals: dict[int, tuple[int, int]] = {}
            self._suffix_unique = np.zeros(1, dtype=np.int64)
            self._suffix_rows = np.zeros(1, dtype=np.int64)
            self._lengths_desc = np.zeros(0, dtype=np.int64)
            return
        l = lengths[rows]
        exps = ceil_pow2_exponent(l)
        self.natural_max_exp = int(exps.max())
        E = self.natural_max_exp

        order = np.argsort(exps, kind="stable")
        rows_s, exps_s, l_s = rows[order], exps[order], l[order]
        bounds = np.searchsorted(exps_s, np.arange(E + 2))
        span = np.int64(indices.max()) + 1 if indices.size else np.int64(1)
        starts = indptr[rows_s].astype(np.int64)
        within = np.arange(int(l_s.sum())) - np.repeat(np.cumsum(l_s) - l_s, l_s)
        flat_cols = indices[np.repeat(starts, l_s) + within].astype(np.int64)
        flat_exp = np.repeat(exps_s, l_s)
        uniq_keys = np.unique(flat_exp * span + flat_cols)
        per_exp_unique = np.bincount(
            (uniq_keys // span).astype(np.int64), minlength=E + 1
        )
        self._naturals = {
            e: (int(bounds[e + 1] - bounds[e]), int(per_exp_unique[e]))
            for e in range(E + 1)
            if bounds[e + 1] > bounds[e]
        }

        desc = order[::-1]
        rows_d, l_d = rows[desc], l[desc]
        starts_d = indptr[rows_d].astype(np.int64)
        within_d = np.arange(int(l_d.sum())) - np.repeat(np.cumsum(l_d) - l_d, l_d)
        cols_d = indices[np.repeat(starts_d, l_d) + within_d].astype(np.int64)
        _, first_pos = np.unique(cols_d, return_index=True)
        first_pos = np.sort(first_pos)
        exps_d = exps[desc]
        row_boundary = np.searchsorted(-exps_d, -np.arange(E + 2), side="right")
        elem_boundary = np.concatenate([[0], np.cumsum(l_d)])[row_boundary]
        self._suffix_unique = np.searchsorted(first_pos, elem_boundary)
        self._suffix_rows = row_boundary
        self._lengths_desc = l_d

    def cap_bucket_rows(self, max_exp: int) -> int:
        m = min(max_exp, self.natural_max_exp)
        n_rows = int(self._suffix_rows[m])
        if n_rows == 0:
            return 0
        W = 1 << m
        prefix = self._lengths_desc[:n_rows]
        return int(np.sum(-(-prefix // W)))

    def cap_bucket_unique(self, max_exp: int) -> int:
        return int(self._suffix_unique[min(max_exp, self.natural_max_exp)])

    def cap_bucket_output_rows(self, max_exp: int) -> int:
        return int(self._suffix_rows[min(max_exp, self.natural_max_exp)])

    def cost(
        self,
        max_exp: int,
        J: int,
        num_partitions: int = 1,
        atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
        legacy_eq7: bool = False,
    ) -> float:
        if max_exp < 0:
            raise ValueError(f"max_exp must be >= 0, got {max_exp}")
        if self.num_nonempty_rows == 0:
            return 0.0
        max_exp = min(max_exp, self.natural_max_exp)
        multi = num_partitions > 1 and not legacy_eq7
        total = 0.0
        for e, (num_rows, unique_cols) in self._naturals.items():
            if e >= max_exp:
                continue
            total += bucket_cost(
                num_rows,
                1 << e,
                unique_cols,
                J,
                atomic=multi,
                atomic_weight=atomic_weight,
                zero_rows=num_rows if multi else 0,
            )
        I1 = self.cap_bucket_rows(max_exp)
        if I1:
            folded = max_exp < self.natural_max_exp
            atomic = (folded or multi) and not legacy_eq7
            total += bucket_cost(
                I1,
                1 << min(max_exp, self.natural_max_exp),
                self.cap_bucket_unique(max_exp),
                J,
                atomic=atomic,
                atomic_weight=atomic_weight,
                zero_rows=self.cap_bucket_output_rows(max_exp) if atomic else 0,
            )
        return total


def reference_matrix_cost_profiles(
    A: sp.csr_matrix, num_partitions: int
) -> list[ReferencePartitionCostProfile]:
    """The pre-vectorization ``matrix_cost_profiles``: scipy slicing again."""
    I, K = A.shape
    bounds = partition_bounds(K, num_partitions)
    profiles = []
    csc = A.tocsc() if num_partitions > 1 else None
    for c0, c1 in bounds:
        sub = csc[:, c0:c1].tocsr() if csc is not None else A
        lengths = np.diff(sub.indptr).astype(np.int64)
        profiles.append(
            ReferencePartitionCostProfile(
                lengths, sub.indptr.astype(np.int64), sub.indices
            )
        )
    return profiles


def reference_build_buckets(profile, J: int, num_partitions: int = 1) -> int:
    """Algorithm 3's binary probe over ``profile.cost`` (scalar evaluations).

    Returns the chosen ``max_exp``.  Works with either profile class since
    both expose ``cost``/``natural_max_exp``.
    """
    if J < 1:
        raise ValueError(f"J must be >= 1, got {J}")
    lo, hi = 0, profile.natural_max_exp
    while lo < hi:
        mid = (lo + hi) // 2
        if profile.cost(mid, J, num_partitions=num_partitions) > profile.cost(
            min(mid + 1, hi), J, num_partitions=num_partitions
        ):
            lo = mid + 1
        else:
            hi = mid
    return lo


def reference_compose_cell(
    A: sp.csr_matrix, num_partitions: int, J: int, block_multiple: int = 2
) -> CELLFormat:
    """The full pre-vectorization tune-width + build stage of the pipeline."""
    profiles = reference_matrix_cost_profiles(A, num_partitions)
    widths = [
        1 << reference_build_buckets(p, J, num_partitions=num_partitions)
        if p.num_nonempty_rows
        else 1
        for p in profiles
    ]
    return reference_cell_from_csr(
        A, num_partitions=num_partitions, max_widths=widths, block_multiple=block_multiple
    )


# ----------------------------------------------------------------------
# SpMM execution (old per-bucket COO->CSR slab construction)
# ----------------------------------------------------------------------
def reference_cell_execute(fmt: CELLFormat, B: np.ndarray) -> np.ndarray:
    """The pre-vectorization ``CELLSpMM.execute``."""
    B = check_dense_operand(B, fmt.shape[1])
    I, J = fmt.shape[0], B.shape[1]
    C = np.zeros((I, J), dtype=VALUE_DTYPE)
    for _, bucket in fmt.iter_buckets():
        mask = bucket.col != PAD
        if not mask.any():
            continue
        local_rows = np.nonzero(mask)[0]
        slab = sp.csr_matrix(
            (bucket.val[mask], (local_rows, bucket.col[mask])),
            shape=(bucket.num_rows, fmt.shape[1]),
            dtype=VALUE_DTYPE,
        )
        partial = np.asarray(slab @ B)
        row_ind = bucket.row_ind.astype(np.int64)
        if fmt.needs_atomic(bucket):
            np.add.at(C, row_ind, partial)
        else:
            C[row_ind] += partial
    return C
