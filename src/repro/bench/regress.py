"""Benchmark-regression harness: pinned micro-suite + snapshot comparison.

The suite re-measures the hot paths this repo cares about — CELL
composition (tune + build), the CELL SpMM kernel, the simulator's modeled
kernel time, and a small serving replay — on seeded inputs, and writes a
schema-versioned snapshot (``BENCH_<rev>.json``).  A committed baseline
snapshot lives under ``benchmarks/``; ``cli bench --check`` compares the
fresh run against it with per-metric tolerance bands and fails on
regression, which is what the CI ``bench-gate`` job runs.

Metric kinds and their comparison semantics (see docs/BENCHMARKS.md):

``wall``
    Wall-clock milliseconds, median of ``repeats`` runs.  Lower is
    better; noisy on shared CI runners, so the default band is wide.
``virtual``
    Deterministic modeled quantities (simulator time).  Any drift beyond
    float noise means the cost/timing model changed — tight band, both
    directions.
``ratio``
    Machine-relative speedups (vectorized vs. in-process reference).
    Higher is better; only a drop below the band fails.  Robust to CI
    runner speed because both sides run on the same machine.
``exact``
    Checksums and counters that must not move at all (bit-identity
    guards, deterministic telemetry).  Optional per-metric ``tol``
    relaxes this to a relative band for float checksums.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np
import scipy

from repro.bench.reference import reference_compose_cell
from repro.bench.reporting import geomean
from repro.core.bucket_search import build_buckets
from repro.core.cost_model import matrix_cost_profiles
from repro.core.pipeline import LiteForm
from repro.core.training import generate_training_data
from repro.formats.cell import CELLFormat, split_csr
from repro.gpu.device import SimulatedDevice
from repro.kernels.cell_spmm import CELLSpMM
from repro.matrices.collection import SuiteSparseLikeCollection
from repro.serve import PlanCache, SpMMServer
from repro.serve.workload import WorkloadSpec, generate_workload

SCHEMA_VERSION = 1

#: Default relative tolerance band per metric kind.
DEFAULT_TOLERANCES: dict[str, float] = {
    "wall": 0.60,  # generous: shared CI runners jitter a lot
    "virtual": 1e-6,
    "ratio": 0.35,
    "exact": 0.0,
}

#: Column-partition counts exercised by the compose benchmarks.
COMPOSE_PARTITIONS = (1, 2, 4)

#: Seeded collection the compose/kernel benchmarks run over.
SUITE_SIZE = 10
SUITE_MAX_ROWS = 8000
SUITE_SEED = 7
SUITE_J = 128
KERNEL_J = 32


@dataclass(frozen=True)
class Metric:
    """One benchmarked quantity inside a snapshot."""

    name: str
    value: float
    kind: str  # "wall" | "virtual" | "ratio" | "exact"
    unit: str = ""
    #: Optional per-metric override of the kind's default tolerance.
    tol: float | None = None

    def to_json(self) -> dict:
        out: dict = {"value": self.value, "kind": self.kind, "unit": self.unit}
        if self.tol is not None:
            out["tol"] = self.tol
        return out

    @classmethod
    def from_json(cls, name: str, payload: dict) -> "Metric":
        return cls(
            name=name,
            value=float(payload["value"]),
            kind=str(payload["kind"]),
            unit=str(payload.get("unit", "")),
            tol=payload.get("tol"),
        )


def git_rev() -> str:
    """Short revision of the working tree, or ``local`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def default_baseline_path() -> Path:
    return Path("benchmarks") / "baseline.json"


def snapshot_filename(rev: str) -> str:
    return f"BENCH_{rev}.json"


# ---------------------------------------------------------------------------
# The pinned suite
# ---------------------------------------------------------------------------


def _median_wall_ms(fn: Callable[[], object], repeats: int) -> float:
    times = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def _tuned_compose(A, num_partitions: int, J: int = SUITE_J) -> CELLFormat:
    """Tune the per-partition width caps (Algorithm 3) and build CELL."""
    cells = split_csr(A, num_partitions)
    profiles = matrix_cost_profiles(A, num_partitions, cells=cells)
    widths = [
        1 << build_buckets(p, J, num_partitions=num_partitions).max_exp
        if p.num_nonempty_rows
        else 1
        for p in profiles
    ]
    return CELLFormat.from_csr(
        A, num_partitions=num_partitions, max_widths=widths, cells=cells
    )


def _suite_entries():
    return list(
        SuiteSparseLikeCollection(
            size=SUITE_SIZE, max_rows=SUITE_MAX_ROWS, seed=SUITE_SEED
        )
    )


def _format_checksum(formats: list[CELLFormat]) -> float:
    """Deterministic reduction over composed structures (bit-drift guard)."""
    col_sum = 0
    row_sum = 0
    val_sum = 0.0
    buckets = 0
    for fmt in formats:
        for _, b in fmt.iter_buckets():
            buckets += 1
            col_sum += int(b.col.astype(np.int64).sum())
            row_sum += int(b.row_ind.astype(np.int64).sum()) + b.block_rows
            val_sum += float(b.val.astype(np.float64).sum())
    return float(col_sum % (1 << 31)) + float(row_sum % (1 << 20)) + val_sum + buckets


def _bench_compose(entries, repeats: int) -> Iterator[Metric]:
    speedups = []
    for P in COMPOSE_PARTITIONS:
        wall_vec = _median_wall_ms(
            lambda: [_tuned_compose(e.matrix, P) for e in entries], repeats
        )
        wall_ref = _median_wall_ms(
            lambda: [reference_compose_cell(e.matrix, P, SUITE_J) for e in entries],
            repeats,
        )
        speedup = wall_ref / max(wall_vec, 1e-9)
        speedups.append(speedup)
        yield Metric(f"compose.P{P}.wall_ms", wall_vec, "wall", "ms")
        yield Metric(f"compose.P{P}.speedup_vs_reference", speedup, "ratio", "x")
    yield Metric("compose.speedup_geomean", float(geomean(speedups)), "ratio", "x")

    formats = [
        _tuned_compose(e.matrix, P) for e in entries for P in COMPOSE_PARTITIONS
    ]
    yield Metric(
        "compose.structure_checksum",
        _format_checksum(formats),
        "exact",
        tol=1e-9,
    )


def _bench_parallel(entries, repeats: int) -> Iterator[Metric]:
    """Partition-pool compose fan-out: pooled wall time, LPT-modeled
    speedup at 4 workers, and a bit-identity checksum.

    The speedup gate is *modeled* (serial-measured per-partition task
    times scheduled LPT onto 4 workers), not measured thread speedup —
    wall-clock parallel efficiency on an oversubscribed CI runner is
    noise, while the model is as deterministic as the wall-time band."""
    from repro.core.parallel import PoolSpec, compose_partitions, lpt_makespan

    P = 4
    pool = PoolSpec(workers=4, kind="thread")
    wall_pool = _median_wall_ms(
        lambda: [
            compose_partitions(e.matrix, P, SUITE_J, pool=pool) for e in entries
        ],
        repeats,
    )
    yield Metric("compose.parallel.wall_ms", wall_pool, "wall", "ms")
    # De-jitter the model input: a single descheduled partition task can
    # balloon one wall and drag the modeled speedup toward 1, so take the
    # per-task minimum over a few serial runs before scheduling LPT.
    walls: list[np.ndarray] = []
    for _ in range(max(repeats, 3)):
        fans = [compose_partitions(e.matrix, P, SUITE_J) for e in entries]
        run_walls = [np.asarray(f.task_walls, dtype=np.float64) for f in fans]
        walls = (
            run_walls
            if not walls
            else [np.minimum(a, b) for a, b in zip(walls, run_walls)]
        )
    speedups = [
        float(w.sum()) / max(lpt_makespan(w.tolist(), pool.workers), 1e-12)
        if w.sum() > 0.0
        else 1.0
        for w in walls
    ]
    yield Metric(
        "compose.parallel.speedup_model_w4",
        float(geomean(speedups)),
        "ratio",
        "x",
    )
    formats = [
        compose_partitions(e.matrix, P, SUITE_J, pool=pool).to_format()
        for e in entries
    ]
    yield Metric(
        "compose.parallel.structure_checksum",
        _format_checksum(formats),
        "exact",
        tol=1e-9,
    )


def _bench_incremental(repeats: int) -> Iterator[Metric]:
    """Delta patching vs. full recompose on a seeded row-update stream.

    Banded matrices keep each row inside one or two column partitions,
    so a handful of changed rows touches a strict subset of the
    partitions — the case ``patch_rows`` exists for.  The rebuilt count
    and the final structure checksum are exact (seeded updates); the
    patch/full ratio is machine-relative."""
    from repro.core.pipeline import compose_cell_plan
    from repro.matrices.generators import banded_matrix, random_row_update

    P = 8
    steps = 6
    A0 = banded_matrix(4000, 24, fill=0.6, seed=SUITE_SEED)
    rng = np.random.default_rng(SUITE_SEED)
    stream = []
    A = A0
    for _ in range(steps):
        rows, A = random_row_update(A, rng, num_rows=3, band=24)
        stream.append((rows, A))

    rebuilt = 0
    final_fmt = None

    def run_patch():
        nonlocal rebuilt, final_fmt
        rebuilt = 0
        plan = compose_cell_plan(A0, P, SUITE_J)
        for rows, B in stream:
            plan = plan.patch_rows(B, rows)
            rebuilt += len(plan.incremental.patched)
        final_fmt = plan.fmt
        return plan

    def run_full():
        plan = compose_cell_plan(A0, P, SUITE_J)
        for _, B in stream:
            plan = compose_cell_plan(B, P, SUITE_J)
        return plan

    # Median-of-3 floor: the patch/full ratio gate divides two small
    # walls, so a single-sample measurement is too jitter-prone.
    wall_patch = _median_wall_ms(run_patch, max(repeats, 3))
    wall_full = _median_wall_ms(run_full, max(repeats, 3))
    yield Metric("compose.incremental.patch.wall_ms", wall_patch, "wall", "ms")
    yield Metric("compose.incremental.full.wall_ms", wall_full, "wall", "ms")
    yield Metric(
        "compose.incremental.speedup_vs_full",
        wall_full / max(wall_patch, 1e-9),
        "ratio",
        "x",
    )
    yield Metric(
        "compose.incremental.partitions_rebuilt", float(rebuilt), "exact"
    )
    assert final_fmt is not None
    yield Metric(
        "compose.incremental.structure_checksum",
        _format_checksum([final_fmt]),
        "exact",
        tol=1e-9,
    )


def _bench_tune(entries, repeats: int) -> Iterator[Metric]:
    def tune_all():
        evals = 0
        for e in entries:
            for P in (1, 4):
                for prof in matrix_cost_profiles(e.matrix, P):
                    if prof.num_nonempty_rows:
                        r = build_buckets(prof, SUITE_J, num_partitions=P)
                        evals += r.evaluations
        return evals

    yield Metric("tune.wall_ms", _median_wall_ms(tune_all, repeats), "wall", "ms")
    yield Metric("tune.evaluations", float(tune_all()), "exact")


def _bench_kernel(entries, repeats: int) -> Iterator[Metric]:
    kernel = CELLSpMM()
    rng = np.random.default_rng(3)
    pairs = []
    for e in entries:
        fmt = _tuned_compose(e.matrix, 1)
        B = rng.standard_normal((e.matrix.shape[1], KERNEL_J)).astype(np.float32)
        pairs.append((fmt, B))

    def run_all():
        return [kernel.execute(fmt, B) for fmt, B in pairs]

    run_all()  # warm the cached per-bucket slabs before timing
    yield Metric("kernel.execute.wall_ms", _median_wall_ms(run_all, repeats), "wall", "ms")
    checksum = float(sum(float(C.astype(np.float64).sum()) for C in run_all()))
    yield Metric("kernel.execute.checksum", checksum, "exact", tol=1e-9)

    device = SimulatedDevice()
    virtual_ms = sum(
        device.measure(kernel.plan(fmt, KERNEL_J)).time_ms for fmt, _ in pairs
    )
    yield Metric("plan.virtual_ms", float(virtual_ms), "virtual", "ms")


def _bench_serve(repeats: int) -> Iterator[Metric]:
    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    liteform = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    spec = WorkloadSpec(
        num_requests=40,
        num_matrices=6,
        J_choices=(32,),
        max_rows=2000,
        seed=5,
    )
    requests = generate_workload(spec)

    last_metrics = None

    def replay():
        nonlocal last_metrics
        server = SpMMServer(liteform=liteform, cache=PlanCache())
        server.replay(requests)
        last_metrics = server.metrics
        return server

    yield Metric("serve.replay.wall_ms", _median_wall_ms(replay, repeats), "wall", "ms")
    assert last_metrics is not None
    yield Metric("serve.requests", float(last_metrics.requests), "exact")
    yield Metric("serve.cache_hits", float(last_metrics.cache_hits), "exact")


def _bench_adaptive(repeats: int) -> Iterator[Metric]:
    """Adaptive serving under drift: replay wall time, the bandit's
    deterministic decision counters, and the oracle-recovery ratio on a
    trace whose optimal format flips mid-replay (the live
    ``benchmarks/test_ext_adaptive.py`` claim, shrunk to gate size).

    The counters are exact — the bandit is seeded and the workload and
    drift point are pinned — so any change to the selection policy shows
    up as deterministic drift, not noise."""
    from repro.serve import FormatBandit, FormatDriftDevice
    from repro.serve.adaptive import build_arm_plan
    from repro.serve.fingerprint import fingerprint_csr, plan_key

    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    liteform = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    spec = WorkloadSpec(
        num_requests=120,
        num_matrices=3,
        J_choices=(32,),
        max_rows=2000,
        with_operands=False,
        seed=5,
    )
    requests = generate_workload(spec)
    half = len(requests) // 2

    last = None

    def replay():
        nonlocal last
        device = FormatDriftDevice(slowdown=4.0)
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(),
            devices=[device],
            bandit=FormatBandit(min_obs=3, explore=0.05, seed=7),
        )
        total_ms = 0.0
        for i, request in enumerate(requests):
            if i == half:
                device.drifted = True
            total_ms += server.serve(request).measurement.time_ms
        last = (server, total_ms)
        return server

    yield Metric(
        "adaptive.replay.wall_ms", _median_wall_ms(replay, repeats), "wall", "ms"
    )
    assert last is not None
    server, adaptive_ms = last
    m = server.metrics
    yield Metric("adaptive.observations", float(m.bandit_observations), "exact")
    yield Metric("adaptive.overrides", float(m.bandit_overrides), "exact")
    yield Metric("adaptive.flips", float(m.bandit_flips), "exact")
    yield Metric("adaptive.failed", float(m.failed), "exact")

    # Hindsight oracle: per-request best arm, phase-aware, cached per key.
    best = {}
    oracle_ms = 0.0
    for i, request in enumerate(requests):
        drifted = i >= half
        key = (plan_key(fingerprint_csr(request.matrix), request.J), drifted)
        if key not in best:
            device = FormatDriftDevice(slowdown=4.0, drifted=drifted)
            times = []
            for arm in ("cell", "csr", "bcsr"):
                plan = build_arm_plan(liteform, request.matrix, request.J, arm)
                try:
                    times.append(plan.kernel.measure(plan.fmt, request.J, device).time_ms)
                except Exception:
                    continue
            best[key] = min(times)
        oracle_ms += best[key]
    yield Metric(
        "adaptive.oracle_recovery",
        oracle_ms / max(adaptive_ms, 1e-9),
        "ratio",
        "x",
        tol=0.10,
    )


def _bench_gnn(repeats: int) -> Iterator[Metric]:
    """GNN graph-request replay: wall time, deterministic reuse counters,
    an output checksum (bit-drift guard over the chained stages), and the
    amortization ratio versus per-stage recomposition (the live Fig. 8)."""
    from repro.matrices.gnn import GNNWorkloadSpec, generate_gnn_workload

    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    liteform = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    spec = GNNWorkloadSpec(
        dataset="cora",
        model="gat",
        layers=2,
        epochs=2,
        feature_dim=16,
        hidden_dim=16,
        seed=23,
    )

    last = None

    def replay():
        nonlocal last
        server = SpMMServer(liteform=liteform, cache=PlanCache())
        responses = [server.serve_graph(g) for g in generate_gnn_workload(spec)]
        last = (server, responses)
        return server

    yield Metric("gnn.replay.wall_ms", _median_wall_ms(replay, repeats), "wall", "ms")
    assert last is not None
    server, responses = last
    m = server.metrics
    stages = sum(r.device_stages for r in responses)
    yield Metric("gnn.device_stages", float(stages), "exact")
    yield Metric(
        "gnn.full_composes", float(m.cache_misses - m.plan_reuses), "exact"
    )
    yield Metric("gnn.plan_reuses", float(m.plan_reuses), "exact")
    checksum = float(
        sum(float(np.asarray(r.output, dtype=np.float64).sum()) for r in responses)
    )
    yield Metric("gnn.output_checksum", checksum, "exact", tol=1e-9)
    # Naive baseline: one fresh pipeline compose per device stage.
    naive_s = 0.0
    for graph, resp in zip(generate_gnn_workload(spec), responses):
        for stage in graph.stages:
            r = resp.responses.get(stage.name)
            if r is None or r.plan is None:
                continue
            naive_s += liteform.compose(
                r.plan.fmt.to_csr(), spec.feature_dim
            ).overhead.total_s
    amortized_s = m.compose_spent_s + m.revalue_s
    yield Metric(
        "gnn.amortization_vs_recompose",
        naive_s / max(amortized_s, 1e-9),
        "ratio",
        "x",
    )


def _bench_cluster(repeats: int) -> Iterator[Metric]:
    """Sharded replay + one elastic-membership change, all deterministic:
    the remigration fraction and the fleet's simulated makespan are
    regression-gated alongside the wall time."""
    from repro.serve import ClusterFrontend

    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    liteform = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    spec = WorkloadSpec(
        num_requests=48,
        num_matrices=8,
        J_choices=(32,),
        max_rows=2000,
        with_operands=False,
        seed=5,
    )
    requests = generate_workload(spec)

    last = None

    def replay():
        nonlocal last
        frontend = ClusterFrontend(
            liteform,
            num_shards=4,
            replication=2,
            hot_fraction=0.2,
            seed=9,
        )
        frontend.replay(requests)
        change = frontend.add_shard()
        frontend.replay(requests)
        last = (frontend, change)
        return frontend

    yield Metric(
        "cluster.replay.wall_ms", _median_wall_ms(replay, repeats), "wall", "ms"
    )
    assert last is not None
    frontend, change = last
    yield Metric("cluster.requests", float(frontend.metrics.completed), "exact")
    yield Metric("cluster.failed", float(frontend.metrics.failed), "exact")
    yield Metric("cluster.plans_migrated", float(change.plans_migrated), "exact")
    yield Metric(
        "cluster.remigration_fraction", change.fraction, "exact", tol=1e-9
    )
    yield Metric(
        "cluster.makespan_virtual_ms", frontend.makespan_ms, "virtual", "ms"
    )


def _bench_obs(repeats: int) -> Iterator[Metric]:
    """Observability overhead: the same sharded replay with tracing, SLO
    burn-rate evaluation, and attribution fully on vs. fully off.  The
    ratio gate enforces the "telemetry is nearly free" contract (traced
    throughput within a few percent of untraced); the span count per
    request is deterministic and pins the instrumentation density."""
    from repro.obs import Tracer, set_tracer
    from repro.serve import ClusterFrontend

    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    liteform = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    spec = WorkloadSpec(
        num_requests=48,
        num_matrices=8,
        J_choices=(32,),
        max_rows=2000,
        with_operands=False,
        seed=5,
    )
    requests = generate_workload(spec)

    last_frontend = None

    def replay(observed: bool):
        nonlocal last_frontend
        frontend = ClusterFrontend(
            liteform, num_shards=2, seed=9, slo=observed or None
        )
        if observed:
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                frontend.replay(requests)
            finally:
                set_tracer(previous)
            last_frontend = frontend
        else:
            frontend.replay(requests)
        return frontend

    replay(True)  # warm caches/JIT paths so both timings start equal
    replay(False)
    wall_plain = _median_wall_ms(lambda: replay(False), repeats)
    wall_observed = _median_wall_ms(lambda: replay(True), repeats)
    yield Metric("obs.untraced.wall_ms", wall_plain, "wall", "ms")
    yield Metric("obs.observed.wall_ms", wall_observed, "wall", "ms")
    # Full-telemetry overhead is below the wall-clock noise floor of a
    # shared runner (see benchmarks/test_ext_obs.py for the tight
    # per-span bound), so the gate band matches observed replay jitter.
    yield Metric(
        "obs.throughput_ratio",
        wall_plain / max(wall_observed, 1e-9),
        "ratio",
        "x",
        tol=0.25,
    )
    assert last_frontend is not None
    spans = sum(len(lane.spans) for lane in last_frontend.lanes().values())
    yield Metric(
        "obs.spans_per_request", float(spans) / len(requests), "exact"
    )


def run_suite(repeats: int = 3, include_serve: bool = True) -> dict:
    """Run the pinned benchmark suite and return a snapshot dict."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    entries = _suite_entries()
    metrics: list[Metric] = []
    metrics.extend(_bench_compose(entries, repeats))
    metrics.extend(_bench_parallel(entries, repeats))
    metrics.extend(_bench_incremental(repeats))
    metrics.extend(_bench_tune(entries, repeats))
    metrics.extend(_bench_kernel(entries, repeats))
    if include_serve:
        metrics.extend(_bench_serve(repeats))
        metrics.extend(_bench_adaptive(repeats))
        metrics.extend(_bench_gnn(repeats))
        metrics.extend(_bench_cluster(repeats))
        metrics.extend(_bench_obs(repeats))
    return {
        "schema": SCHEMA_VERSION,
        "rev": git_rev(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeats": repeats,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "metrics": {m.name: m.to_json() for m in metrics},
    }


# ---------------------------------------------------------------------------
# Snapshot I/O and comparison
# ---------------------------------------------------------------------------


def write_snapshot(snapshot: dict, path: Path | str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    path = Path(path)
    snapshot = json.loads(path.read_text())
    if not isinstance(snapshot, dict) or "schema" not in snapshot:
        raise ValueError(f"{path} is not a benchmark snapshot (no 'schema' key)")
    if snapshot["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: snapshot schema {snapshot['schema']} != supported "
            f"{SCHEMA_VERSION}; regenerate with 'cli bench --update-baseline'"
        )
    return snapshot


@dataclass(frozen=True)
class MetricComparison:
    """Verdict for one metric of a baseline/current snapshot pair."""

    name: str
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new"
    detail: str
    baseline: float | None = None
    current: float | None = None

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")


@dataclass
class ComparisonReport:
    rows: list[MetricComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(r.failed for r in self.rows)

    @property
    def failures(self) -> list[MetricComparison]:
        return [r for r in self.rows if r.failed]

    def render(self) -> str:
        lines = []
        width = max((len(r.name) for r in self.rows), default=4)
        for r in self.rows:
            mark = {"ok": " ", "improved": "+", "new": "*"}.get(r.status, "!")
            lines.append(f"{mark} {r.name:<{width}}  {r.status:<9}  {r.detail}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.failures)} regression(s))"
        lines.append(verdict)
        return "\n".join(lines)


def _tolerance(metric: Metric) -> float:
    if metric.tol is not None:
        return float(metric.tol)
    return DEFAULT_TOLERANCES[metric.kind]


def _compare_metric(base: Metric, cur: Metric) -> MetricComparison:
    tol = _tolerance(base)
    b, c = base.value, cur.value
    unit = base.unit or ""
    pair = f"{b:.6g}{unit} -> {c:.6g}{unit}"
    if base.kind == "exact" and tol == 0.0:
        if b == c:
            return MetricComparison(base.name, "ok", pair, b, c)
        return MetricComparison(base.name, "regressed", f"{pair} (must match exactly)", b, c)
    scale = max(abs(b), 1e-12)
    rel = (c - b) / scale
    if base.kind == "ratio":
        # Higher is better; only a drop below the band fails.
        if rel < -tol:
            return MetricComparison(
                base.name, "regressed", f"{pair} ({rel:+.1%} < -{tol:.0%})", b, c
            )
        status = "improved" if rel > tol else "ok"
        return MetricComparison(base.name, status, f"{pair} ({rel:+.1%})", b, c)
    # wall / virtual / exact-with-tol: lower (or equal) is better.
    if rel > tol:
        return MetricComparison(
            base.name, "regressed", f"{pair} ({rel:+.1%} > +{tol:.0%})", b, c
        )
    if base.kind in ("virtual", "exact") and rel < -tol:
        # Deterministic quantities moving in *either* direction means the
        # model changed; force an explicit baseline update.
        return MetricComparison(
            base.name, "regressed", f"{pair} ({rel:+.1%}, deterministic drift)", b, c
        )
    status = "improved" if rel < -tol else "ok"
    return MetricComparison(base.name, status, f"{pair} ({rel:+.1%})", b, c)


def compare_snapshots(baseline: dict, current: dict) -> ComparisonReport:
    """Compare two snapshots; regressions and vanished metrics fail."""
    for snap, label in ((baseline, "baseline"), (current, "current")):
        if snap.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{label} snapshot schema {snap.get('schema')!r} != {SCHEMA_VERSION}"
            )
    base_metrics = {
        name: Metric.from_json(name, payload)
        for name, payload in baseline["metrics"].items()
    }
    cur_metrics = {
        name: Metric.from_json(name, payload)
        for name, payload in current["metrics"].items()
    }
    report = ComparisonReport()
    for name, base in sorted(base_metrics.items()):
        cur = cur_metrics.get(name)
        if cur is None:
            report.rows.append(
                MetricComparison(name, "missing", "metric vanished from suite", base.value)
            )
            continue
        report.rows.append(_compare_metric(base, cur))
    for name, cur in sorted(cur_metrics.items()):
        if name not in base_metrics:
            report.rows.append(
                MetricComparison(
                    name, "new", f"{cur.value:.6g}{cur.unit} (not in baseline)", None, cur.value
                )
            )
    return report
