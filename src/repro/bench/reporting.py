"""Result aggregation and table printing for the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def geomean(values) -> float:
    """Geometric mean, ignoring non-finite entries (OOM cases)."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[np.isfinite(arr) & (arr > 0)]
    if arr.size == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))


def normalized_speedups(times: dict[str, float], reference: str) -> dict[str, float]:
    """time(reference) / time(system) per system; inf times -> 0 speedup."""
    if reference not in times:
        raise KeyError(f"reference {reference!r} missing from results")
    ref = times[reference]
    out = {}
    for name, t in times.items():
        out[name] = 0.0 if not np.isfinite(t) else ref / t
    return out


@dataclass
class BenchTable:
    """Accumulates rows and prints an aligned table in the bench output.

    Benchmarks print the same rows/series the paper's figure or table
    reports, with a ``paper`` column where the publication states a value.
    """

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if cell == float("inf"):
                return "OOM"
            if abs(cell) >= 1000 or (abs(cell) < 0.01 and cell != 0):
                return f"{cell:.3g}"
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"\n=== {self.title} ==="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def emit(self) -> None:
        print(self.render())
