"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``compose``
    Compose a format for a Matrix Market file (or a named synthetic
    workload) and print the plan plus simulated SpMM performance.
    ``--pool thread --workers 4`` fans the per-partition compose out over
    a worker pool (bit-identical to serial; see docs/COMPOSE.md).
``compare``
    Run every baseline system on the input and print a Figure 6-style row.
``train``
    Generate training data on a synthetic collection, fit LiteForm's
    predictors, and save them for later ``--models`` use.
``serve``
    Replay a seeded Zipf workload through :class:`repro.serve.SpMMServer`
    (plan caching, admission control, device pool) and print the metrics
    report.  ``--faults`` / ``--death-rate`` / ``--spike-rate`` inject
    seeded chaos into the device pool; ``--retries`` and ``--no-degrade``
    control the recovery policy.  ``--batch N`` switches to the open-loop
    :class:`repro.serve.Scheduler` — requests sharing a plan key are
    coalesced into fused launches of up to ``N`` — with ``--max-wait-ms``
    (batch timeout), ``--arrival-rate`` (Poisson arrivals, requests per
    simulated second), and ``--max-queue`` (backpressure bound; overflow
    is shed to the degraded path).  ``--speculative`` serves cache
    misses the immediate CSR plan while a background compose builds
    CELL, swapped into the cache when ready (docs/COMPOSE.md).
    ``--adaptive`` enables online adaptive format selection: a
    per-fingerprint Thompson-sampling bandit over the CELL/CSR/BCSR
    families overrides the static selector once a key has
    ``--bandit-min-obs`` observations (``--bandit-explore`` forces early
    random arms, ``--bandit-state`` persists the learned state across
    runs); ``--drift-after N`` injects a mid-trace format shift —
    kernels matching ``--drift-kernel`` run ``--drift-slowdown`` x
    slower after N launches — the scenario the bandit is built to
    recover from (docs/ADAPTIVE.md).
    ``--workload gnn`` replays seeded multi-epoch GNN forward passes as
    graph (DAG) requests instead — each epoch a chain of op-typed stages
    (SDDMM → softmax → SpMM → dense for ``--gnn-model gat``; SpMV degrees
    plus normalized SpMM/dense for ``gcn``) served end to end with one
    composed plan reused across every stage sharing the adjacency's
    sparsity pattern (docs/GNN.md).
``bench``
    Run the pinned micro-benchmark suite (:mod:`repro.bench.regress`) and
    write a schema-versioned ``BENCH_<rev>.json`` snapshot.  ``--check``
    compares against the committed ``benchmarks/baseline.json`` with
    per-metric tolerance bands and exits non-zero on regression (the CI
    ``bench-gate``); ``--update-baseline`` refreshes the baseline.  See
    docs/BENCHMARKS.md.
``info``
    Print format statistics (padding, footprint) for every format on the
    input matrix (``--profile`` adds per-kernel roofline profiles).
``stats``
    Replay a short workload against the process-wide metrics registry and
    dump it (Prometheus text exposition, or JSON with ``--json``);
    ``--attribution`` appends the p50/p95/p99 tail-latency stage
    breakdown with trace exemplars.

``compose``, ``compare``, and ``serve`` accept ``--trace out.json`` to
record nested spans of the run and export them as Chrome trace-event
JSON (open in chrome://tracing or https://ui.perfetto.dev); a flame
summary is printed to stderr.  In cluster mode (``serve --shards``) the
export is the *merged* multi-lane trace — one Perfetto process lane for
the frontend plus one per shard, stitched by trace id — and ``--slo``
adds Google-SRE multi-window burn-rate alerting (``--slo-latency-ms``,
``--slo-window-ms``, JSON artifact via ``--slo-report``).  See
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.baselines import FIG6_BASELINES, LiteFormBaseline, make_baseline
from repro.core import LiteForm, generate_training_data
from repro.core.parallel import POOL_KINDS, PoolSpec
from repro.core.persistence import load_liteform, save_liteform
from repro.formats import (
    BCSRFormat,
    CELLFormat,
    COOFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.gpu import SimulatedDevice
from repro.gpu.device import SimulatedOOMError
from repro.gpu.profiler import profile
from repro.matrices import (
    SuiteSparseLikeCollection,
    make_gnn_standin,
    read_matrix_market,
)
from repro.obs import (
    SLOEngine,
    Tracer,
    default_policies,
    default_slos,
    get_registry,
    get_tracer,
    set_tracer,
)


def _load_matrix(spec: str):
    """``path.mtx`` or a named GNN stand-in like ``gnn:pubmed``."""
    if spec.startswith("gnn:"):
        name = spec.split(":", 1)[1]
        return make_gnn_standin(name, seed=1)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"matrix file not found: {spec} (use gnn:<name> for stand-ins)")
    return read_matrix_market(path)


@contextmanager
def _maybe_trace(args):
    """Install a tracer for the command body when ``--trace`` was given;
    on exit, write the Chrome trace JSON and print a flame summary."""
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        out = tracer.write(path)
        print(
            f"trace: {len(tracer.spans)} spans, {tracer.coverage():.1%} of "
            f"wall time covered, written to {out}",
            file=sys.stderr,
        )
        print(tracer.flame_summary(), file=sys.stderr)


def _get_liteform(args) -> LiteForm:
    if args.models:
        return load_liteform(args.models)
    print(f"training LiteForm on a {args.train_size}-matrix collection ...", file=sys.stderr)
    coll = SuiteSparseLikeCollection(size=args.train_size, max_rows=10_000, seed=1)
    return LiteForm().fit(generate_training_data(coll, J_values=(32, 128)))


def _make_bandit(args):
    """Single-node :class:`~repro.serve.FormatBandit` from the serve
    flags (None when ``--adaptive`` is off).  An existing
    ``--bandit-state`` file warm-starts the bandit, with this run's
    flags overriding the saved hyperparameters."""
    if not getattr(args, "adaptive", False):
        return None
    from repro.serve import FormatBandit

    state_path = getattr(args, "bandit_state", None)
    if state_path and Path(state_path).exists():
        bandit = FormatBandit.load(
            state_path,
            min_obs=args.bandit_min_obs,
            explore=args.bandit_explore,
            seed=args.seed,
        )
        print(
            f"bandit: warm-started from {state_path} "
            f"({bandit.key_observations_total()} observations)",
            file=sys.stderr,
        )
        return bandit
    return FormatBandit(
        min_obs=args.bandit_min_obs,
        explore=args.bandit_explore,
        seed=args.seed,
    )


def _save_bandit(args, bandit) -> None:
    """Persist a single-node bandit's state after the replay."""
    state_path = getattr(args, "bandit_state", None)
    if bandit is None or not state_path:
        return
    bandit.save(state_path)
    print(
        f"bandit: state saved to {state_path} "
        f"({bandit.key_observations_total()} observations)",
        file=sys.stderr,
    )


def cmd_compose(args) -> int:
    A = _load_matrix(args.matrix)
    lf = _get_liteform(args)
    if args.pool != "serial":
        lf.pool = PoolSpec(workers=args.workers, kind=args.pool)
    with _maybe_trace(args):
        tracer = get_tracer()
        with tracer.span("compose", matrix=args.matrix):
            plan = lf.compose(A, args.J)
        with tracer.span("measure"):
            m = lf.measure(plan, args.J)
    out = {
        "matrix": {"rows": A.shape[0], "cols": A.shape[1], "nnz": int(A.nnz)},
        "J": args.J,
        "use_cell": plan.use_cell,
        "num_partitions": plan.num_partitions,
        "max_bucket_widths": plan.max_widths,
        "format": type(plan.fmt).__name__,
        "padding_ratio": plan.fmt.padding_ratio,
        "construction_overhead_ms": plan.overhead.total_s * 1e3,
        "simulated_time_ms": m.time_ms,
        "compute_throughput": m.compute_throughput,
    }
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        for k, v in out.items():
            print(f"{k:26s} {v}")
    return 0


def cmd_compare(args) -> int:
    A = _load_matrix(args.matrix)
    lf = _get_liteform(args)
    device = SimulatedDevice()
    rows = []
    profiles: dict[str, str] = {}
    want_profile = getattr(args, "profile", False)
    with _maybe_trace(args):
        tracer = get_tracer()
        for name in FIG6_BASELINES:
            system = make_baseline(name)
            t0 = time.perf_counter()
            try:
                with tracer.span("baseline", system=name):
                    prep = system.prepare(A, args.J, device)
                    m = system.measure(prep, args.J, device)
                rows.append((name, m.time_s, prep.construction_overhead_s))
                if want_profile:
                    profiles[name] = profile(m, device.spec).render()
            except SimulatedOOMError:
                rows.append((name, float("inf"), float("nan")))
            if time.perf_counter() - t0 > 300:  # pragma: no cover - safety valve
                print(f"warning: {name} took very long", file=sys.stderr)
        with tracer.span("baseline", system="liteform"):
            prep = LiteFormBaseline(lf).prepare(A, args.J, device)
            m = prep.kernel.measure(prep.fmt, args.J, device)
        rows.append(("liteform", m.time_s, prep.construction_overhead_s))
        if want_profile:
            profiles["liteform"] = profile(m, device.spec).render()
    # The reference may itself have OOMed (or be missing entirely); print
    # "-" for the speedup column rather than inf/garbage ratios.
    ref = next((t for n, t, _ in rows if n == "cusparse" and np.isfinite(t)), None)
    print(f"{'system':10s} {'time_ms':>10s} {'vs_cusparse':>12s} {'construct_s':>12s}")
    for name, t, oh in rows:
        tt = f"{t*1e3:10.3f}" if np.isfinite(t) else f"{'OOM':>10s}"
        has_ratio = ref is not None and np.isfinite(t) and t > 0
        sp = f"{ref/t:12.2f}" if has_ratio else f"{'-':>12s}"
        print(f"{name:10s} {tt} {sp} {oh:12.4f}")
    for name, text in profiles.items():
        print(f"\n-- kernel profile: {name} --")
        print(text)
    return 0


def cmd_train(args) -> int:
    coll = SuiteSparseLikeCollection(size=args.train_size, max_rows=args.max_rows, seed=args.seed)
    data = generate_training_data(coll)
    lf = LiteForm().fit(data)
    save_liteform(lf, args.output)
    print(f"trained on {len(data.format_samples)} matrices "
          f"({int(data.format_y.sum())} CELL-favourable); saved to {args.output}")
    return 0


def _serve_gnn(args) -> int:
    """``serve --workload gnn``: replay a seeded multi-epoch GNN forward
    pass as graph (DAG) requests — one GraphRequest per epoch, each a
    chain of SDDMM/normalize/SpMM/dense stages (docs/GNN.md)."""
    from repro.matrices.gnn import GNNWorkloadSpec, generate_gnn_workload
    from repro.serve import PlanCache, RetryPolicy, SpMMServer

    for flag, name in (
        (args.kill_shard is not None, "--kill-shard"),
        (args.slo, "--slo"),
        (args.slo_report, "--slo-report"),
        (args.faults or args.death_rate or args.spike_rate, "fault injection"),
        (args.drift_after is not None, "--drift-after"),
        (args.bandit_state, "--bandit-state"),
    ):
        if flag:
            raise SystemExit(f"{name} is only supported with --workload zipf")
    spec = GNNWorkloadSpec(
        dataset=args.gnn_dataset,
        model=args.gnn_model,
        layers=args.layers,
        epochs=args.epochs,
        feature_dim=args.feature_dim,
        hidden_dim=args.feature_dim,
        seed=args.seed,
        mean_gap_ms=(1e3 / args.arrival_rate) if args.arrival_rate else 0.0,
        deadline_ms=args.deadline_ms if args.deadline_ms else float("inf"),
    )
    lf = _get_liteform(args)
    graphs = generate_gnn_workload(spec)
    stages = sum(len(g.stages) for g in graphs)
    print(
        f"gnn workload: {spec.dataset}/{spec.model}, {spec.layers} layers x "
        f"{spec.epochs} epochs -> {len(graphs)} graph requests "
        f"({stages} stages) ...",
        file=sys.stderr,
    )
    if args.shards:
        from repro.gpu.multi import MultiGPUSpec
        from repro.serve import ClusterFrontend

        frontend = ClusterFrontend(
            lf,
            num_shards=args.shards,
            virtual_nodes=args.virtual_nodes,
            replication=args.replication,
            multi_spec=MultiGPUSpec(num_gpus=args.devices),
            cache_bytes_per_shard=int(args.cache_mb * 2**20),
            retry=RetryPolicy(max_attempts=args.retries),
            degrade_on_oom=not args.no_degrade,
            speculative=args.speculative,
            adaptive=args.adaptive,
            bandit_min_obs=args.bandit_min_obs,
            bandit_explore=args.bandit_explore,
            seed=args.seed,
        )
        trace_path = getattr(args, "trace", None)
        if trace_path:
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                for g in graphs:
                    frontend.serve_graph(g)
            finally:
                set_tracer(previous)
            out_path = frontend.write_trace(trace_path)
            print(f"trace: merged multi-lane trace written to {out_path}",
                  file=sys.stderr)
        else:
            for g in graphs:
                frontend.serve_graph(g)
        if args.json:
            print(json.dumps(frontend.snapshot(), indent=2))
        else:
            print(frontend.report())
        return 0
    server = SpMMServer(
        liteform=lf,
        cache=PlanCache(max_bytes=int(args.cache_mb * 2**20)),
        num_devices=args.devices,
        retry=RetryPolicy(max_attempts=args.retries),
        degrade_on_oom=not args.no_degrade,
        speculative=args.speculative,
        bandit=_make_bandit(args),
    )
    if args.batch:
        from repro.serve import Scheduler

        scheduler = Scheduler(
            server=server,
            max_batch=args.batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
        )
        with _maybe_trace(args):
            scheduler.replay_graphs(graphs)
        if args.json:
            print(json.dumps(scheduler.snapshot(), indent=2))
        else:
            print(scheduler.report())
        return 0
    with _maybe_trace(args):
        server.serve_graphs(sorted(graphs, key=lambda g: g.arrival_ms))
    if args.json:
        print(json.dumps(server.snapshot(), indent=2))
    else:
        print(server.report())
    return 0


def cmd_serve(args) -> int:
    from repro.serve import PlanCache, RetryPolicy, SpMMServer, WorkloadSpec, generate_workload

    if (args.slo or args.slo_report) and not args.shards:
        raise SystemExit("--slo / --slo-report require --shards (cluster mode)")
    if args.workload == "gnn":
        return _serve_gnn(args)
    spec = WorkloadSpec(
        num_requests=args.requests,
        num_matrices=args.matrices,
        zipf_s=args.zipf,
        J_choices=tuple(int(j) for j in args.J_values.split(",")),
        max_rows=args.max_rows,
        deadline_ms=args.deadline_ms,
        deadline_fraction=args.deadline_fraction if args.deadline_ms else 0.0,
        with_operands=not args.measure_only,
        arrival_rate_rps=args.arrival_rate,
        seed=args.seed,
    )
    lf = _get_liteform(args)
    print(
        f"replaying {spec.num_requests} requests over {spec.num_matrices} "
        f"matrices (Zipf {spec.zipf_s}) ...",
        file=sys.stderr,
    )
    devices = None
    if args.faults or args.death_rate or args.spike_rate:
        from repro.gpu.faults import FaultPolicy, FaultyDevice

        devices = [
            FaultyDevice(
                faults=FaultPolicy(
                    transient_oom_rate=args.faults,
                    death_rate=args.death_rate,
                    latency_spike_rate=args.spike_rate,
                    seed=args.seed + 1000 + i,
                )
            )
            for i in range(args.devices)
        ]
        print(
            f"fault injection: transient OOM {args.faults:.1%}, "
            f"death {args.death_rate:.2%}, spikes {args.spike_rate:.1%} "
            f"per launch (retries={args.retries}, "
            f"degrade={'off' if args.no_degrade else 'on'})",
            file=sys.stderr,
        )
    if args.drift_after is not None:
        if devices is not None:
            raise SystemExit("--drift-after cannot combine with fault injection")
        from repro.serve import FormatDriftDevice

        devices = [
            FormatDriftDevice(
                slow_prefixes=(args.drift_kernel,),
                slowdown=args.drift_slowdown,
                shift_after_launches=args.drift_after,
            )
            for _ in range(args.devices)
        ]
        print(
            f"format drift: {args.drift_kernel}* kernels "
            f"{args.drift_slowdown:g}x slower after {args.drift_after} "
            f"launches per device",
            file=sys.stderr,
        )
    requests = generate_workload(spec)
    if args.shards:
        from repro.gpu.multi import MultiGPUSpec
        from repro.serve import ClusterFrontend

        slo = None
        if args.slo:
            slo = SLOEngine(
                specs=default_slos(latency_threshold_ms=args.slo_latency_ms),
                policies=default_policies(args.slo_window_ms),
            )
            print(
                f"SLO engine: latency threshold {args.slo_latency_ms:g} ms, "
                f"burn-rate windows scaled to {args.slo_window_ms:g} ms",
                file=sys.stderr,
            )
        device_factory = None
        if args.faults or args.death_rate or args.spike_rate:
            from repro.gpu.faults import FaultPolicy, FaultyDevice

            def device_factory(shard_index, device_index):
                return FaultyDevice(
                    faults=FaultPolicy(
                        transient_oom_rate=args.faults,
                        death_rate=args.death_rate,
                        latency_spike_rate=args.spike_rate,
                        seed=args.seed + 1000 + shard_index * 100 + device_index,
                    )
                )

        elif args.drift_after is not None:
            from repro.serve import FormatDriftDevice

            def device_factory(shard_index, device_index):
                return FormatDriftDevice(
                    slow_prefixes=(args.drift_kernel,),
                    slowdown=args.drift_slowdown,
                    shift_after_launches=args.drift_after,
                )

        frontend = ClusterFrontend(
            lf,
            num_shards=args.shards,
            virtual_nodes=args.virtual_nodes,
            replication=args.replication,
            multi_spec=MultiGPUSpec(num_gpus=args.devices),
            device_factory=device_factory,
            cache_bytes_per_shard=int(args.cache_mb * 2**20),
            batch=args.batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            retry=RetryPolicy(max_attempts=args.retries),
            degrade_on_oom=not args.no_degrade,
            speculative=args.speculative,
            adaptive=args.adaptive,
            bandit_min_obs=args.bandit_min_obs,
            bandit_explore=args.bandit_explore,
            seed=args.seed,
            slo=slo,
        )
        if args.adaptive:
            print(
                f"adaptive: per-shard bandits (min_obs={args.bandit_min_obs}, "
                f"explore={args.bandit_explore:g})",
                file=sys.stderr,
            )
        chaos = (
            f", killing a shard at {args.kill_shard:g} ms"
            if args.kill_shard is not None
            else ""
        )
        print(
            f"cluster: {args.shards} shards x {args.devices} devices, "
            f"replication {args.replication}{chaos}",
            file=sys.stderr,
        )
        # Cluster tracing bypasses _maybe_trace: the frontend owns the
        # per-shard lanes, so the export must be the *merged* multi-lane
        # trace, not the frontend lane alone.
        trace_path = getattr(args, "trace", None)
        if trace_path:
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                frontend.replay(requests, kill_shard_at_ms=args.kill_shard)
            finally:
                set_tracer(previous)
            out_path = frontend.write_trace(trace_path)
            lanes = frontend.lanes()
            print(
                f"trace: {len(lanes)} lanes "
                f"({', '.join(sorted(lanes))}) merged into {out_path}",
                file=sys.stderr,
            )
        else:
            frontend.replay(requests, kill_shard_at_ms=args.kill_shard)
        if args.slo_report:
            if frontend.slo is None:
                raise SystemExit("--slo-report requires --slo")
            report_path = Path(args.slo_report)
            report_path.write_text(
                json.dumps(frontend.slo.snapshot(), indent=2) + "\n"
            )
            print(f"SLO report written to {report_path}", file=sys.stderr)
        if args.json:
            print(json.dumps(frontend.snapshot(), indent=2))
        else:
            print(frontend.report())
        return 0
    bandit = _make_bandit(args)
    server = SpMMServer(
        liteform=lf,
        cache=PlanCache(max_bytes=int(args.cache_mb * 2**20)),
        num_devices=args.devices,
        devices=devices,
        retry=RetryPolicy(max_attempts=args.retries),
        degrade_on_oom=not args.no_degrade,
        speculative=args.speculative,
        bandit=bandit,
    )
    if args.batch:
        from repro.serve import Scheduler

        scheduler = Scheduler(
            server=server,
            max_batch=args.batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
        )
        with _maybe_trace(args):
            scheduler.replay(requests)
        _save_bandit(args, bandit)
        if args.json:
            print(json.dumps(scheduler.snapshot(), indent=2))
        else:
            print(scheduler.report())
        return 0
    # The trace region covers exactly the replay, so the exported spans
    # account for (nearly) all of the traced wall time.
    with _maybe_trace(args):
        server.replay(requests)
    _save_bandit(args, bandit)
    if args.json:
        print(json.dumps(server.snapshot(), indent=2))
    else:
        print(server.report())
    return 0


def cmd_stats(args) -> int:
    """Replay a short workload and dump the process-wide metrics registry."""
    from repro.serve import PlanCache, SpMMServer, WorkloadSpec, generate_workload
    from repro.serve.metrics import ServerMetrics

    registry = get_registry()
    lf = _get_liteform(args)
    spec = WorkloadSpec(
        num_requests=args.requests,
        num_matrices=args.matrices,
        zipf_s=args.zipf,
        J_choices=(32, 64, 128),
        max_rows=args.max_rows,
        with_operands=False,
        seed=args.seed,
    )
    if args.shards:
        from repro.serve import ClusterFrontend
        from repro.serve.cluster import ClusterMetrics

        frontend = ClusterFrontend(
            lf,
            num_shards=args.shards,
            metrics=ClusterMetrics(registry=registry),
            slo=True,
        )
        print(
            f"replaying {spec.num_requests} measure-only requests over "
            f"{args.shards} shards ...",
            file=sys.stderr,
        )
        frontend.replay(generate_workload(spec))
        if args.json:
            out = registry.snapshot()
            out["cluster"] = frontend.snapshot()
            print(json.dumps(out, indent=2))
        else:
            print(registry.render_prometheus(), end="")
            # frontend.report() already carries the attribution section.
            print(frontend.report())
        return 0
    server = SpMMServer(
        liteform=lf,
        cache=PlanCache(),
        metrics=ServerMetrics(registry=registry),
    )
    print(f"replaying {spec.num_requests} measure-only requests ...", file=sys.stderr)
    server.replay(generate_workload(spec))
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2))
    else:
        print(registry.render_prometheus(), end="")
        if args.attribution:
            print(server.metrics.attribution.report())
    return 0


def cmd_info(args) -> int:
    A = _load_matrix(args.matrix)
    lengths = np.diff(A.indptr)
    print(f"matrix {A.shape[0]}x{A.shape[1]} nnz={A.nnz} "
          f"rows mean={lengths.mean():.2f} max={int(lengths.max())}")
    print(f"{'format':18s} {'stored':>12s} {'padding':>9s} {'MiB':>9s}")
    for name, fmt in [
        ("COO", COOFormat.from_csr(A)),
        ("CSR", CSRFormat.from_csr(A)),
        ("ELL", ELLFormat.from_csr(A)),
        ("Sliced-ELL", SlicedELLFormat.from_csr(A)),
        ("BCSR 8x8", BCSRFormat.from_csr(A, block_shape=(8, 8))),
        ("CELL natural", CELLFormat.from_csr(A)),
        ("CELL 4 parts", CELLFormat.from_csr(A, num_partitions=min(4, A.shape[1]))),
    ]:
        print(f"{name:18s} {fmt.stored_elements:12d} {fmt.padding_ratio:8.1%} "
              f"{fmt.footprint_bytes / 2**20:9.2f}")
    if getattr(args, "profile", False):
        from repro.kernels.registry import OP_REGISTRIES, available_methods, resolve

        device = SimulatedDevice()
        print(f"\nkernel profiles at J={args.J} ({device.spec.name}):")
        for op in OP_REGISTRIES:
            J = 1 if op == "spmv" else args.J
            for name in available_methods(op=op):
                fmt_cls, kernel_cls = resolve(name, op=op)
                fmt, kernel = fmt_cls.from_csr(A), kernel_cls()
                label = name if op == "spmm" else f"{name} [{op}, J={J}]"
                print(f"\n-- {label} --")
                try:
                    m = kernel.measure(fmt, J, device)
                except SimulatedOOMError as e:
                    print(f"OOM: {e}")
                    continue
                print(f"simulated time:       {m.time_ms:.3f} ms")
                print(profile(m, device.spec).render())
    return 0


def cmd_bench(args) -> int:
    from repro.bench.regress import (
        compare_snapshots,
        default_baseline_path,
        git_rev,
        load_snapshot,
        run_suite,
        snapshot_filename,
        write_snapshot,
    )

    snapshot = run_suite(repeats=args.repeats, include_serve=not args.no_serve)
    out_dir = Path(args.out) if args.out else Path(".")
    snap_path = write_snapshot(snapshot, out_dir / snapshot_filename(git_rev()))
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        width = max(len(n) for n in snapshot["metrics"])
        for name, m in sorted(snapshot["metrics"].items()):
            print(f"{name:<{width}}  {m['value']:12.6g} {m['unit']:<3} [{m['kind']}]")
        print(f"snapshot: {snap_path}", file=sys.stderr)

    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    if args.update_baseline:
        write_snapshot(snapshot, baseline_path)
        print(f"baseline updated: {baseline_path}", file=sys.stderr)
        return 0
    if args.check:
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found "
                  f"(run with --update-baseline first)", file=sys.stderr)
            return 2
        try:
            baseline = load_snapshot(baseline_path)
            report = compare_snapshots(baseline, snapshot)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(report.render())
        return 0 if report.ok else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    def add_common(sp):
        sp.add_argument("matrix", help=".mtx path or gnn:<name> stand-in")
        sp.add_argument("-J", type=int, default=128, help="dense columns (default 128)")
        sp.add_argument("--models", help="saved LiteForm models (from `train`)")
        sp.add_argument("--train-size", type=int, default=16,
                        help="collection size when training ad hoc")

    def add_trace(sp):
        sp.add_argument("--trace", metavar="PATH",
                        help="record spans and write Chrome trace-event JSON here")

    sp = sub.add_parser("compose", help="compose a format with LiteForm")
    add_common(sp)
    sp.add_argument("--pool", choices=POOL_KINDS, default="serial",
                    help="fan the per-partition compose out over a worker "
                         "pool (bit-identical to serial)")
    sp.add_argument("--workers", type=int, default=4,
                    help="worker count when --pool is not serial")
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    add_trace(sp)
    sp.set_defaults(func=cmd_compose)

    sp = sub.add_parser("compare", help="run all baselines on the input")
    add_common(sp)
    sp.add_argument("--profile", action="store_true",
                    help="print a roofline kernel profile per system")
    add_trace(sp)
    sp.set_defaults(func=cmd_compare)

    sp = sub.add_parser("serve", help="replay a Zipf workload through SpMMServer")
    sp.add_argument("--workload", choices=("zipf", "gnn"), default="zipf",
                    help="zipf: independent SpMM requests (default); gnn: "
                         "multi-epoch GNN forward passes as graph (DAG) "
                         "requests — see docs/GNN.md")
    sp.add_argument("--gnn-dataset", default="cora", metavar="NAME",
                    help="Table 4 stand-in graph for --workload gnn")
    sp.add_argument("--gnn-model", choices=("gat", "gcn"), default="gat",
                    help="layer chain: gat = SDDMM/softmax/SpMM/dense, "
                         "gcn = SpMV degrees + normalized SpMM/dense")
    sp.add_argument("--layers", type=int, default=3,
                    help="GNN layers per epoch (--workload gnn)")
    sp.add_argument("--epochs", type=int, default=3,
                    help="epochs, i.e. graph requests (--workload gnn)")
    sp.add_argument("--feature-dim", type=int, default=32,
                    help="feature/hidden width of the GNN layers")
    sp.add_argument("--requests", type=int, default=200, help="requests to replay")
    sp.add_argument("--matrices", type=int, default=16, help="distinct matrices in the pool")
    sp.add_argument("--zipf", type=float, default=1.1, help="popularity exponent")
    sp.add_argument("--J-values", default="32,64,128",
                    help="comma-separated J widths mixed into the trace")
    sp.add_argument("--max-rows", type=int, default=3_000,
                    help="row cap of the pool matrices")
    sp.add_argument("--deadline-ms", type=float, default=None,
                    help="composition deadline for the latency-sensitive tier")
    sp.add_argument("--deadline-fraction", type=float, default=0.25,
                    help="fraction of requests carrying the deadline")
    sp.add_argument("--cache-mb", type=float, default=256.0,
                    help="plan-cache byte budget in MiB")
    sp.add_argument("--devices", type=int, default=1, help="simulated device pool size")
    sp.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                    help="inject transient OOMs at this per-launch rate")
    sp.add_argument("--death-rate", type=float, default=0.0, metavar="RATE",
                    help="per-launch probability a device dies permanently")
    sp.add_argument("--spike-rate", type=float, default=0.0, metavar="RATE",
                    help="per-launch probability of an 8x latency spike")
    sp.add_argument("--retries", type=int, default=3,
                    help="max execution attempts per request (1 = no retries)")
    sp.add_argument("--no-degrade", action="store_true",
                    help="disable CSR degradation on structural OOM")
    sp.add_argument("--speculative", action="store_true",
                    help="serve cache misses the immediate CSR plan while a "
                         "background compose builds CELL (swapped in when "
                         "ready)")
    sp.add_argument("--adaptive", action="store_true",
                    help="online adaptive format selection: a per-fingerprint "
                         "Thompson-sampling bandit over CELL/CSR/BCSR "
                         "overrides the static selector once a key has "
                         "enough reward (docs/ADAPTIVE.md)")
    sp.add_argument("--bandit-min-obs", type=int, default=3, metavar="N",
                    help="per-key observations before the bandit overrides "
                         "the static selector (--adaptive)")
    sp.add_argument("--bandit-explore", type=float, default=0.05,
                    metavar="PROB",
                    help="pre-handoff probability of playing a random arm "
                         "(--adaptive)")
    sp.add_argument("--bandit-state", metavar="PATH",
                    help="persist bandit state here after the replay (loaded "
                         "first when the file already exists; --adaptive, "
                         "single-node)")
    sp.add_argument("--drift-after", type=int, default=None, metavar="N",
                    help="chaos: after N kernel launches the device runs "
                         "kernels matching --drift-kernel "
                         "--drift-slowdown x slower (a mid-trace format "
                         "shift; see docs/ADAPTIVE.md)")
    sp.add_argument("--drift-slowdown", type=float, default=4.0, metavar="F",
                    help="latency multiplier of the drifted kernel family")
    sp.add_argument("--drift-kernel", default="cell", metavar="PREFIX",
                    help="kernel-label prefix the drift slows down "
                         "(cell / cusparse / triton)")
    sp.add_argument("--measure-only", action="store_true",
                    help="skip numeric execution, time the kernels only")
    sp.add_argument("--batch", type=int, default=0, metavar="N",
                    help="coalesce up to N same-plan requests per launch "
                         "via the open-loop batched scheduler (0 = off)")
    sp.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="longest simulated wait before a partial batch "
                         "dispatches anyway")
    sp.add_argument("--arrival-rate", type=float, default=None, metavar="RPS",
                    help="Poisson arrival rate in requests per simulated "
                         "second (default: untimed closed-loop trace)")
    sp.add_argument("--shards", type=int, default=0, metavar="N",
                    help="serve through an N-shard ClusterFrontend instead of "
                         "one server (0 = single node)")
    sp.add_argument("--replication", type=int, default=1, metavar="K",
                    help="replicate hot fingerprints to K shards (cluster mode)")
    sp.add_argument("--virtual-nodes", type=int, default=64, metavar="V",
                    help="virtual nodes per shard on the consistent-hash ring")
    sp.add_argument("--kill-shard", type=float, default=None, metavar="AT_MS",
                    help="chaos: kill the busiest shard once the replay "
                         "reaches this virtual timestamp (cluster mode)")
    sp.add_argument("--max-queue", type=int, default=None, metavar="N",
                    help="bounded scheduler queue; overflow arrivals are "
                         "shed to the degraded path (default: unbounded)")
    sp.add_argument("--slo", action="store_true",
                    help="enable the SLO engine with multi-window burn-rate "
                         "alerting (cluster mode)")
    sp.add_argument("--slo-latency-ms", type=float, default=50.0,
                    metavar="MS", help="p99 latency SLO threshold")
    sp.add_argument("--slo-window-ms", type=float, default=1000.0,
                    metavar="MS",
                    help="virtual-time scale of the burn-rate windows (the "
                         "Google-SRE hour-scale policies compressed to "
                         "replay time)")
    sp.add_argument("--slo-report", metavar="PATH",
                    help="write the SLO engine's JSON snapshot (SLIs, budget "
                         "burn, fired alerts) here after the replay")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--models", help="saved LiteForm models (from `train`)")
    sp.add_argument("--train-size", type=int, default=12,
                    help="collection size when training ad hoc")
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    add_trace(sp)
    sp.set_defaults(func=cmd_serve)

    sp = sub.add_parser(
        "stats", help="replay a short workload and dump the metrics registry"
    )
    sp.add_argument("--requests", type=int, default=100, help="requests to replay")
    sp.add_argument("--matrices", type=int, default=12, help="distinct matrices in the pool")
    sp.add_argument("--zipf", type=float, default=1.1, help="popularity exponent")
    sp.add_argument("--max-rows", type=int, default=2_000,
                    help="row cap of the pool matrices")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--models", help="saved LiteForm models (from `train`)")
    sp.add_argument("--train-size", type=int, default=8,
                    help="collection size when training ad hoc")
    sp.add_argument("--shards", type=int, default=0, metavar="N",
                    help="replay through an N-shard cluster and include "
                         "per-shard stats (0 = single server)")
    sp.add_argument("--json", action="store_true",
                    help="JSON snapshot instead of Prometheus text exposition")
    sp.add_argument("--attribution", action="store_true",
                    help="append the tail-latency attribution table "
                         "(p50/p95/p99 stage shares with trace exemplars)")
    sp.set_defaults(func=cmd_stats)

    sp = sub.add_parser("train", help="train and save LiteForm's predictors")
    sp.add_argument("output", help="output path (.pkl)")
    sp.add_argument("--train-size", type=int, default=64)
    sp.add_argument("--max-rows", type=int, default=20_000)
    sp.add_argument("--seed", type=int, default=1)
    sp.set_defaults(func=cmd_train)

    sp = sub.add_parser(
        "bench", help="run the pinned micro-benchmark suite (regression gate)"
    )
    sp.add_argument("--check", action="store_true",
                    help="compare against the committed baseline; exit 1 on "
                         "regression (the CI bench-gate mode)")
    sp.add_argument("--update-baseline", action="store_true",
                    help="overwrite the baseline snapshot with this run")
    sp.add_argument("--baseline", metavar="PATH",
                    help="baseline snapshot path (default benchmarks/baseline.json)")
    sp.add_argument("--out", metavar="DIR",
                    help="directory for the fresh BENCH_<rev>.json (default .)")
    sp.add_argument("--repeats", type=int, default=3,
                    help="wall-time repetitions per benchmark; median wins")
    sp.add_argument("--no-serve", action="store_true",
                    help="skip the serving-replay benchmarks (fastest mode)")
    sp.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    sp.set_defaults(func=cmd_bench)

    sp = sub.add_parser("info", help="format statistics for a matrix")
    sp.add_argument("matrix", help=".mtx path or gnn:<name> stand-in")
    sp.add_argument("-J", type=int, default=128,
                    help="dense columns for --profile (default 128)")
    sp.add_argument("--profile", action="store_true",
                    help="print a roofline kernel profile per format/kernel pair")
    sp.set_defaults(func=cmd_info)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
