"""LiteForm: lightweight automatic CELL-format composition (Sections 3-5).

The pipeline has three stages, mirroring Figure 2:

1. :class:`~repro.core.selector.FormatSelector` — an ML model predicting
   whether CELL will beat the fixed formats (CSR/BCSR) by >= 1.1x.
2. :class:`~repro.core.partition_model.PartitionPredictor` — an ML model
   predicting the optimal number of column partitions.
3. :func:`~repro.core.bucket_search.build_buckets` — Algorithm 3, a
   binary search over the maximum bucket width driven by the analytic
   cost model of :mod:`~repro.core.cost_model` (Eq. 7), run per partition.
"""

from repro.core.bucket_search import (
    BucketSearchResult,
    build_buckets,
    exhaustive_width_search,
    tune_partition,
)
from repro.core.cost_model import (
    PartitionCostProfile,
    bucket_cost,
    matrix_cost_profiles,
    partition_profile,
    total_cost,
)
from repro.core.parallel import (
    FanoutResult,
    PartitionOutcome,
    PoolSpec,
    compose_partitions,
    lpt_makespan,
)
from repro.core.partition_model import PARTITION_CANDIDATES, PartitionPredictor
from repro.core.pipeline import (
    ComposePlan,
    IncrementalState,
    LiteForm,
    compose_cell_plan,
)
from repro.core.selector import FormatSelector
from repro.core.training import (
    FormatSelectionSample,
    PartitionSample,
    TrainingData,
    generate_training_data,
)

__all__ = [
    "bucket_cost",
    "total_cost",
    "PartitionCostProfile",
    "matrix_cost_profiles",
    "partition_profile",
    "build_buckets",
    "exhaustive_width_search",
    "tune_partition",
    "BucketSearchResult",
    "FormatSelector",
    "PartitionPredictor",
    "PARTITION_CANDIDATES",
    "PoolSpec",
    "FanoutResult",
    "PartitionOutcome",
    "compose_partitions",
    "lpt_makespan",
    "LiteForm",
    "ComposePlan",
    "IncrementalState",
    "compose_cell_plan",
    "TrainingData",
    "FormatSelectionSample",
    "PartitionSample",
    "generate_training_data",
]
