"""Algorithm 3: search for the optimal maximum bucket width.

The cost of a partition as a function of its maximum bucket width is
(approximately) unimodal: widening the cap reduces the number of folded
bucket rows ``I1`` (fewer row-index reads and output writes) while
increasing padding (more index/value reads), per the trade-off discussion
of Section 5.3.  Algorithm 3 exploits this with a binary-search-like probe
that compares ``cost(mid)`` against ``cost(2 * mid)`` to decide which half
contains the optimum.

Widths are powers of two, so the search runs over exponents; the paper's
``GetAllCost(buckets)`` corresponds to :meth:`PartitionCostProfile.all_costs`,
which evaluates every candidate cap from one precomputed histogram, and
``TuneWidth(buckets, w)`` to the probes over that array (the scalar
:meth:`PartitionCostProfile.cost` remains as the per-candidate reference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import PartitionCostProfile


@dataclass(frozen=True)
class BucketSearchResult:
    """Chosen cap for one partition plus search telemetry."""

    max_exp: int
    cost: float
    evaluations: int

    @property
    def max_width(self) -> int:
        return 1 << self.max_exp


def build_buckets(
    profile: PartitionCostProfile,
    J: int,
    num_partitions: int = 1,
    legacy_eq7: bool = False,
) -> BucketSearchResult:
    """Algorithm 3 (``BuildBuckets``): binary search over the width cap.

    Maintains ``[lo, hi]`` exponent bounds; at each step compares the cost
    at the midpoint ``m`` with the cost one doubling up (``m + 1``): if the
    midpoint is more expensive the optimum lies to the right, else to the
    left (or at ``m``) — lines 5-14 of the paper's listing.
    """
    if J < 1:
        raise ValueError(f"J must be >= 1, got {J}")
    # GetAllCost: every candidate cost from the profile's precomputed
    # histograms in one vectorized pass; the probes below are O(1) reads.
    costs = profile.all_costs(J, num_partitions=num_partitions, legacy_eq7=legacy_eq7)
    lo, hi = 0, profile.natural_max_exp
    evals = 0
    while lo < hi:
        mid = (lo + hi) // 2
        evals += 2
        if costs[mid] > costs[min(mid + 1, hi)]:
            lo = mid + 1
        else:
            hi = mid
    return BucketSearchResult(max_exp=lo, cost=float(costs[lo]), evaluations=evals + 1)


def tune_partition(
    profile: PartitionCostProfile,
    J: int,
    num_partitions: int = 1,
    legacy_eq7: bool = False,
) -> tuple[BucketSearchResult | None, int]:
    """Tune one partition, handling the empty case uniformly.

    Returns ``(result, width)`` where ``result`` is ``None`` and ``width``
    is 1 for a partition with no stored elements — the exact convention the
    serial pipeline, the partition pool, and ``patch_rows`` all share, so
    every path computes identical widths and identical ``predicted_cost``
    accumulation inputs.
    """
    if not profile.num_nonempty_rows:
        return None, 1
    result = build_buckets(
        profile, J, num_partitions=num_partitions, legacy_eq7=legacy_eq7
    )
    return result, 1 << result.max_exp


def exhaustive_width_search(
    profile: PartitionCostProfile,
    J: int,
    num_partitions: int = 1,
    legacy_eq7: bool = False,
) -> BucketSearchResult:
    """Brute-force sweep of every cap — the ablation reference Algorithm 3
    is compared against (and the oracle it should match on unimodal costs)."""
    if J < 1:
        raise ValueError(f"J must be >= 1, got {J}")
    costs = profile.all_costs(J, num_partitions=num_partitions, legacy_eq7=legacy_eq7)
    best_exp = int(np.argmin(costs))  # first minimum: lowest cap wins ties
    return BucketSearchResult(
        max_exp=best_exp, cost=float(costs[best_exp]), evaluations=int(costs.size)
    )
