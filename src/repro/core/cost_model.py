"""The SpMM cost model of Section 5.3 (Eqs. 5-7).

For a bucket ``x`` with width ``W``, ``I1`` bucket rows (folded rows counted
per chunk), ``U = |set(Ind[i, w])|`` distinct column indices, and dense
width ``J``::

    cost(x) = 2 * I1 * W  +  U * J  +  I1 * J          (Eq. 7)

The three terms charge (1) reading the bucket's column indices and values,
(2) fetching the referenced rows of ``B``, and (3) writing the output with
the atomic weight ``Atomic = I1 / I2`` folded in.

Evaluating the cost of a *candidate maximum bucket width* must be cheap —
Algorithm 3 probes O(log W) candidates — so :class:`PartitionCostProfile`
precomputes, per partition, everything needed to answer ``cost(max_exp)``
in O(#long rows):

* rows below the cap sit in their natural buckets regardless of the cap
  (a consequence of the folding rule, see :mod:`repro.formats.cell`), so
  their per-bucket ``I1``/``U`` are computed once;
* the cap's bucket always holds *all* rows with natural exponent >= cap,
  whose union column count is a suffix statistic, precomputed for every
  possible cap in one O(nnz log nnz) pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.formats.base import ceil_pow2_exponent
from repro.formats.cell import partition_bounds


#: Calibrated atomic weight: the device's read-modify-write amplification
#: (Eq. 6 defines ``Atomic`` as the average memory accesses an atomic
#: update costs relative to a plain store; we take the simulated GPU's
#: measured factor instead of the paper's I1/I2 simplification).
DEFAULT_ATOMIC_WEIGHT = 1.8


def bucket_cost(
    I1: int,
    W: int,
    unique_cols: int,
    J: int,
    atomic: bool = False,
    atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
    zero_rows: int = 0,
) -> float:
    """Eq. 6/7 for one bucket.

    ``atomic`` marks buckets whose output goes through ``atomicAdd``
    (folded rows, or any bucket when the matrix has multiple partitions);
    those pay ``atomic_weight`` per output word plus the zero-initialization
    of their ``zero_rows`` distinct output rows.  With ``atomic=False`` and
    the defaults this reduces exactly to Eq. 7.
    """
    if I1 < 0 or W < 1 or unique_cols < 0 or J < 1:
        raise ValueError(
            f"invalid bucket cost arguments I1={I1}, W={W}, U={unique_cols}, J={J}"
        )
    out_weight = atomic_weight if atomic else 1.0
    zero_cost = float(zero_rows) * J if atomic else 0.0
    return 2.0 * I1 * W + float(unique_cols) * J + out_weight * float(I1) * J + zero_cost


@dataclass(frozen=True)
class _NaturalBucket:
    exponent: int
    num_rows: int
    unique_cols: int


class PartitionCostProfile:
    """Per-partition precomputation for O(1)-ish candidate-cost queries."""

    def __init__(self, lengths: np.ndarray, indptr: np.ndarray, indices: np.ndarray):
        lengths = np.asarray(lengths, dtype=np.int64)
        rows = np.nonzero(lengths > 0)[0]
        self.num_nonempty_rows = int(rows.size)
        if rows.size == 0:
            self.natural_max_exp = 0
            self._naturals: dict[int, _NaturalBucket] = {}
            self._suffix_unique = np.zeros(1, dtype=np.int64)
            self._suffix_rows = np.zeros(1, dtype=np.int64)
            self._lengths_desc = np.zeros(0, dtype=np.int64)
            self._exp_boundaries = np.zeros(2, dtype=np.int64)
            return
        l = lengths[rows]
        exps = ceil_pow2_exponent(l)
        self.natural_max_exp = int(exps.max())
        E = self.natural_max_exp

        # --- natural buckets (exact per-exponent unique column counts) ---
        order = np.argsort(exps, kind="stable")
        rows_s, exps_s, l_s = rows[order], exps[order], l[order]
        bounds = np.searchsorted(exps_s, np.arange(E + 2))
        span = np.int64(indices.max()) + 1 if indices.size else np.int64(1)
        # Gather each row's column indices tagged with its exponent group.
        starts = indptr[rows_s].astype(np.int64)
        within = np.arange(int(l_s.sum())) - np.repeat(np.cumsum(l_s) - l_s, l_s)
        flat_cols = indices[np.repeat(starts, l_s) + within].astype(np.int64)
        flat_exp = np.repeat(exps_s, l_s)
        uniq_keys = np.unique(flat_exp * span + flat_cols)
        per_exp_unique = np.bincount(
            (uniq_keys // span).astype(np.int64), minlength=E + 1
        )
        self._naturals = {
            e: _NaturalBucket(
                exponent=e,
                num_rows=int(bounds[e + 1] - bounds[e]),
                unique_cols=int(per_exp_unique[e]),
            )
            for e in range(E + 1)
            if bounds[e + 1] > bounds[e]
        }

        # --- suffix statistics for the cap bucket -----------------------
        # Order rows by exponent DESC so "rows with exponent >= m" is a prefix.
        desc = order[::-1]
        rows_d, l_d = rows[desc], l[desc]
        starts_d = indptr[rows_d].astype(np.int64)
        within_d = np.arange(int(l_d.sum())) - np.repeat(np.cumsum(l_d) - l_d, l_d)
        cols_d = indices[np.repeat(starts_d, l_d) + within_d].astype(np.int64)
        _, first_pos = np.unique(cols_d, return_index=True)
        first_pos = np.sort(first_pos)
        # element boundary of the prefix "exponent >= m" for m = 0..E+1
        exps_d = exps[desc]
        # rows with exponent >= m form a prefix of the descending order:
        # count = positions where -exp <= -m (side="right" on ascending -exp).
        row_boundary = np.searchsorted(-exps_d, -np.arange(E + 2), side="right")
        elem_boundary = np.concatenate([[0], np.cumsum(l_d)])[row_boundary]
        self._suffix_unique = np.searchsorted(first_pos, elem_boundary)
        self._suffix_rows = row_boundary
        self._lengths_desc = l_d
        self._exp_boundaries = elem_boundary

    def cap_bucket_rows(self, max_exp: int) -> int:
        """I1 of the cap bucket: folded chunks of all rows with exp >= cap."""
        if max_exp < 0:
            raise ValueError(f"max_exp must be >= 0, got {max_exp}")
        m = min(max_exp, self.natural_max_exp)
        n_rows = int(self._suffix_rows[m])
        if n_rows == 0:
            return 0
        W = 1 << m
        prefix = self._lengths_desc[:n_rows]
        return int(np.sum(-(-prefix // W)))

    def cap_bucket_unique(self, max_exp: int) -> int:
        """U of the cap bucket: union of columns of rows with exp >= cap."""
        m = min(max_exp, self.natural_max_exp)
        return int(self._suffix_unique[m])

    def cap_bucket_output_rows(self, max_exp: int) -> int:
        """I2 of the cap bucket: distinct output rows it writes."""
        m = min(max_exp, self.natural_max_exp)
        return int(self._suffix_rows[m])

    def cost(
        self,
        max_exp: int,
        J: int,
        num_partitions: int = 1,
        atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
        legacy_eq7: bool = False,
    ) -> float:
        """Total cost of this partition under the given width cap.

        By default uses the atomic-aware Eq. 6 form (the cap bucket's
        folded rows, and every bucket when ``num_partitions > 1``, pay the
        calibrated atomic weight plus zero-initialization).  Pass
        ``legacy_eq7=True`` for the paper's simplified Eq. 7 — kept for the
        cost-model ablation benchmark.
        """
        if max_exp < 0:
            raise ValueError(f"max_exp must be >= 0, got {max_exp}")
        if self.num_nonempty_rows == 0:
            return 0.0
        max_exp = min(max_exp, self.natural_max_exp)
        multi = num_partitions > 1 and not legacy_eq7
        total = 0.0
        for e, nb in self._naturals.items():
            if e >= max_exp:
                continue  # absorbed by the cap bucket
            total += bucket_cost(
                nb.num_rows,
                1 << e,
                nb.unique_cols,
                J,
                atomic=multi,
                atomic_weight=atomic_weight,
                zero_rows=nb.num_rows if multi else 0,
            )
        I1 = self.cap_bucket_rows(max_exp)
        if I1:
            folded = max_exp < self.natural_max_exp
            atomic = (folded or multi) and not legacy_eq7
            total += bucket_cost(
                I1,
                1 << min(max_exp, self.natural_max_exp),
                self.cap_bucket_unique(max_exp),
                J,
                atomic=atomic,
                atomic_weight=atomic_weight,
                zero_rows=self.cap_bucket_output_rows(max_exp) if atomic else 0,
            )
        return total

    def bucket_summary(self, max_exp: int) -> list[tuple[int, int, int]]:
        """(width, I1, unique) per bucket under the given cap — for tests."""
        if self.num_nonempty_rows == 0:
            return []
        max_exp = min(max_exp, self.natural_max_exp)
        out = []
        for e, nb in sorted(self._naturals.items()):
            if e < max_exp:
                out.append((1 << e, nb.num_rows, nb.unique_cols))
        I1 = self.cap_bucket_rows(max_exp)
        if I1:
            out.append((1 << max_exp, I1, self.cap_bucket_unique(max_exp)))
        return out


def matrix_cost_profiles(
    A: sp.csr_matrix, num_partitions: int
) -> list[PartitionCostProfile]:
    """Build one cost profile per column partition of ``A``."""
    I, K = A.shape
    bounds = partition_bounds(K, num_partitions)
    profiles = []
    csc = A.tocsc() if num_partitions > 1 else None
    for c0, c1 in bounds:
        sub = csc[:, c0:c1].tocsr() if csc is not None else A
        lengths = np.diff(sub.indptr).astype(np.int64)
        profiles.append(
            PartitionCostProfile(lengths, sub.indptr.astype(np.int64), sub.indices)
        )
    return profiles


def total_cost(profiles: list[PartitionCostProfile], max_exps: list[int], J: int) -> float:
    """Eq. 7 summed over all partitions with per-partition caps."""
    if len(profiles) != len(max_exps):
        raise ValueError("profiles and max_exps must align")
    return float(sum(p.cost(m, J) for p, m in zip(profiles, max_exps)))
