"""The SpMM cost model of Section 5.3 (Eqs. 5-7).

For a bucket ``x`` with width ``W``, ``I1`` bucket rows (folded rows counted
per chunk), ``U = |set(Ind[i, w])|`` distinct column indices, and dense
width ``J``::

    cost(x) = 2 * I1 * W  +  U * J  +  I1 * J          (Eq. 7)

The three terms charge (1) reading the bucket's column indices and values,
(2) fetching the referenced rows of ``B``, and (3) writing the output with
the atomic weight ``Atomic = I1 / I2`` folded in.

Evaluating the cost of a *candidate maximum bucket width* must be cheap —
Algorithm 3 probes O(log W) candidates — so :class:`PartitionCostProfile`
precomputes, per partition, everything needed to answer ``cost(max_exp)``
in O(#long rows):

* rows below the cap sit in their natural buckets regardless of the cap
  (a consequence of the folding rule, see :mod:`repro.formats.cell`), so
  their per-bucket ``I1``/``U`` are computed once;
* the cap's bucket always holds *all* rows with natural exponent >= cap,
  whose union column count is a suffix statistic, precomputed for every
  possible cap in one O(nnz log nnz) pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.formats.base import ceil_pow2_exponent
from repro.formats.cell import split_csr


#: Calibrated atomic weight: the device's read-modify-write amplification
#: (Eq. 6 defines ``Atomic`` as the average memory accesses an atomic
#: update costs relative to a plain store; we take the simulated GPU's
#: measured factor instead of the paper's I1/I2 simplification).
DEFAULT_ATOMIC_WEIGHT = 1.8


def bucket_cost(
    I1: int,
    W: int,
    unique_cols: int,
    J: int,
    atomic: bool = False,
    atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
    zero_rows: int = 0,
) -> float:
    """Eq. 6/7 for one bucket.

    ``atomic`` marks buckets whose output goes through ``atomicAdd``
    (folded rows, or any bucket when the matrix has multiple partitions);
    those pay ``atomic_weight`` per output word plus the zero-initialization
    of their ``zero_rows`` distinct output rows.  With ``atomic=False`` and
    the defaults this reduces exactly to Eq. 7.
    """
    if I1 < 0 or W < 1 or unique_cols < 0 or J < 1:
        raise ValueError(
            f"invalid bucket cost arguments I1={I1}, W={W}, U={unique_cols}, J={J}"
        )
    out_weight = atomic_weight if atomic else 1.0
    zero_cost = float(zero_rows) * J if atomic else 0.0
    return 2.0 * I1 * W + float(unique_cols) * J + out_weight * float(I1) * J + zero_cost


@dataclass(frozen=True)
class _NaturalBucket:
    exponent: int
    num_rows: int
    unique_cols: int


class PartitionCostProfile:
    """Per-partition precomputation for O(1)-ish candidate-cost queries.

    The constructor runs in O(nnz + E·K) with **no** nnz-sized sorts: the
    per-exponent and suffix unique-column counts that previously went
    through ``np.unique`` (an O(nnz log nnz) sort each) are now computed
    with stamp arrays — one pass marks each column with the exponent group
    that touched it, a second records each column's maximum exponent, and
    the suffix counts fall out of a reversed cumulative histogram.
    """

    def __init__(self, lengths: np.ndarray, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        self._init_from_cells(lengths, indptr[:-1], indices)

    @classmethod
    def from_cells(
        cls, lengths: np.ndarray, starts: np.ndarray, indices: np.ndarray
    ) -> "PartitionCostProfile":
        """Build from per-row ``(length, start)`` cells into a shared
        ``indices`` array — the zero-copy layout of
        :func:`repro.formats.cell.partition_cells`."""
        self = cls.__new__(cls)
        self._init_from_cells(lengths, np.asarray(starts, dtype=np.int64), indices)
        return self

    def _init_from_cells(
        self, lengths: np.ndarray, starts: np.ndarray, indices: np.ndarray
    ) -> None:
        lengths = np.asarray(lengths, dtype=np.int64)
        rows = np.nonzero(lengths > 0)[0]
        self.num_nonempty_rows = int(rows.size)
        self._all_costs_cache: dict[tuple, np.ndarray] = {}
        if rows.size == 0:
            self.natural_max_exp = 0
            self._naturals: dict[int, _NaturalBucket] = {}
            self._nat_rows = np.zeros(1, dtype=np.int64)
            self._nat_unique = np.zeros(1, dtype=np.int64)
            self._suffix_unique = np.zeros(1, dtype=np.int64)
            self._suffix_rows = np.zeros(1, dtype=np.int64)
            self._lengths_desc = np.zeros(0, dtype=np.int64)
            return
        l = lengths[rows]
        exps = ceil_pow2_exponent(l)
        self.natural_max_exp = int(exps.max())
        E = self.natural_max_exp

        # --- group stored elements by their row's exponent --------------
        order = np.argsort(exps, kind="stable")
        rows_s, l_s = rows[order], l[order]
        bounds = np.searchsorted(exps[order], np.arange(E + 2))
        row_starts = starts[rows_s]
        within = np.arange(int(l_s.sum())) - np.repeat(np.cumsum(l_s) - l_s, l_s)
        flat_cols = indices[np.repeat(row_starts, l_s) + within].astype(np.int64)
        elem_bounds = np.concatenate([[0], np.cumsum(l_s)])[bounds]

        # --- natural buckets + per-column max exponent via stamping -----
        span = int(flat_cols.max()) + 1 if flat_cols.size else 1
        stamp = np.full(span, -1, dtype=np.int64)
        nat_rows = np.zeros(E + 1, dtype=np.int64)
        nat_unique = np.zeros(E + 1, dtype=np.int64)
        for e in range(E + 1):
            lo, hi = elem_bounds[e], elem_bounds[e + 1]
            nat_rows[e] = bounds[e + 1] - bounds[e]
            if lo == hi:
                continue
            # Ascending e: the stamp ends up holding each column's max
            # exponent, and counting fresh stamps gives the group's
            # distinct-column count in O(span) without a sort.
            stamp[flat_cols[lo:hi]] = e
            nat_unique[e] = int(np.count_nonzero(stamp == e))
        self._nat_rows = nat_rows
        self._nat_unique = nat_unique
        self._naturals = {
            e: _NaturalBucket(
                exponent=e, num_rows=int(nat_rows[e]), unique_cols=int(nat_unique[e])
            )
            for e in range(E + 1)
            if nat_rows[e]
        }

        # --- suffix statistics for the cap bucket -----------------------
        # A column is referenced by "rows with exponent >= m" exactly when
        # its max exponent is >= m: a reversed cumulative histogram of the
        # stamp array yields every suffix count at once.
        colmax_hist = np.bincount(stamp[stamp >= 0], minlength=E + 1)
        suffix_unique = np.zeros(E + 2, dtype=np.int64)
        suffix_unique[: E + 1] = np.cumsum(colmax_hist[::-1])[::-1]
        self._suffix_unique = suffix_unique
        row_hist = np.bincount(exps, minlength=E + 1)
        suffix_rows = np.zeros(E + 2, dtype=np.int64)
        suffix_rows[: E + 1] = np.cumsum(row_hist[::-1])[::-1]
        self._suffix_rows = suffix_rows
        self._lengths_desc = l[order[::-1]]

    def cap_bucket_rows(self, max_exp: int) -> int:
        """I1 of the cap bucket: folded chunks of all rows with exp >= cap."""
        if max_exp < 0:
            raise ValueError(f"max_exp must be >= 0, got {max_exp}")
        m = min(max_exp, self.natural_max_exp)
        n_rows = int(self._suffix_rows[m])
        if n_rows == 0:
            return 0
        W = 1 << m
        prefix = self._lengths_desc[:n_rows]
        return int(np.sum(-(-prefix // W)))

    def cap_bucket_unique(self, max_exp: int) -> int:
        """U of the cap bucket: union of columns of rows with exp >= cap."""
        m = min(max_exp, self.natural_max_exp)
        return int(self._suffix_unique[m])

    def cap_bucket_output_rows(self, max_exp: int) -> int:
        """I2 of the cap bucket: distinct output rows it writes."""
        m = min(max_exp, self.natural_max_exp)
        return int(self._suffix_rows[m])

    def cost(
        self,
        max_exp: int,
        J: int,
        num_partitions: int = 1,
        atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
        legacy_eq7: bool = False,
    ) -> float:
        """Total cost of this partition under the given width cap.

        By default uses the atomic-aware Eq. 6 form (the cap bucket's
        folded rows, and every bucket when ``num_partitions > 1``, pay the
        calibrated atomic weight plus zero-initialization).  Pass
        ``legacy_eq7=True`` for the paper's simplified Eq. 7 — kept for the
        cost-model ablation benchmark.
        """
        if max_exp < 0:
            raise ValueError(f"max_exp must be >= 0, got {max_exp}")
        if self.num_nonempty_rows == 0:
            return 0.0
        max_exp = min(max_exp, self.natural_max_exp)
        multi = num_partitions > 1 and not legacy_eq7
        total = 0.0
        for e, nb in self._naturals.items():
            if e >= max_exp:
                continue  # absorbed by the cap bucket
            total += bucket_cost(
                nb.num_rows,
                1 << e,
                nb.unique_cols,
                J,
                atomic=multi,
                atomic_weight=atomic_weight,
                zero_rows=nb.num_rows if multi else 0,
            )
        I1 = self.cap_bucket_rows(max_exp)
        if I1:
            folded = max_exp < self.natural_max_exp
            atomic = (folded or multi) and not legacy_eq7
            total += bucket_cost(
                I1,
                1 << min(max_exp, self.natural_max_exp),
                self.cap_bucket_unique(max_exp),
                J,
                atomic=atomic,
                atomic_weight=atomic_weight,
                zero_rows=self.cap_bucket_output_rows(max_exp) if atomic else 0,
            )
        return total

    def all_costs(
        self,
        J: int,
        num_partitions: int = 1,
        atomic_weight: float = DEFAULT_ATOMIC_WEIGHT,
        legacy_eq7: bool = False,
    ) -> np.ndarray:
        """``GetAllCost``: the cost of **every** candidate cap at once.

        Returns an array ``c`` with ``c[m] == self.cost(m, J, ...)``
        bit-for-bit, for ``m = 0..natural_max_exp``, computed from the
        precomputed histograms in one vectorized pass (a prefix cumsum over
        the natural buckets plus a 2-D ceil-division for the cap bucket's
        folded row counts).  ``TuneWidth``/the exhaustive sweep read from
        this instead of probing the scalar ``cost`` per candidate.  Results
        are cached per ``(J, num_partitions, atomic_weight, legacy_eq7)``.
        """
        if J < 1:
            raise ValueError(f"J must be >= 1, got {J}")
        key = (J, num_partitions, atomic_weight, legacy_eq7)
        cached = self._all_costs_cache.get(key)
        if cached is not None:
            return cached
        E = self.natural_max_exp
        if self.num_nonempty_rows == 0:
            out = np.zeros(E + 1)
            self._all_costs_cache[key] = out
            return out
        multi = num_partitions > 1 and not legacy_eq7
        e = np.arange(E + 1)
        W = (1 << e).astype(np.float64)
        I1 = self._nat_rows.astype(np.float64)
        U = self._nat_unique.astype(np.float64)
        out_weight = atomic_weight if multi else 1.0
        zero_cost = I1 * float(J) if multi else np.zeros(E + 1)
        # Same operation order as bucket_cost so the sums stay bit-identical.
        nat = 2.0 * I1 * W + U * float(J) + out_weight * I1 * float(J) + zero_cost
        nat[self._nat_rows == 0] = 0.0
        # cost(m) sums natural buckets below the cap in ascending-e order;
        # cumsum reproduces that exact float accumulation sequence.
        prefix = np.concatenate([[0.0], np.cumsum(nat)])
        # Cap bucket at each m: rows with exponent >= m fold at width 2^m.
        n_rows = self._suffix_rows[: E + 1]
        widths = (1 << e).astype(np.int64)
        ceil_div = -(-self._lengths_desc[None, :] // widths[:, None])
        csum = np.concatenate(
            [np.zeros((E + 1, 1), dtype=np.int64), np.cumsum(ceil_div, axis=1)],
            axis=1,
        )
        cap_I1 = csum[e, n_rows].astype(np.float64)
        cap_U = self._suffix_unique[: E + 1].astype(np.float64)
        atomic = ((e < E) | multi) & (not legacy_eq7)
        cap_weight = np.where(atomic, atomic_weight, 1.0)
        cap_zero = np.where(atomic, n_rows.astype(np.float64) * float(J), 0.0)
        cap = 2.0 * cap_I1 * W + cap_U * float(J) + cap_weight * cap_I1 * float(J) + cap_zero
        cap[cap_I1 == 0] = 0.0
        out = prefix[: E + 1] + cap
        self._all_costs_cache[key] = out
        return out

    def bucket_summary(self, max_exp: int) -> list[tuple[int, int, int]]:
        """(width, I1, unique) per bucket under the given cap — for tests."""
        if self.num_nonempty_rows == 0:
            return []
        max_exp = min(max_exp, self.natural_max_exp)
        out = []
        for e, nb in sorted(self._naturals.items()):
            if e < max_exp:
                out.append((1 << e, nb.num_rows, nb.unique_cols))
        I1 = self.cap_bucket_rows(max_exp)
        if I1:
            out.append((1 << max_exp, I1, self.cap_bucket_unique(max_exp)))
        return out


def matrix_cost_profiles(
    A: sp.csr_matrix,
    num_partitions: int,
    cells: tuple[sp.csr_matrix, list[tuple[int, int]], np.ndarray, np.ndarray]
    | None = None,
) -> list[PartitionCostProfile]:
    """Build one cost profile per column partition of ``A``.

    All partitions are carved out of the parent CSR arrays in one
    :func:`repro.formats.cell.split_csr` pass — the profiles gather
    straight from ``A.indices`` instead of materializing
    ``csc[:, c0:c1].tocsr()`` slices per partition.  Pass a precomputed
    ``cells`` split to share it with :meth:`CELLFormat.from_csr`.
    """
    if cells is None:
        cells = split_csr(A, num_partitions)
    bounds = cells[1]
    if len(bounds) != num_partitions:
        raise ValueError(
            f"cells was split into {len(bounds)} partitions, "
            f"expected {num_partitions}"
        )
    return [partition_profile(cells, p) for p in range(len(bounds))]


def partition_profile(
    cells: tuple[sp.csr_matrix, list[tuple[int, int]], np.ndarray, np.ndarray],
    p: int,
) -> PartitionCostProfile:
    """Cost profile of one partition of a :func:`split_csr` result.

    The unit the partition pool and ``patch_rows`` rebuild independently —
    partition ``p``'s profile reads only column ``p`` of the cells arrays
    plus the shared parent ``indices``, never its siblings.
    """
    A, bounds, counts, starts = cells
    if not 0 <= p < len(bounds):
        raise ValueError(f"partition index {p} out of range [0, {len(bounds)})")
    return PartitionCostProfile.from_cells(counts[:, p], starts[:, p], A.indices)


def total_cost(profiles: list[PartitionCostProfile], max_exps: list[int], J: int) -> float:
    """Eq. 7 summed over all partitions with per-partition caps."""
    if len(profiles) != len(max_exps):
        raise ValueError("profiles and max_exps must align")
    return float(sum(p.cost(m, J) for p, m in zip(profiles, max_exps)))
