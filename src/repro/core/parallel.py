"""Partition-pool parallel compose (ROADMAP: "Parallel and incremental
compose").

:func:`repro.formats.cell.split_csr` carves a CSR matrix into column
partitions that never share state afterwards: each partition's cost
profile, width search, and bucket build read only that partition's
``(counts, starts)`` cells plus the (immutable) parent ``indices``/``data``
arrays.  That makes the per-partition stages of
:meth:`repro.core.pipeline.LiteForm.compose_csr` embarrassingly parallel —
the same shape of parallelism SparseTIR's composable kernels exploit on
the device side, applied here to *construction*.

This module fans those stages out over a configurable pool:

* :class:`PoolSpec` — ``kind`` in ``{"serial", "thread", "process"}`` plus
  a worker count.  ``serial`` runs the identical task function inline and
  is the reference the pooled paths are bit-compared against.
* :func:`compose_partitions` — one task per partition (profile -> width
  search -> bucket build), results re-assembled in partition order so the
  float accumulation of ``predicted_cost`` is *bit-identical* to the
  serial pipeline, returned as a :class:`FanoutResult`.
* :func:`lpt_makespan` / :meth:`FanoutResult.modeled_speedup` — a
  deterministic longest-processing-time schedule model over the measured
  per-partition task times, used by the ``compose.parallel.*`` bench gate
  (wall-clock thread speedups are hostage to the GIL and CI noise; the
  critical-path model is reproducible and is what the regression baseline
  pins).

The task function is module-level and its process-pool payload is
compacted (per-partition gathers of ``indices``/``data``) so it pickles
without shipping the whole parent matrix to every worker.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.bucket_search import BucketSearchResult, tune_partition
from repro.core.cost_model import PartitionCostProfile
from repro.formats.cell import CELLFormat, Partition, split_csr

POOL_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class PoolSpec:
    """How to fan compose work out over partitions.

    ``workers`` is the pool size; ``kind`` selects inline execution
    (``"serial"``), a :class:`~concurrent.futures.ThreadPoolExecutor`
    (``"thread"`` — the default; the hot loops release the GIL inside
    NumPy), or a :class:`~concurrent.futures.ProcessPoolExecutor`
    (``"process"`` — pays a per-partition pickling cost, worthwhile only
    for very large matrices).
    """

    workers: int = 4
    kind: str = "thread"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.kind not in POOL_KINDS:
            raise ValueError(
                f"kind must be one of {POOL_KINDS}, got {self.kind!r}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this spec actually fans out (vs the inline reference)."""
        return self.kind != "serial" and self.workers > 1


@dataclass
class PartitionOutcome:
    """One partition's compose task result plus its measured stage times."""

    index: int
    partition: Partition
    result: BucketSearchResult | None
    width: int
    tune_s: float
    build_s: float

    @property
    def wall_s(self) -> float:
        return self.tune_s + self.build_s


def _compose_partition(
    index: int,
    col_start: int,
    col_end: int,
    lengths: np.ndarray,
    starts: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    J: int,
    num_partitions: int,
    block_multiple: int,
) -> PartitionOutcome:
    """The per-partition unit of work: profile -> tune -> build.

    Calls exactly the functions the serial pipeline calls, on exactly the
    arrays it would read, so the produced :class:`Partition` and search
    result are bit-identical regardless of which pool ran the task.
    """
    t0 = time.perf_counter()
    profile = PartitionCostProfile.from_cells(lengths, starts, indices)
    result, width = tune_partition(profile, J, num_partitions)
    t1 = time.perf_counter()
    buckets = CELLFormat._build_partition_buckets(
        lengths, starts, indices, data,
        max_width=width, block_multiple=block_multiple,
    )
    t2 = time.perf_counter()
    return PartitionOutcome(
        index=index,
        partition=Partition(
            index=index, col_start=col_start, col_end=col_end, buckets=buckets
        ),
        result=result,
        width=width,
        tune_s=t1 - t0,
        build_s=t2 - t1,
    )


def _compose_partition_star(task: tuple) -> PartitionOutcome:
    """Picklable adapter for executor ``map`` over argument tuples."""
    return _compose_partition(*task)


def _compact_cells(
    lengths: np.ndarray,
    starts: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather one partition's elements into dense arrays for pickling.

    Returns ``(indices_p, data_p, starts_p)`` where row ``r``'s run lives
    at ``starts_p[r] : starts_p[r] + lengths[r]`` — the same cell contract
    as the zero-copy layout, so the task function is oblivious to which
    representation it received.  The gather preserves within-row element
    order, keeping the built buckets bit-identical.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    new_starts = np.concatenate([[0], np.cumsum(lengths)])[:-1]
    if total == 0:
        return indices[:0].copy(), data[:0].copy(), new_starts
    within = np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
    src = np.repeat(np.asarray(starts, dtype=np.int64), lengths) + within
    return indices[src], data[src], new_starts


@dataclass
class FanoutResult:
    """Everything a caller needs to assemble a plan from pooled partitions.

    ``outcomes`` is ordered by partition index; derived quantities
    (``predicted_cost``, ``widths``) therefore reproduce the serial
    pipeline's accumulation order exactly.
    """

    A: sp.csr_matrix
    bounds: list[tuple[int, int]]
    counts: np.ndarray
    outcomes: list[PartitionOutcome] = field(default_factory=list)

    @property
    def partitions(self) -> list[Partition]:
        return [o.partition for o in self.outcomes]

    @property
    def results(self) -> list[BucketSearchResult | None]:
        return [o.result for o in self.outcomes]

    @property
    def widths(self) -> list[int]:
        return [o.width for o in self.outcomes]

    @property
    def costs(self) -> list[float | None]:
        return [o.result.cost if o.result else None for o in self.outcomes]

    @property
    def predicted_cost(self) -> float:
        # Same left-to-right accumulation as the serial pipeline's
        # ``sum(r.cost for r in results if r)`` — bit-identical.
        return sum(o.result.cost for o in self.outcomes if o.result)

    @property
    def task_walls(self) -> list[float]:
        return [o.wall_s for o in self.outcomes]

    @property
    def tune_fraction(self) -> float:
        """Share of task time spent tuning (vs building) — used to
        apportion the measured fan-out wall into the overhead breakdown."""
        tune = sum(o.tune_s for o in self.outcomes)
        build = sum(o.build_s for o in self.outcomes)
        if tune + build <= 0.0:
            return 0.5
        return tune / (tune + build)

    def to_format(self) -> CELLFormat:
        return CELLFormat(self.A.shape, self.partitions, int(self.A.nnz))

    def modeled_speedup(self, workers: int) -> float:
        """Deterministic critical-path speedup of the fan-out at ``workers``.

        ``serial = sum(task walls)`` vs ``parallel = LPT makespan`` over
        the same measured task times — the quantity the
        ``compose.parallel.speedup_model_w4`` bench metric gates.  >= 1.0
        by construction; approaches ``min(workers, P)`` when partitions
        are balanced.
        """
        walls = self.task_walls
        serial = sum(walls)
        if serial <= 0.0:
            return 1.0
        return serial / lpt_makespan(walls, workers)


def lpt_makespan(times: list[float], workers: int) -> float:
    """Makespan of a longest-processing-time-first schedule.

    Greedy LPT: sort tasks by descending duration, assign each to the
    least-loaded worker.  A standard 4/3-approximation of the optimal
    makespan — good enough to model what the pool can achieve, and fully
    deterministic given the task times.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for t in sorted(times, reverse=True):
        i = loads.index(min(loads))
        loads[i] += t
    return max(loads) if loads else 0.0


def compose_partitions(
    A: sp.csr_matrix,
    num_partitions: int,
    J: int,
    *,
    block_multiple: int = 2,
    pool: PoolSpec | None = None,
    cells: tuple[sp.csr_matrix, list[tuple[int, int]], np.ndarray, np.ndarray]
    | None = None,
    only: list[int] | None = None,
) -> FanoutResult:
    """Tune + build every partition (or the subset ``only``) via ``pool``.

    Pass a precomputed ``cells`` split to share it with the caller.  With
    ``only``, outcomes are returned for just those partition indices (used
    by :meth:`repro.core.pipeline.ComposePlan.patch_rows` to rebuild only
    the partitions a row update touched); otherwise all partitions run.
    """
    pool = pool or PoolSpec(workers=1, kind="serial")
    if cells is None:
        cells = split_csr(A, num_partitions)
    A, bounds, counts, starts = cells
    if len(bounds) != num_partitions:
        raise ValueError(
            f"cells was split into {len(bounds)} partitions, "
            f"expected {num_partitions}"
        )
    targets = sorted(only) if only is not None else list(range(num_partitions))
    for p in targets:
        if not 0 <= p < num_partitions:
            raise ValueError(f"partition index {p} out of range [0, {num_partitions})")

    tasks = []
    for p in targets:
        c0, c1 = bounds[p]
        lengths_p, starts_p = counts[:, p], starts[:, p]
        indices_p, data_p = A.indices, A.data
        if pool.parallel and pool.kind == "process":
            indices_p, data_p, starts_p = _compact_cells(
                lengths_p, starts_p, indices_p, data_p
            )
        tasks.append(
            (p, c0, c1, lengths_p, starts_p, indices_p, data_p,
             J, num_partitions, block_multiple)
        )

    if pool.parallel and len(tasks) > 1:
        n = min(pool.workers, len(tasks))
        executor_cls = (
            ProcessPoolExecutor if pool.kind == "process" else ThreadPoolExecutor
        )
        with executor_cls(max_workers=n) as ex:
            outcomes = list(ex.map(_compose_partition_star, tasks))
    else:
        outcomes = [_compose_partition_star(t) for t in tasks]
    # Executor.map preserves submission order, which is partition order.
    return FanoutResult(A=A, bounds=bounds, counts=counts, outcomes=outcomes)
