"""Stage 2: predict the optimal number of column partitions (Section 5.2)."""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.matrices.features import partition_features
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier

#: Candidate partition counts LiteForm considers (powers of two; the
#: classification targets of Table 6).
PARTITION_CANDIDATES = (1, 2, 4, 8, 16, 32)


class PartitionPredictor:
    """Multi-class classifier over the eight Table 3 density features.

    Predicts one of :data:`PARTITION_CANDIDATES`; evaluated with accuracy
    *and* the similarity measures of Eqs. 1-2 because neighbouring counts
    yield similar performance.
    """

    def __init__(self, model: BaseClassifier | None = None):
        self.model = model if model is not None else RandomForestClassifier(n_estimators=50)
        self.last_inference_s: float = 0.0

    def fit(self, features: np.ndarray, partition_counts: np.ndarray) -> "PartitionPredictor":
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(partition_counts, dtype=np.int64)
        invalid = set(np.unique(y)) - set(PARTITION_CANDIDATES)
        if invalid:
            raise ValueError(
                f"partition counts {sorted(invalid)} not in {PARTITION_CANDIDATES}"
            )
        if np.unique(y).size < 2:
            self._constant = int(y[0])
            return self
        self._constant = None
        self.model.fit(features, y)
        return self

    def predict(self, A: sp.csr_matrix, J: int) -> int:
        """Predicted partition count for matrix ``A`` and dense width ``J``."""
        t0 = time.perf_counter()
        feats = partition_features(A, J)[None, :]
        if getattr(self, "_constant", None) is not None:
            p = self._constant
        else:
            p = int(self.model.predict(feats)[0])
        self.last_inference_s = time.perf_counter() - t0
        # Partitions cannot exceed the column count.
        return max(1, min(p, A.shape[1]))

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction on precomputed feature rows (for evaluation)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if getattr(self, "_constant", None) is not None:
            return np.full(features.shape[0], self._constant, dtype=np.int64)
        return self.model.predict(features).astype(np.int64)
