"""Save/load trained LiteForm pipelines.

Training data generation is the expensive, amortized step (Section 5.1);
persisting the fitted predictors lets deployments skip it entirely.  The
models are plain NumPy-backed Python objects, serialized with pickle.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.core.pipeline import LiteForm

#: Format tag checked on load, bumped on incompatible changes.
MAGIC = "repro-liteform-v1"


def save_liteform(lf: LiteForm, path: str | Path) -> None:
    """Serialize a fitted LiteForm's predictors to ``path``."""
    if not lf._fitted:
        raise ValueError("cannot save an unfitted LiteForm; call fit() first")
    payload = {
        "magic": MAGIC,
        "selector": lf.selector,
        "partition_model": lf.partition_model,
        "block_multiple": lf.block_multiple,
        "bcsr_occupancy_threshold": lf.bcsr_occupancy_threshold,
    }
    with Path(path).open("wb") as fh:
        pickle.dump(payload, fh)


def load_liteform(path: str | Path) -> LiteForm:
    """Load a LiteForm saved by :func:`save_liteform`."""
    with Path(path).open("rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or "magic" not in payload:
        raise ValueError(f"{path} is not a saved LiteForm model bundle")
    if payload["magic"] != MAGIC:
        raise ValueError(
            f"{path} has incompatible bundle tag {payload['magic']!r} "
            f"(expected {MAGIC!r}); re-save the models with this version"
        )
    lf = LiteForm(
        selector=payload["selector"],
        partition_model=payload["partition_model"],
        block_multiple=payload["block_multiple"],
        bcsr_occupancy_threshold=payload["bcsr_occupancy_threshold"],
    )
    lf._fitted = True
    return lf
