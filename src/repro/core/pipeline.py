"""The LiteForm end-to-end pipeline (Figure 2).

``compose`` runs the three stages — CELL-benefit prediction, partition
prediction, bucket-width search — and returns a :class:`ComposePlan`
holding the chosen format, the kernel that executes it, and the measured
construction overhead (the quantity of Figures 8-9).  ``run`` executes the
plan on the simulated device.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.bucket_search import build_buckets
from repro.core.cost_model import matrix_cost_profiles
from repro.core.partition_model import PartitionPredictor
from repro.core.selector import FormatSelector
from repro.core.training import TrainingData
from repro.formats.base import SparseFormat, as_csr
from repro.matrices.features import format_selection_features
from repro.obs import get_registry, get_tracer
from repro.formats.bcsr import BCSRFormat
from repro.formats.cell import CELLFormat, split_csr
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import Measurement
from repro.kernels.base import SpMMKernel
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM


@dataclass(frozen=True)
class OverheadBreakdown:
    """Wall-clock construction overhead, split by pipeline stage."""

    selection_s: float
    partition_s: float
    search_s: float
    build_s: float

    @property
    def total_s(self) -> float:
        return self.selection_s + self.partition_s + self.search_s + self.build_s


@dataclass
class ComposePlan:
    """Outcome of ``LiteForm.compose`` for one (matrix, J) pair."""

    use_cell: bool
    fmt: SparseFormat
    kernel: SpMMKernel
    num_partitions: int
    max_widths: list[int] = field(default_factory=list)
    overhead: OverheadBreakdown = field(
        default_factory=lambda: OverheadBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    predicted_cost: float | None = None


def _blockwise_occupancy(A: sp.csr_matrix, block: int = 8) -> float:
    """Mean fill of the non-empty (block x block) tiles — the cheap signal
    used to pick between the fixed formats when CELL is rejected."""
    if A.nnz == 0:
        return 0.0
    rows = np.repeat(
        np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr).astype(np.int64)
    )
    nbc = -(-A.shape[1] // block)
    keys = (rows // block) * np.int64(nbc) + A.indices.astype(np.int64) // block
    n_tiles = np.unique(keys).size
    return A.nnz / (n_tiles * block * block)


#: Pipeline-level instruments on the process-wide registry (created at
#: import time, Prometheus-client style, so the hot path only increments).
_COMPOSE_TOTAL = get_registry().counter(
    "compose_total", "Plans composed by LiteForm.compose_csr"
)
_COMPOSE_CELL = get_registry().counter(
    "compose_cell_total", "Composed plans that selected the CELL format"
)
_COMPOSE_OVERHEAD_MS = get_registry().histogram(
    "compose_overhead_ms", "Wall-clock construction overhead per compose (ms)"
)


def _record_compose(plan: "ComposePlan") -> None:
    _COMPOSE_TOTAL.inc()
    if plan.use_cell:
        _COMPOSE_CELL.inc()
    _COMPOSE_OVERHEAD_MS.observe(plan.overhead.total_s * 1e3)


class LiteForm:
    """Lightweight automatic format composition for SpMM.

    Typical use::

        lf = LiteForm()
        lf.fit(training_data)              # offline, amortized
        plan = lf.compose(A, J=128)        # milliseconds (Figs. 8-9)
        C, measurement = lf.run(plan, B)   # simulated execution
    """

    def __init__(
        self,
        selector: FormatSelector | None = None,
        partition_model: PartitionPredictor | None = None,
        device: SimulatedDevice | None = None,
        block_multiple: int = 2,
        bcsr_occupancy_threshold: float = 0.5,
    ):
        self.selector = selector or FormatSelector()
        self.partition_model = partition_model or PartitionPredictor()
        self.device = device or SimulatedDevice()
        self.block_multiple = block_multiple
        self.bcsr_occupancy_threshold = bcsr_occupancy_threshold
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, training: TrainingData) -> "LiteForm":
        """Train both predictors from simulated execution history."""
        if not training.format_samples or not training.partition_samples:
            raise ValueError("training data must contain samples for both models")
        self.selector.fit(training.format_X, training.format_y)
        self.partition_model.fit(training.partition_X, training.partition_y)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def compose(self, A: sp.spmatrix, J: int, force_cell: bool | None = None) -> ComposePlan:
        """Figure 2: select, partition, search, and build.

        ``force_cell`` overrides stage 1 (used by ablations and by Fig. 7,
        which compares composed CELL directly against tuned SparseTIR).
        """
        with get_tracer().span("canonicalize"):
            A = as_csr(A)
        return self.compose_csr(A, J, force_cell=force_cell)

    def compose_csr(
        self, A: sp.csr_matrix, J: int, force_cell: bool | None = None
    ) -> ComposePlan:
        """:meth:`compose` for an already-canonical CSR matrix.

        Skips the ``as_csr`` re-validation (dtype conversion, duplicate
        summing, index sorting) — the hot path for callers that fingerprint
        or otherwise pre-process the CSR arrays, e.g.
        :class:`repro.serve.server.SpMMServer`.  The caller guarantees
        sorted, deduplicated float32 CSR input.
        """
        if not self._fitted and force_cell is None:
            raise RuntimeError("LiteForm.fit must run before compose")
        if J < 1:
            raise ValueError(f"J must be >= 1, got {J}")
        tracer = get_tracer()

        t0 = time.perf_counter()
        if force_cell is not None:
            use_cell = force_cell
        else:
            with tracer.span("features", nnz=A.nnz):
                feats = format_selection_features(A)[None, :]
            with tracer.span("select") as sel_span:
                use_cell = bool(self.selector.predict_features(feats)[0])
                sel_span.set(use_cell=use_cell)
            # predict() would have timed features + inference itself; keep
            # the selector's public timing attribute behaving the same.
            self.selector.last_inference_s = time.perf_counter() - t0
        t1 = time.perf_counter()

        if not use_cell:
            with tracer.span("build", format="fixed"):
                if _blockwise_occupancy(A) >= self.bcsr_occupancy_threshold:
                    fmt: SparseFormat = BCSRFormat.from_csr(A, block_shape=(8, 8))
                    kernel: SpMMKernel = BCSRSpMM()
                else:
                    fmt = CSRFormat.from_csr(A)
                    kernel = RowSplitCSRSpMM()
            t2 = time.perf_counter()
            plan = ComposePlan(
                use_cell=False,
                fmt=fmt,
                kernel=kernel,
                num_partitions=1,
                overhead=OverheadBreakdown(t1 - t0, 0.0, 0.0, t2 - t1),
            )
            _record_compose(plan)
            return plan

        with tracer.span("partition", J=J) as part_span:
            num_partitions = (
                self.partition_model.predict(A, J) if self._fitted else 1
            )
            part_span.set(num_partitions=num_partitions)
        t2 = time.perf_counter()

        with tracer.span("tune_width", num_partitions=num_partitions):
            # One bulk split shared by tune and build below.
            cells = split_csr(A, num_partitions)
            profiles = matrix_cost_profiles(A, num_partitions, cells=cells)
            results = [
                build_buckets(p, J, num_partitions=num_partitions)
                if p.num_nonempty_rows
                else None
                for p in profiles
            ]
            widths = [1 << r.max_exp if r else 1 for r in results]
            predicted = sum(r.cost for r in results if r)
        t3 = time.perf_counter()

        with tracer.span("build", format="CELL"):
            fmt = CELLFormat.from_csr(
                A,
                num_partitions=num_partitions,
                max_widths=widths,
                block_multiple=self.block_multiple,
                cells=cells,
            )
        t4 = time.perf_counter()
        plan = ComposePlan(
            use_cell=True,
            fmt=fmt,
            kernel=CELLSpMM(),
            num_partitions=num_partitions,
            max_widths=widths,
            overhead=OverheadBreakdown(t1 - t0, t2 - t1, t3 - t2, t4 - t3),
            predicted_cost=predicted,
        )
        _record_compose(plan)
        return plan

    # ------------------------------------------------------------------
    def run(self, plan: ComposePlan, B: np.ndarray) -> tuple[np.ndarray, Measurement]:
        """Execute a composed plan numerically + on the simulated device."""
        return plan.kernel.run(plan.fmt, B, self.device)

    def measure(self, plan: ComposePlan, J: int) -> Measurement:
        """Timing-only evaluation of a composed plan."""
        return plan.kernel.measure(plan.fmt, J, self.device)
