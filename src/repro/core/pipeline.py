"""The LiteForm end-to-end pipeline (Figure 2).

``compose`` runs the three stages — CELL-benefit prediction, partition
prediction, bucket-width search — and returns a :class:`ComposePlan`
holding the chosen format, the kernel that executes it, and the measured
construction overhead (the quantity of Figures 8-9).  ``run`` executes the
plan on the simulated device.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.parallel import PoolSpec, compose_partitions
from repro.core.partition_model import PartitionPredictor
from repro.core.selector import FormatSelector
from repro.core.training import TrainingData
from repro.formats.base import VALUE_DTYPE, SparseFormat, as_csr
from repro.matrices.features import format_selection_features
from repro.obs import get_registry, get_tracer
from repro.formats.bcsr import BCSRFormat
from repro.formats.cell import CELLFormat, split_csr, touched_partitions
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import Measurement
from repro.kernels.base import SpMMKernel
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM


@dataclass(frozen=True)
class OverheadBreakdown:
    """Wall-clock construction overhead, split by pipeline stage."""

    selection_s: float
    partition_s: float
    search_s: float
    build_s: float

    @property
    def total_s(self) -> float:
        return self.selection_s + self.partition_s + self.search_s + self.build_s


@dataclass
class IncrementalState:
    """What ``patch_rows`` needs to rebuild a CELL plan partition-by-partition.

    Captured during compose: the partitioning geometry, the per-(row,
    partition) stored-element ``counts`` from :func:`partition_cells`
    (int32 — values are bounded by the column count), and the tuned
    per-partition widths/costs.  ``patched`` records which partitions the
    most recent ``patch_rows`` call actually rebuilt (empty after a full
    compose) — tests and benchmarks read it to verify the delta stayed a
    delta.
    """

    J: int
    num_partitions: int
    block_multiple: int
    bounds: list[tuple[int, int]]
    counts: np.ndarray
    widths: list[int]
    costs: list[float | None]
    patched: tuple[int, ...] = ()


@dataclass
class ComposePlan:
    """Outcome of ``LiteForm.compose`` for one (matrix, J) pair."""

    use_cell: bool
    fmt: SparseFormat
    kernel: SpMMKernel
    num_partitions: int
    max_widths: list[int] = field(default_factory=list)
    overhead: OverheadBreakdown = field(
        default_factory=lambda: OverheadBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    predicted_cost: float | None = None
    incremental: IncrementalState | None = None

    def patch_rows(
        self,
        A: sp.spmatrix,
        changed_rows,
        *,
        pool: PoolSpec | None = None,
    ) -> "ComposePlan":
        """Incremental recompose: rebuild only the partitions ``changed_rows``
        touch and reuse every other partition's buckets unchanged.

        ``A`` is the *updated* matrix (same shape as the plan's); the
        returned plan is bit-identical to a full
        :func:`compose_cell_plan` of ``A`` at this plan's partition count,
        width search included — partitions no updated row stores elements
        in (before or after the update) depend only on unchanged rows, so
        their tuned widths, buckets, and costs carry over verbatim, while
        touched partitions re-run profile -> width search -> build.

        Limits (see docs/COMPOSE.md): the partition count and ``J`` are
        frozen at compose time — the format selector and partition
        predictor are *not* re-consulted, so a matrix that drifts far from
        its composed structure should be recomposed from scratch.  Raises
        ``ValueError`` for non-CELL plans or a shape change.
        """
        if not self.use_cell or self.incremental is None:
            raise ValueError(
                "patch_rows requires a CELL plan composed with incremental state"
            )
        state = self.incremental
        if not sp.issparse(A):
            A = as_csr(A)
        elif (
            A.format != "csr"
            or A.dtype != VALUE_DTYPE
            or not A.has_canonical_format
        ):
            A = as_csr(A)
        if A.shape != self.fmt.shape:
            raise ValueError(
                f"patch_rows cannot change the matrix shape: plan has "
                f"{self.fmt.shape}, update has {A.shape}"
            )
        changed = np.unique(np.asarray(changed_rows, dtype=np.int64))
        if changed.size and (changed[0] < 0 or changed[-1] >= A.shape[0]):
            raise ValueError("changed row index out of range")
        t0 = time.perf_counter()
        P = state.num_partitions
        cells = split_csr(A, P)
        A, bounds, counts, _starts = cells
        affected = touched_partitions(state.counts, counts, changed)
        with get_tracer().span(
            "patch_rows", changed_rows=int(changed.size), rebuilt=int(affected.size)
        ):
            fan = compose_partitions(
                A,
                P,
                state.J,
                block_multiple=state.block_multiple,
                pool=pool,
                cells=cells,
                only=[int(p) for p in affected],
            )
            rebuilt = {o.index: o for o in fan.outcomes}
            partitions, widths, costs = [], [], []
            for p in range(P):
                if p in rebuilt:
                    o = rebuilt[p]
                    partitions.append(o.partition)
                    widths.append(o.width)
                    costs.append(o.result.cost if o.result else None)
                else:
                    partitions.append(self.fmt.partitions[p])
                    widths.append(state.widths[p])
                    costs.append(state.costs[p])
            fmt = CELLFormat(self.fmt.shape, partitions, int(A.nnz))
        elapsed = time.perf_counter() - t0
        # Same left-to-right accumulation as a full compose.
        predicted = sum(c for c in costs if c is not None)
        tune_frac = fan.tune_fraction if affected.size else 0.5
        plan = ComposePlan(
            use_cell=True,
            fmt=fmt,
            kernel=self.kernel,
            num_partitions=P,
            max_widths=widths,
            overhead=OverheadBreakdown(
                0.0, 0.0, elapsed * tune_frac, elapsed * (1.0 - tune_frac)
            ),
            predicted_cost=predicted,
            incremental=IncrementalState(
                J=state.J,
                num_partitions=P,
                block_multiple=state.block_multiple,
                bounds=bounds,
                counts=counts.astype(np.int32),
                widths=widths,
                costs=costs,
                patched=tuple(int(p) for p in affected),
            ),
        )
        _record_compose(plan)
        return plan


def _blockwise_occupancy(A: sp.csr_matrix, block: int = 8) -> float:
    """Mean fill of the non-empty (block x block) tiles — the cheap signal
    used to pick between the fixed formats when CELL is rejected."""
    if A.nnz == 0:
        return 0.0
    rows = np.repeat(
        np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr).astype(np.int64)
    )
    nbc = -(-A.shape[1] // block)
    keys = (rows // block) * np.int64(nbc) + A.indices.astype(np.int64) // block
    n_tiles = np.unique(keys).size
    return A.nnz / (n_tiles * block * block)


#: Pipeline-level instruments on the process-wide registry (created at
#: import time, Prometheus-client style, so the hot path only increments).
_COMPOSE_TOTAL = get_registry().counter(
    "compose_total", "Plans composed by LiteForm.compose_csr"
)
_COMPOSE_CELL = get_registry().counter(
    "compose_cell_total", "Composed plans that selected the CELL format"
)
_COMPOSE_OVERHEAD_MS = get_registry().histogram(
    "compose_overhead_ms", "Wall-clock construction overhead per compose (ms)"
)


def _record_compose(plan: "ComposePlan") -> None:
    _COMPOSE_TOTAL.inc()
    if plan.use_cell:
        _COMPOSE_CELL.inc()
    _COMPOSE_OVERHEAD_MS.observe(plan.overhead.total_s * 1e3)


def compose_cell_plan(
    A: sp.csr_matrix,
    num_partitions: int,
    J: int,
    *,
    block_multiple: int = 2,
    pool: PoolSpec | None = None,
) -> ComposePlan:
    """Stages 2b-3 of Figure 2 for an already-canonical CSR matrix at a
    fixed partition count: split, per-partition width search, bucket build.

    This is the compose path both the serial pipeline and the partition
    pool share — with ``pool`` unset (or ``kind="serial"``) the partitions
    run inline in index order; with a parallel :class:`PoolSpec` they fan
    out, producing a bit-identical plan (same buckets, same widths, same
    ``predicted_cost`` float accumulation).  The returned plan carries the
    :class:`IncrementalState` that :meth:`ComposePlan.patch_rows` consumes.
    The ``selection``/``partition`` overhead fields are zero — callers
    that ran those stages (``LiteForm.compose_csr``) fill them in.
    """
    tracer = get_tracer()
    t0 = time.perf_counter()
    span_attrs = {"num_partitions": num_partitions}
    if pool is not None and pool.parallel:
        span_attrs["pool"] = pool.kind
        span_attrs["workers"] = pool.workers
    with tracer.span("tune_width", **span_attrs):
        cells = split_csr(A, num_partitions)
        fan = compose_partitions(
            A,
            num_partitions,
            J,
            block_multiple=block_multiple,
            pool=pool,
            cells=cells,
        )
        widths = fan.widths
        predicted = fan.predicted_cost
    t1 = time.perf_counter()
    with tracer.span("build", format="CELL"):
        fmt = fan.to_format()
    t2 = time.perf_counter()
    # The fan-out fuses tuning and building per partition; apportion the
    # measured wall between the two overhead stages by the tasks' own
    # tune/build split so the Fig. 8-9 accounting keeps its meaning.
    frac = fan.tune_fraction
    fused = t1 - t0
    search_s = fused * frac
    build_s = fused * (1.0 - frac) + (t2 - t1)
    return ComposePlan(
        use_cell=True,
        fmt=fmt,
        kernel=CELLSpMM(),
        num_partitions=num_partitions,
        max_widths=widths,
        overhead=OverheadBreakdown(0.0, 0.0, search_s, build_s),
        predicted_cost=predicted,
        incremental=IncrementalState(
            J=J,
            num_partitions=num_partitions,
            block_multiple=block_multiple,
            bounds=fan.bounds,
            counts=fan.counts.astype(np.int32),
            widths=list(widths),
            costs=fan.costs,
        ),
    )


class LiteForm:
    """Lightweight automatic format composition for SpMM.

    Typical use::

        lf = LiteForm()
        lf.fit(training_data)              # offline, amortized
        plan = lf.compose(A, J=128)        # milliseconds (Figs. 8-9)
        C, measurement = lf.run(plan, B)   # simulated execution
    """

    def __init__(
        self,
        selector: FormatSelector | None = None,
        partition_model: PartitionPredictor | None = None,
        device: SimulatedDevice | None = None,
        block_multiple: int = 2,
        bcsr_occupancy_threshold: float = 0.5,
        pool: PoolSpec | None = None,
    ):
        self.selector = selector or FormatSelector()
        self.partition_model = partition_model or PartitionPredictor()
        self.device = device or SimulatedDevice()
        self.block_multiple = block_multiple
        self.bcsr_occupancy_threshold = bcsr_occupancy_threshold
        self.pool = pool
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, training: TrainingData) -> "LiteForm":
        """Train both predictors from simulated execution history."""
        if not training.format_samples or not training.partition_samples:
            raise ValueError("training data must contain samples for both models")
        self.selector.fit(training.format_X, training.format_y)
        self.partition_model.fit(training.partition_X, training.partition_y)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def compose(self, A: sp.spmatrix, J: int, force_cell: bool | None = None) -> ComposePlan:
        """Figure 2: select, partition, search, and build.

        ``force_cell`` overrides stage 1 (used by ablations and by Fig. 7,
        which compares composed CELL directly against tuned SparseTIR).
        """
        with get_tracer().span("canonicalize"):
            A = as_csr(A)
        return self.compose_csr(A, J, force_cell=force_cell)

    def compose_csr(
        self, A: sp.csr_matrix, J: int, force_cell: bool | None = None
    ) -> ComposePlan:
        """:meth:`compose` for an already-canonical CSR matrix.

        Skips the ``as_csr`` re-validation (dtype conversion, duplicate
        summing, index sorting) — the hot path for callers that fingerprint
        or otherwise pre-process the CSR arrays, e.g.
        :class:`repro.serve.server.SpMMServer`.  The caller guarantees
        sorted, deduplicated float32 CSR input.
        """
        if not self._fitted and force_cell is None:
            raise RuntimeError("LiteForm.fit must run before compose")
        if J < 1:
            raise ValueError(f"J must be >= 1, got {J}")
        tracer = get_tracer()

        t0 = time.perf_counter()
        if force_cell is not None:
            use_cell = force_cell
            # The selector did not run: zero its public timing attribute so
            # overhead accounting (Figs. 8-9, ablations) doesn't attribute
            # the *previous* matrix's inference time to this compose.
            self.selector.last_inference_s = 0.0
        else:
            with tracer.span("features", nnz=A.nnz):
                feats = format_selection_features(A)[None, :]
            with tracer.span("select") as sel_span:
                use_cell = bool(self.selector.predict_features(feats)[0])
                sel_span.set(use_cell=use_cell)
            # predict() would have timed features + inference itself; keep
            # the selector's public timing attribute behaving the same.
            self.selector.last_inference_s = time.perf_counter() - t0
        t1 = time.perf_counter()

        if not use_cell:
            with tracer.span("build", format="fixed"):
                if _blockwise_occupancy(A) >= self.bcsr_occupancy_threshold:
                    fmt: SparseFormat = BCSRFormat.from_csr(A, block_shape=(8, 8))
                    kernel: SpMMKernel = BCSRSpMM()
                else:
                    fmt = CSRFormat.from_csr(A)
                    kernel = RowSplitCSRSpMM()
            t2 = time.perf_counter()
            plan = ComposePlan(
                use_cell=False,
                fmt=fmt,
                kernel=kernel,
                num_partitions=1,
                overhead=OverheadBreakdown(t1 - t0, 0.0, 0.0, t2 - t1),
            )
            _record_compose(plan)
            return plan

        with tracer.span("partition", J=J) as part_span:
            num_partitions = (
                self.partition_model.predict(A, J) if self._fitted else 1
            )
            part_span.set(num_partitions=num_partitions)
        t2 = time.perf_counter()

        plan = compose_cell_plan(
            A,
            num_partitions,
            J,
            block_multiple=self.block_multiple,
            pool=self.pool,
        )
        plan.overhead = OverheadBreakdown(
            t1 - t0, t2 - t1, plan.overhead.search_s, plan.overhead.build_s
        )
        _record_compose(plan)
        return plan

    # ------------------------------------------------------------------
    def run(self, plan: ComposePlan, B: np.ndarray) -> tuple[np.ndarray, Measurement]:
        """Execute a composed plan numerically + on the simulated device."""
        return plan.kernel.run(plan.fmt, B, self.device)

    def measure(self, plan: ComposePlan, J: int) -> Measurement:
        """Timing-only evaluation of a composed plan."""
        return plan.kernel.measure(plan.fmt, J, self.device)
