"""Stage 1: predict whether CELL beats the fixed formats (Section 5.1)."""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.matrices.features import format_selection_features
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier

#: A matrix is labelled TRUE when CELL's best time beats *both* fixed
#: formats by more than this factor (Section 5.1).
CELL_ADVANTAGE_THRESHOLD = 1.1


class FormatSelector:
    """Binary classifier over the seven Table 2 features.

    Wraps any :class:`~repro.ml.base.BaseClassifier`; LiteForm adopts
    Random Forest (Section 6).  Labels are booleans: True = use CELL.
    """

    def __init__(self, model: BaseClassifier | None = None):
        self.model = model if model is not None else RandomForestClassifier(n_estimators=50)
        self.last_inference_s: float = 0.0
        self._constant: bool | None = None
        self._fitted = False

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "FormatSelector":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if labels.dtype != np.bool_:
            labels = labels.astype(bool)
        if np.unique(labels).size < 2:
            # Degenerate training set: remember the constant answer.
            self._constant = bool(labels[0])
            self._fitted = True
            return self
        self._constant = None
        self.model.fit(features, labels.astype(np.int64))
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        # Pickles from before `_fitted` existed were only ever saved
        # after training, when `fit` had stored `_constant`.
        fitted = getattr(self, "_fitted", None)
        if fitted is None:
            return "_constant" in self.__dict__
        return bool(fitted)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                "FormatSelector has not been fitted; call fit(features, labels) "
                "(or LiteForm.fit) before predicting"
            )

    def predict(self, A: sp.csr_matrix) -> bool:
        """Should this matrix use CELL?  Timed — the Fig. 8 overhead term."""
        self._require_fitted()
        t0 = time.perf_counter()
        feats = format_selection_features(A)[None, :]
        if getattr(self, "_constant", None) is not None:
            result = self._constant
        else:
            result = bool(self.model.predict(feats)[0])
        self.last_inference_s = time.perf_counter() - t0
        return result

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction on precomputed feature rows (for evaluation)."""
        self._require_fitted()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if getattr(self, "_constant", None) is not None:
            return np.full(features.shape[0], self._constant, dtype=bool)
        return self.model.predict(features).astype(bool)
