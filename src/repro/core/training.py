"""Training-data generation for LiteForm's two predictors (Sections 5.1-5.2).

For every matrix in a collection, SpMM is simulated with the fixed formats
(CSR under the cuSPARSE-style kernel, BCSR under the blockwise kernel) and
with CELL composed by the cost model for every candidate partition count.
The recorded execution times produce:

* the format-selection label — TRUE when CELL's best time beats *both*
  fixed formats by more than 1.1x (geometric mean across dense widths);
* the per-``(matrix, J)`` optimal partition count — the Table 6 target.

This is the offline step whose cost the paper amortizes over future use;
the benchmarks reuse one generated :class:`TrainingData` for Tables 5-6 and
Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.bucket_search import build_buckets
from repro.core.cost_model import matrix_cost_profiles
from repro.core.partition_model import PARTITION_CANDIDATES
from repro.core.selector import CELL_ADVANTAGE_THRESHOLD
from repro.formats.bcsr import BCSRFormat
from repro.formats.cell import CELLFormat
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM
from repro.matrices.features import format_selection_features, partition_features

#: Dense widths swept during training (Section 5.2).
DEFAULT_J_VALUES = (32, 64, 128, 256, 512)


@dataclass
class FormatSelectionSample:
    """One Table 2 training row."""

    name: str
    features: np.ndarray  # (7,)
    label: bool
    cell_time_s: float  # geomean over J of the best-partition CELL time
    fixed_time_s: float  # geomean over J of min(CSR, BCSR)


@dataclass
class PartitionSample:
    """One Table 3 training row (per matrix x dense width)."""

    name: str
    J: int
    features: np.ndarray  # (8,)
    best_partitions: int
    times_by_partition: dict[int, float]


@dataclass
class TrainingData:
    """Labelled samples for both predictors."""

    format_samples: list[FormatSelectionSample] = field(default_factory=list)
    partition_samples: list[PartitionSample] = field(default_factory=list)

    @property
    def format_X(self) -> np.ndarray:
        return np.vstack([s.features for s in self.format_samples])

    @property
    def format_y(self) -> np.ndarray:
        return np.array([s.label for s in self.format_samples], dtype=bool)

    @property
    def partition_X(self) -> np.ndarray:
        return np.vstack([s.features for s in self.partition_samples])

    @property
    def partition_y(self) -> np.ndarray:
        return np.array(
            [s.best_partitions for s in self.partition_samples], dtype=np.int64
        )

    def merged_with(self, other: "TrainingData") -> "TrainingData":
        return TrainingData(
            format_samples=self.format_samples + other.format_samples,
            partition_samples=self.partition_samples + other.partition_samples,
        )


def _geomean(values: list[float]) -> float:
    arr = np.asarray(values, dtype=np.float64)
    return float(np.exp(np.mean(np.log(arr))))


def serving_format_sample(
    name: str,
    features: np.ndarray,
    cell_time_s: float,
    fixed_time_s: float,
) -> FormatSelectionSample:
    """One Table 2 row from *serving* telemetry rather than a J-sweep.

    The serving path measures each format family at the request's own
    ``J`` instead of sweeping ``DEFAULT_J_VALUES``, so the times are
    per-observation means, not geomeans — the label rule is the same
    as :func:`generate_training_data`'s.
    """
    if cell_time_s <= 0.0:
        raise ValueError(f"cell_time_s must be positive, got {cell_time_s}")
    return FormatSelectionSample(
        name=name,
        features=np.asarray(features, dtype=np.float64),
        label=bool(fixed_time_s / cell_time_s > CELL_ADVANTAGE_THRESHOLD),
        cell_time_s=float(cell_time_s),
        fixed_time_s=float(fixed_time_s),
    )


def compose_cell_for_partitions(
    A: sp.csr_matrix,
    num_partitions: int,
    J: int,
    block_multiple: int = 2,
    profiles=None,
) -> CELLFormat:
    """Cost-model-driven CELL composition for a fixed partition count."""
    if profiles is None:
        profiles = matrix_cost_profiles(A, num_partitions)
    widths = [
        (1 << build_buckets(p, J, num_partitions=num_partitions).max_exp)
        if p.num_nonempty_rows
        else 1
        for p in profiles
    ]
    return CELLFormat.from_csr(
        A, num_partitions=num_partitions, max_widths=widths, block_multiple=block_multiple
    )


def generate_training_data(
    entries,
    device: SimulatedDevice | None = None,
    J_values: tuple[int, ...] = DEFAULT_J_VALUES,
    partition_candidates: tuple[int, ...] = PARTITION_CANDIDATES,
    block_multiple: int = 2,
) -> TrainingData:
    """Simulate SpMM across formats and label every matrix.

    ``entries`` is an iterable of objects with ``.name`` and ``.matrix``
    (e.g. :class:`~repro.matrices.collection.CollectionEntry`), or plain
    ``(name, matrix)`` tuples.
    """
    device = device or SimulatedDevice()
    csr_kernel = RowSplitCSRSpMM()
    bcsr_kernel = BCSRSpMM()
    cell_kernel = CELLSpMM()
    data = TrainingData()
    for entry in entries:
        if isinstance(entry, tuple):
            name, A = entry
        else:
            name, A = entry.name, entry.matrix
        if A.nnz == 0:
            continue
        csr = CSRFormat.from_csr(A)
        bcsr = BCSRFormat.from_csr(A, block_shape=(8, 8))
        candidates = [p for p in partition_candidates if p <= A.shape[1]]
        profile_cache = {p: matrix_cost_profiles(A, p) for p in candidates}

        fixed_by_J: list[float] = []
        cell_by_J: list[float] = []
        for J in J_values:
            t_csr = csr_kernel.measure(csr, J, device).time_s
            try:
                t_bcsr = bcsr_kernel.measure(bcsr, J, device).time_s
            except SimulatedOOMError:
                t_bcsr = float("inf")
            fixed = min(t_csr, t_bcsr)
            times: dict[int, float] = {}
            for p in candidates:
                fmt = compose_cell_for_partitions(
                    A, p, J, block_multiple=block_multiple, profiles=profile_cache[p]
                )
                try:
                    times[p] = cell_kernel.measure(fmt, J, device).time_s
                except SimulatedOOMError:
                    times[p] = float("inf")
            best_p = min(times, key=times.get)
            data.partition_samples.append(
                PartitionSample(
                    name=name,
                    J=J,
                    features=partition_features(A, J),
                    best_partitions=best_p,
                    times_by_partition=times,
                )
            )
            fixed_by_J.append(fixed)
            cell_by_J.append(times[best_p])

        cell_gm = _geomean(cell_by_J)
        fixed_gm = _geomean(fixed_by_J)
        data.format_samples.append(
            FormatSelectionSample(
                name=name,
                features=format_selection_features(A),
                label=bool(fixed_gm / cell_gm > CELL_ADVANTAGE_THRESHOLD),
                cell_time_s=cell_gm,
                fixed_time_s=fixed_gm,
            )
        )
    return data
