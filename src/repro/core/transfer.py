"""Transfer learning across devices/kernels — Section 8's mitigation.

The paper notes LiteForm "requires model retraining for new architectures
or kernels" and suggests transfer learning to avoid retraining from
scratch.  This module implements the standard instance-weighting form:
keep the (large, cheap-to-reuse) source-device training set, add the
(small, expensive) target-device set replicated ``target_weight`` times,
and refit — so a handful of target measurements correct the source model's
device-specific biases while its pattern knowledge is retained.
"""

from __future__ import annotations

from repro.core.pipeline import LiteForm
from repro.core.training import TrainingData


def transfer_training_data(
    source: TrainingData, target: TrainingData, target_weight: int = 4
) -> TrainingData:
    """Combine source-device history with up-weighted target samples."""
    if target_weight < 1:
        raise ValueError(f"target_weight must be >= 1, got {target_weight}")
    combined = TrainingData(
        format_samples=list(source.format_samples),
        partition_samples=list(source.partition_samples),
    )
    for _ in range(target_weight):
        combined.format_samples.extend(target.format_samples)
        combined.partition_samples.extend(target.partition_samples)
    return combined


def transfer_fit(
    liteform: LiteForm,
    source: TrainingData,
    target: TrainingData,
    target_weight: int = 4,
) -> LiteForm:
    """Fit ``liteform`` for a new device from mostly-source data.

    ``target`` is typically generated from a few matrices measured on the
    new device — orders of magnitude cheaper than regenerating the full
    source collection's history.
    """
    if not target.format_samples:
        raise ValueError("target data must contain at least one sample")
    return liteform.fit(transfer_training_data(source, target, target_weight))


def refit_format_selector(
    liteform: LiteForm,
    target: TrainingData,
    source: TrainingData | None = None,
    target_weight: int = 4,
) -> int:
    """Refit only the *format selector* on serving-derived samples.

    Unlike :func:`transfer_fit`, this leaves the partition predictor
    untouched — serving telemetry yields format-family rewards (CELL vs
    fixed per request) but no partition-count sweep, so only the Table 2
    model can be updated online.  With ``source`` history the serving
    samples are up-weighted ``target_weight`` times against it; without,
    the selector is fit on serving samples alone.  Returns the number of
    samples fit on.
    """
    if not target.format_samples:
        raise ValueError("target data must contain at least one format sample")
    if source is not None:
        combined = transfer_training_data(source, target, target_weight)
    else:
        combined = target
    liteform.selector.fit(combined.format_X, combined.format_y)
    return len(combined.format_samples)
