"""Sparse matrix storage formats.

Implements the element-wise and blockwise formats discussed in Section 2.1
of the paper (COO, CSR, ELL, Sliced-ELL, BCSR, Blocked-ELL) and the paper's
contribution, the three-level Composable Ellpack (CELL) format of Section 4.

All formats are constructed from a ``scipy.sparse`` matrix, expose their
device memory footprint and padding ratio, and can round-trip back to CSR
for verification.
"""

from repro.formats.base import (
    SparseFormat,
    ceil_pow2,
    ceil_pow2_exponent,
    padding_ratio,
)
from repro.formats.bcsr import BCSRFormat
from repro.formats.blocked_ell import BlockedELLFormat
from repro.formats.cell import Bucket, CELLFormat, Partition
from repro.formats.coo import COOFormat
from repro.formats.csr import CSRFormat
from repro.formats.ell import ELLFormat
from repro.formats.sliced_ell import SlicedELLFormat

__all__ = [
    "SparseFormat",
    "ceil_pow2",
    "ceil_pow2_exponent",
    "padding_ratio",
    "COOFormat",
    "CSRFormat",
    "ELLFormat",
    "SlicedELLFormat",
    "BCSRFormat",
    "BlockedELLFormat",
    "CELLFormat",
    "Partition",
    "Bucket",
]
