"""Shared machinery for sparse formats."""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

#: Index dtype used by all formats (CUDA kernels use 32-bit indices).
INDEX_DTYPE = np.int32
#: Value dtype used by all formats.
VALUE_DTYPE = np.float32


def ceil_pow2(n: int | np.ndarray) -> int | np.ndarray:
    """Smallest power of two >= ``n`` (n >= 1). Vectorized over arrays."""
    if np.isscalar(n):
        if n < 1:
            raise ValueError(f"ceil_pow2 requires n >= 1, got {n}")
        return 1 << max(0, int(np.ceil(np.log2(n))))
    arr = np.asarray(n)
    if arr.size and arr.min() < 1:
        raise ValueError("ceil_pow2 requires all entries >= 1")
    return (1 << np.ceil(np.log2(arr)).astype(np.int64)).astype(arr.dtype)


def ceil_pow2_exponent(n: int | np.ndarray) -> int | np.ndarray:
    """Exponent ``i`` such that ``2**i`` is the smallest power of two >= n.

    This is the bucket index of the CELL format: a row of length ``l`` lands
    in bucket ``i`` with ``2**(i-1) < l <= 2**i`` (Section 4).
    """
    if np.isscalar(n):
        if n < 1:
            raise ValueError(f"requires n >= 1, got {n}")
        return max(0, int(np.ceil(np.log2(int(n)))))
    arr = np.asarray(n, dtype=np.int64)
    if arr.size and arr.min() < 1:
        raise ValueError("requires all entries >= 1")
    return np.maximum(0, np.ceil(np.log2(arr)).astype(np.int64))


def padding_ratio(stored: int, nnz: int) -> float:
    """Fraction of stored value slots that are zero padding."""
    if stored <= 0:
        return 0.0
    return 1.0 - nnz / stored


def as_csr(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Canonicalize any input to a deduplicated, sorted float32 CSR matrix."""
    A = sp.csr_matrix(matrix, dtype=VALUE_DTYPE)
    A.sum_duplicates()
    A.sort_indices()
    # Drop explicit zeros so "non-zero count" is meaningful for formats.
    A.eliminate_zeros()
    return A


class SparseFormat(abc.ABC):
    """Abstract base class for all sparse storage formats.

    Subclasses convert from CSR on construction (``from_csr``) and expose:

    * :attr:`shape`, :attr:`nnz` — logical matrix identity;
    * :meth:`to_csr` — lossless round-trip used by tests;
    * :attr:`footprint_bytes` — device bytes occupied by the format arrays;
    * :attr:`stored_elements` — value slots including zero padding;
    * :attr:`padding_ratio` — 1 - nnz / stored_elements.
    """

    shape: tuple[int, int]
    nnz: int

    @classmethod
    @abc.abstractmethod
    def from_csr(cls, A: sp.csr_matrix, **kwargs) -> "SparseFormat":
        """Build the format from a canonical CSR matrix."""

    @classmethod
    def from_matrix(cls, matrix: sp.spmatrix | np.ndarray, **kwargs) -> "SparseFormat":
        """Build the format from any SciPy sparse matrix or dense array."""
        return cls.from_csr(as_csr(matrix), **kwargs)

    @abc.abstractmethod
    def to_csr(self) -> sp.csr_matrix:
        """Reconstruct the logical matrix (used to verify losslessness)."""

    @property
    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Device memory occupied by the format's arrays."""

    @property
    @abc.abstractmethod
    def stored_elements(self) -> int:
        """Number of value slots stored, including zero padding."""

    @property
    def padding_ratio(self) -> float:
        return padding_ratio(self.stored_elements, self.nnz)

    @property
    def density(self) -> float:
        rows, cols = self.shape
        denom = rows * cols
        return self.nnz / denom if denom else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"padding={self.padding_ratio:.2%})"
        )
