"""Block Compressed Sparse Row (BCSR / BSR) format."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat


class BCSRFormat(SparseFormat):
    """BCSR: the matrix is tiled into ``block_shape`` dense blocks.

    Any tile containing at least one non-zero is stored as a full dense
    block (zero-padded).  This is the blockwise fixed format the paper's
    selection model compares CELL against, and the representation behind
    Triton's block-sparse kernels; on very sparse irregular matrices its
    padding ratio approaches 99% and the footprint blows up by >60x
    (Section 2.1).
    """

    def __init__(
        self,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        blocks: np.ndarray,
        nnz: int,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.blocks = np.ascontiguousarray(blocks, dtype=VALUE_DTYPE)
        if self.blocks.ndim != 3 or self.blocks.shape[1:] != self.block_shape:
            raise ValueError(
                f"blocks must be (nblocks, {self.block_shape[0]}, {self.block_shape[1]})"
            )
        self.nnz = int(nnz)

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, block_shape: tuple[int, int] = (8, 8), **kwargs) -> "BCSRFormat":
        bh, bw = block_shape
        if bh < 1 or bw < 1:
            raise ValueError(f"block_shape entries must be >= 1, got {block_shape}")
        I, K = A.shape
        # Pad logical dimensions to block multiples before conversion.
        pad_i = (-I) % bh
        pad_k = (-K) % bw
        if pad_i or pad_k:
            A = sp.csr_matrix(
                sp.vstack(
                    [
                        sp.hstack([A, sp.csr_matrix((I, pad_k), dtype=VALUE_DTYPE)]),
                        sp.csr_matrix((pad_i, K + pad_k), dtype=VALUE_DTYPE),
                    ]
                )
            )
        bsr = A.tobsr(blocksize=(bh, bw))
        return cls(
            shape=(I, K),
            block_shape=(bh, bw),
            indptr=bsr.indptr,
            indices=bsr.indices,
            blocks=bsr.data,
            nnz=int(A.nnz),
        )

    @property
    def num_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def num_block_rows(self) -> int:
        return int(self.indptr.size - 1)

    def to_csr(self) -> sp.csr_matrix:
        bh, bw = self.block_shape
        I, K = self.shape
        padded_rows = self.num_block_rows * bh
        padded_cols = (int(self.indices.max()) + 1) * bw if self.indices.size else K
        padded_cols = max(padded_cols, K)
        bsr = sp.bsr_matrix(
            (self.blocks, self.indices, self.indptr),
            shape=(padded_rows, padded_cols),
        )
        out = bsr.tocsr()[:I, :K].astype(VALUE_DTYPE)
        out.eliminate_zeros()
        return out

    @property
    def footprint_bytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.blocks.nbytes

    @property
    def stored_elements(self) -> int:
        bh, bw = self.block_shape
        return self.num_blocks * bh * bw
