"""Blocked Ellpack: ELL layout over dense tiles instead of scalars."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat

#: Block-column sentinel marking padding tiles.
PAD_BLOCK = INDEX_DTYPE(-1)


class BlockedELLFormat(SparseFormat):
    """Blocked-ELL [Choi et al.]: each block-row stores the same number of
    dense tiles (the maximum over the matrix), padded with zero tiles.

    Combines BCSR's tile regularity with ELL's fixed-width rows; suffers
    both forms of padding on irregular inputs.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
        block_cols: np.ndarray,
        blocks: np.ndarray,
        nnz: int,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        self.block_cols = np.ascontiguousarray(block_cols, dtype=INDEX_DTYPE)
        self.blocks = np.ascontiguousarray(blocks, dtype=VALUE_DTYPE)
        if self.block_cols.ndim != 2:
            raise ValueError("block_cols must be 2-D (block_rows, ell_width)")
        expected = (*self.block_cols.shape, *self.block_shape)
        if self.blocks.shape != expected:
            raise ValueError(f"blocks must have shape {expected}, got {self.blocks.shape}")
        self.nnz = int(nnz)

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, block_shape: tuple[int, int] = (16, 16), **kwargs) -> "BlockedELLFormat":
        bh, bw = block_shape
        I, K = A.shape
        pad_i = (-I) % bh
        pad_k = (-K) % bw
        if pad_i or pad_k:
            A = sp.csr_matrix(
                sp.vstack(
                    [
                        sp.hstack([A, sp.csr_matrix((I, pad_k), dtype=VALUE_DTYPE)]),
                        sp.csr_matrix((pad_i, K + pad_k), dtype=VALUE_DTYPE),
                    ]
                )
            )
        bsr = A.tobsr(blocksize=(bh, bw))
        n_block_rows = bsr.indptr.size - 1
        per_row = np.diff(bsr.indptr)
        width = int(per_row.max()) if per_row.size else 0
        width = max(width, 1) if n_block_rows else 0
        block_cols = np.full((n_block_rows, width), PAD_BLOCK, dtype=INDEX_DTYPE)
        blocks = np.zeros((n_block_rows, width, bh, bw), dtype=VALUE_DTYPE)
        for br in range(n_block_rows):
            lo, hi = bsr.indptr[br], bsr.indptr[br + 1]
            n = hi - lo
            block_cols[br, :n] = bsr.indices[lo:hi]
            blocks[br, :n] = bsr.data[lo:hi]
        return cls((I, K), (bh, bw), block_cols, blocks, int(A.nnz))

    def to_csr(self) -> sp.csr_matrix:
        bh, bw = self.block_shape
        I, K = self.shape
        rows, cols, vals = [], [], []
        n_block_rows, width = self.block_cols.shape
        for br in range(n_block_rows):
            for w in range(width):
                bc = self.block_cols[br, w]
                if bc == PAD_BLOCK:
                    continue
                tile = self.blocks[br, w]
                r, c = np.nonzero(tile)
                rows.append(br * bh + r)
                cols.append(bc * bw + c)
                vals.append(tile[r, c])
        if not rows:
            return sp.csr_matrix(self.shape, dtype=VALUE_DTYPE)
        out = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(max(I, n_block_rows * bh), max(K, (int(self.block_cols.max()) + 1) * bw)),
            dtype=VALUE_DTYPE,
        )
        return sp.csr_matrix(out[:I, :K])

    @property
    def footprint_bytes(self) -> int:
        return self.block_cols.nbytes + self.blocks.nbytes

    @property
    def stored_elements(self) -> int:
        bh, bw = self.block_shape
        real = int(np.count_nonzero(self.block_cols != PAD_BLOCK))
        return real * bh * bw
