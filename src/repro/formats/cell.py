"""Composable Ellpack (CELL): the paper's three-level blockwise format.

Level 1 — **partitions**: columns are divided into ``P`` equal partitions.
Level 2 — **buckets**: within a partition, rows are grouped by length;
bucket *i* has width ``2**i`` and holds rows with ``2**(i-1) < l <= 2**i``.
A per-partition *maximum bucket width* may cap the widest bucket; rows
longer than the cap are **folded** into multiple bucket rows that share the
same entry in the row-index array (Section 5.3, Figure 5).
Level 3 — **blocks**: every bucket groups rows so each block holds
``block_nnz = block_multiple * max_bucket_width`` stored elements — the GPU
thread-block work unit of Algorithm 2.

Folding rule: a row of length ``l > W`` (the partition's max width) becomes
``ceil(l / W)`` rows in the max-width bucket (the last chunk is padded).
Keeping all folded chunks in the max bucket — rather than scattering
remainders into smaller buckets — makes the bucket population below the max
width independent of the chosen cap, which is what lets both this builder
and the cost model of :mod:`repro.core.cost_model` evaluate candidate widths
incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    SparseFormat,
    ceil_pow2_exponent,
)
from repro.formats.ell import PAD


@dataclass
class Bucket:
    """One Ellpack sub-matrix: rows of similar length, padded to ``width``.

    ``row_ind`` holds the *original* matrix row of each bucket row; folded
    rows appear multiple times (Figure 4).  ``col`` stores global column
    indices with ``PAD`` (-1) marking zero padding.
    """

    width: int
    row_ind: np.ndarray  # (R,) int32
    col: np.ndarray  # (R, width) int32
    val: np.ndarray  # (R, width) float32
    has_folds: bool
    block_rows: int  # rows per block (level 3)

    def __post_init__(self) -> None:
        if self.width < 1 or (self.width & (self.width - 1)):
            raise ValueError(f"bucket width must be a power of two, got {self.width}")
        if self.col.shape != (self.row_ind.size, self.width):
            raise ValueError("col array shape must be (num_rows, width)")
        if self.val.shape != self.col.shape:
            raise ValueError("val array shape must match col")
        if self.block_rows < 1:
            raise ValueError("block_rows must be >= 1")

    @property
    def num_rows(self) -> int:
        """I^(1): bucket rows, folded rows counted once per chunk."""
        return int(self.row_ind.size)

    @cached_property
    def num_output_rows(self) -> int:
        """I^(2): distinct output rows of C this bucket contributes to."""
        return int(np.unique(self.row_ind).size)

    @cached_property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col != PAD))

    @property
    def stored_elements(self) -> int:
        return int(self.col.size)

    @cached_property
    def unique_cols(self) -> int:
        """|set(Ind[i, w])|: distinct B rows this bucket reads (Eq. 5-7)."""
        real = self.col[self.col != PAD]
        return int(np.unique(real).size)

    def wave_traffic(self, rows_per_wave: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-wave (unique, total) B-row references for this bucket.

        A wave groups ``rows_per_wave`` consecutive bucket rows — the rows
        whose blocks are co-resident on the device.
        """
        rows_per_wave = max(1, int(rows_per_wave))
        mask = self.col != PAD
        if not mask.any():
            z = np.zeros(0, dtype=np.int64)
            return z, z
        rows, _ = np.nonzero(mask)
        wave_of = rows.astype(np.int64) // rows_per_wave
        n_waves = -(-self.num_rows // rows_per_wave)
        refs = np.bincount(wave_of, minlength=n_waves).astype(np.int64)
        span = np.int64(self.col.max()) + 1
        keys = wave_of * span + self.col[mask].astype(np.int64)
        uniq = np.unique(keys)
        unique = np.bincount((uniq // span).astype(np.int64), minlength=n_waves)
        return unique.astype(np.int64), refs

    @cached_property
    def csr_slab(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(data, indices, indptr)`` of this bucket as a CSR slab.

        The stored entries of each bucket row, pads stripped, in stored
        order — exactly the arrays :class:`repro.kernels.cell_spmm.CELLSpMM`
        needs for its fused gather, cached so repeated executions of the
        same plan (the serving steady state) skip the mask/gather work.
        """
        mask = self.col != PAD
        lens = mask.sum(axis=1)
        indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        return self.val[mask], self.col[mask], indptr

    @property
    def num_blocks(self) -> int:
        if self.num_rows == 0:
            return 0
        return -(-self.num_rows // self.block_rows)

    @property
    def block_nnz(self) -> int:
        """Stored elements (incl. padding) processed per full block: 2^k."""
        return self.block_rows * self.width

    @property
    def footprint_bytes(self) -> int:
        return self.row_ind.nbytes + self.col.nbytes + self.val.nbytes


@dataclass
class Partition:
    """One column partition: a list of buckets ordered by increasing width."""

    index: int
    col_start: int
    col_end: int
    buckets: list[Bucket] = field(default_factory=list)

    @property
    def num_cols(self) -> int:
        return self.col_end - self.col_start

    @property
    def max_width(self) -> int:
        return max((b.width for b in self.buckets), default=0)

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.buckets)


def partition_bounds(num_cols: int, num_partitions: int) -> list[tuple[int, int]]:
    """Evenly split ``num_cols`` columns into ``num_partitions`` ranges."""
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions > max(num_cols, 1):
        raise ValueError(
            f"num_partitions ({num_partitions}) exceeds matrix columns ({num_cols})"
        )
    edges = np.linspace(0, num_cols, num_partitions + 1).astype(np.int64)
    return [(int(edges[p]), int(edges[p + 1])) for p in range(num_partitions)]


def partition_cells(
    A: sp.csr_matrix, bounds: list[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(row, partition) element counts and offsets, in one bulk pass.

    For canonical CSR (column-sorted rows), each row's elements fall into
    contiguous per-partition runs, so a single ``searchsorted`` over the
    partition edges plus one ``bincount`` replaces the per-partition
    ``csc[:, c0:c1].tocsr()`` slices the builder previously performed.

    Returns ``(counts, starts)``, both of shape ``(num_rows, P)``:
    ``counts[r, p]`` is the number of stored elements of row ``r`` inside
    partition ``p`` and ``starts[r, p]`` the offset of that run in
    ``A.indices`` / ``A.data``.  Callers gather partition ``p``'s data
    directly from the parent arrays — no per-partition copies exist.
    """
    P = len(bounds)
    I = A.shape[0]
    indptr = A.indptr.astype(np.int64)
    if P == 1:
        lens = np.diff(indptr)
        return lens[:, None], indptr[:-1][:, None]
    edges = np.asarray([c1 for _, c1 in bounds[:-1]], dtype=np.int64)
    part = np.searchsorted(edges, A.indices, side="right")
    row_of = np.repeat(np.arange(I, dtype=np.int64), np.diff(indptr))
    counts = np.bincount(row_of * P + part, minlength=I * P).reshape(I, P)
    starts = np.zeros((I, P), dtype=np.int64)
    np.cumsum(counts[:, :-1], axis=1, out=starts[:, 1:])
    starts += indptr[:-1, None]
    return counts, starts


def split_csr(
    A: sp.csr_matrix, num_partitions: int
) -> tuple[sp.csr_matrix, list[tuple[int, int]], np.ndarray, np.ndarray]:
    """Canonicalize (when required) and bulk-split ``A`` into partitions.

    Returns ``(A, bounds, counts, starts)`` — ``A`` possibly rewritten to
    canonical form (the bulk split relies on column-sorted rows; the CSC
    round trip reproduces exactly the ordering the old per-partition
    ``csc[:, c0:c1].tocsr()`` slices induced).  The tuple can be handed to
    both :func:`repro.core.cost_model.matrix_cost_profiles` and
    :meth:`CELLFormat.from_csr` via ``cells=`` so tune and build share one
    split instead of each recomputing it.
    """
    bounds = partition_bounds(A.shape[1], num_partitions)
    if num_partitions > 1 and not A.has_canonical_format:
        A = A.tocsc().tocsr()
    counts, starts = partition_cells(A, bounds)
    return A, bounds, counts, starts


def touched_partitions(
    old_counts: np.ndarray, new_counts: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Partitions whose buckets a row update may have changed.

    ``old_counts``/``new_counts`` are ``partition_cells`` count matrices of
    shape ``(num_rows, P)`` before and after the update, ``rows`` the
    updated row indices.  A partition is touched when any updated row
    stores (or stored) elements in it — conservative on purpose: a row
    rewritten with identical columns but new values keeps its counts, yet
    its values live in the partition's buckets, so the partition must
    rebuild.  Partitions where every updated row has no elements before or
    after are untouched: their buckets gather only from other rows' runs.
    """
    if old_counts.shape != new_counts.shape:
        raise ValueError(
            f"count shapes differ: {old_counts.shape} vs {new_counts.shape}"
        )
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    if rows.min() < 0 or rows.max() >= old_counts.shape[0]:
        raise ValueError("row index out of range")
    mask = (old_counts[rows] > 0) | (new_counts[rows] > 0)
    return np.nonzero(mask.any(axis=0))[0].astype(np.int64)


def _fold_chunks(
    lengths: np.ndarray, max_width: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split row lengths into bucket chunks under the folding rule.

    Returns per-chunk arrays ``(row, offset, length, exponent, folded)``
    where ``offset`` is the chunk's element offset inside its source row and
    ``exponent`` gives the destination bucket width ``2**exponent``.
    """
    rows = np.nonzero(lengths > 0)[0]
    l = lengths[rows].astype(np.int64)
    if rows.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z, z, z.astype(bool)
    natural_exp = ceil_pow2_exponent(l)
    if max_width is None:
        max_exp = int(natural_exp.max())
        max_width = 1 << max_exp
    else:
        if max_width < 1 or (max_width & (max_width - 1)):
            raise ValueError(f"max_width must be a power of two, got {max_width}")
        max_exp = int(np.log2(max_width))
    W = max_width
    n_chunks = np.where(l <= W, 1, -(-l // W))
    total = int(n_chunks.sum())
    chunk_row = np.repeat(rows, n_chunks)
    first = np.cumsum(n_chunks) - n_chunks
    pos = np.arange(total) - np.repeat(first, n_chunks)
    l_rep = np.repeat(l, n_chunks)
    # Chunks of a folded row all go to the max bucket; the last chunk holds
    # the remainder and is padded to W.
    chunk_len = np.minimum(l_rep - pos * W, W)
    chunk_off = pos * W
    exp_rep = np.repeat(np.minimum(natural_exp, max_exp), n_chunks)
    folded = np.repeat(n_chunks > 1, n_chunks)
    return chunk_row, chunk_off, chunk_len, exp_rep, folded


class CELLFormat(SparseFormat):
    """The Composable Ellpack format (Section 4).

    Parameters of ``from_csr``:

    num_partitions:
        Number of equal column partitions (level 1).
    max_widths:
        Per-partition cap on the maximum bucket width — ``None`` for the
        natural maximum, an ``int`` applied to every partition, or a
        sequence with one entry (or ``None``) per partition.  Unlike
        SparseTIR's ``hyb`` format, each partition may use a different set
        of bucket widths (the flexibility Section 4 highlights).
    block_multiple:
        ``2**k = block_multiple * max_bucket_width`` stored elements per
        block (level 3); must be a power of two.
    """

    def __init__(self, shape: tuple[int, int], partitions: list[Partition], nnz: int):
        self.shape = (int(shape[0]), int(shape[1]))
        self.partitions = partitions
        self.nnz = int(nnz)

    @classmethod
    def from_csr(
        cls,
        A: sp.csr_matrix,
        num_partitions: int = 1,
        max_widths: int | list[int | None] | None = None,
        block_multiple: int = 2,
        cells: tuple[sp.csr_matrix, list[tuple[int, int]], np.ndarray, np.ndarray]
        | None = None,
        **kwargs,
    ) -> "CELLFormat":
        if block_multiple < 1 or (block_multiple & (block_multiple - 1)):
            raise ValueError(f"block_multiple must be a power of two, got {block_multiple}")
        I, K = A.shape
        if max_widths is None or isinstance(max_widths, (int, np.integer)):
            width_caps: list[int | None] = [max_widths] * num_partitions  # type: ignore[list-item]
        else:
            width_caps = list(max_widths)
            if len(width_caps) != num_partitions:
                raise ValueError(
                    f"max_widths has {len(width_caps)} entries for "
                    f"{num_partitions} partitions"
                )
        if cells is None:
            cells = split_csr(A, num_partitions)
        A, bounds, counts, starts = cells
        if len(bounds) != num_partitions:
            raise ValueError(
                f"cells was split into {len(bounds)} partitions, "
                f"expected {num_partitions}"
            )
        partitions: list[Partition] = []
        for p, (c0, c1) in enumerate(bounds):
            buckets = cls._build_partition_buckets(
                counts[:, p],
                starts[:, p],
                A.indices,
                A.data,
                max_width=width_caps[p],
                block_multiple=block_multiple,
            )
            partitions.append(
                Partition(index=p, col_start=c0, col_end=c1, buckets=buckets)
            )
        return cls((I, K), partitions, int(A.nnz))

    @staticmethod
    def _build_partition_buckets(
        lengths: np.ndarray,
        starts: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        max_width: int | None,
        block_multiple: int,
    ) -> list[Bucket]:
        """Build one partition's buckets by gathering straight from the
        parent CSR arrays: ``lengths[r]`` elements of row ``r`` live at
        ``indices[starts[r]:starts[r] + lengths[r]]`` (already global
        column ids), so no per-partition matrix is ever materialized.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        chunk_row, chunk_off, chunk_len, chunk_exp, chunk_folded = _fold_chunks(
            lengths, max_width
        )
        if chunk_row.size == 0:
            return []
        max_exp = int(chunk_exp.max())
        partition_max_width = 1 << max_exp
        block_nnz = block_multiple * partition_max_width
        order = np.argsort(chunk_exp, kind="stable")
        chunk_row = chunk_row[order]
        chunk_off = chunk_off[order]
        chunk_len = chunk_len[order]
        chunk_exp = chunk_exp[order]
        chunk_folded = chunk_folded[order]
        buckets: list[Bucket] = []
        boundaries = np.searchsorted(chunk_exp, np.arange(max_exp + 2))
        starts = np.asarray(starts, dtype=np.int64)
        for e in range(max_exp + 1):
            lo, hi = boundaries[e], boundaries[e + 1]
            if lo == hi:
                continue
            width = 1 << e
            rows = chunk_row[lo:hi]
            offs = chunk_off[lo:hi]
            lens = chunk_len[lo:hi]
            R = rows.size
            col = np.full((R, width), PAD, dtype=INDEX_DTYPE)
            val = np.zeros((R, width), dtype=VALUE_DTYPE)
            total = int(lens.sum())
            if total:
                row_starts = starts[rows] + offs
                within = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
                src = np.repeat(row_starts, lens) + within
                dst = np.repeat(np.arange(R, dtype=np.int64), lens) * width + within
                col.ravel()[dst] = indices[src]
                val.ravel()[dst] = data[src]
            buckets.append(
                Bucket(
                    width=width,
                    row_ind=rows.astype(INDEX_DTYPE),
                    col=col,
                    val=val,
                    has_folds=bool(chunk_folded[lo:hi].any()),
                    block_rows=max(1, block_nnz // width),
                )
            )
        return buckets

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def iter_buckets(self):
        """Yield ``(partition, bucket)`` pairs across the whole format."""
        for part in self.partitions:
            for bucket in part.buckets:
                yield part, bucket

    def needs_atomic(self, bucket: Bucket) -> bool:
        """Whether Algorithm 2 must use atomicAdd for this bucket.

        Atomics are required when several partitions may write the same
        output row, or when the bucket contains folded rows handled by
        different threads (Section 5.3).
        """
        return self.num_partitions > 1 or bucket.has_folds

    @property
    def max_widths(self) -> list[int]:
        """The per-partition maximum bucket widths actually used."""
        return [p.max_width for p in self.partitions]

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    def to_csr(self) -> sp.csr_matrix:
        rows, cols, vals = [], [], []
        for _, bucket in self.iter_buckets():
            mask = bucket.col != PAD
            if not mask.any():
                continue
            r = np.broadcast_to(
                bucket.row_ind[:, None], bucket.col.shape
            )[mask]
            rows.append(r)
            cols.append(bucket.col[mask])
            vals.append(bucket.val[mask])
        if not rows:
            return sp.csr_matrix(self.shape, dtype=VALUE_DTYPE)
        return sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=self.shape,
            dtype=VALUE_DTYPE,
        )

    @property
    def footprint_bytes(self) -> int:
        return int(sum(b.footprint_bytes for _, b in self.iter_buckets()))

    @property
    def stored_elements(self) -> int:
        return int(sum(b.stored_elements for _, b in self.iter_buckets()))
