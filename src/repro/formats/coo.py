"""Coordinate (COO) format: explicit (row, col, value) triples."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat


class COOFormat(SparseFormat):
    """COO stores every non-zero with its full coordinates.

    Row indices repeat for entries in the same row (the redundancy CSR
    removes); kept here as the simplest element-wise baseline format.
    """

    def __init__(self, shape: tuple[int, int], row: np.ndarray, col: np.ndarray, val: np.ndarray):
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = np.ascontiguousarray(row, dtype=INDEX_DTYPE)
        self.col = np.ascontiguousarray(col, dtype=INDEX_DTYPE)
        self.val = np.ascontiguousarray(val, dtype=VALUE_DTYPE)
        if not (self.row.shape == self.col.shape == self.val.shape):
            raise ValueError("row/col/val must have identical shapes")
        self.nnz = int(self.val.size)

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, **kwargs) -> "COOFormat":
        coo = A.tocoo()
        return cls(A.shape, coo.row, coo.col, coo.data)

    def to_csr(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.val, (self.row, self.col)), shape=self.shape, dtype=VALUE_DTYPE
        )

    @property
    def footprint_bytes(self) -> int:
        return self.row.nbytes + self.col.nbytes + self.val.nbytes

    @property
    def stored_elements(self) -> int:
        return self.nnz
