"""Compressed Sparse Row (CSR) format."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat


class CSRFormat(SparseFormat):
    """CSR: row-pointer array + column indices + values (Algorithm 1).

    The fixed element-wise format used by cuSPARSE, Sputnik, dgSPARSE and
    TACO in the paper's evaluation.
    """

    def __init__(self, shape: tuple[int, int], indptr: np.ndarray, indices: np.ndarray, data: np.ndarray):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {self.indptr.size} != rows + 1 = {self.shape[0] + 1}"
            )
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have identical shapes")
        self.nnz = int(self.data.size)

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, **kwargs) -> "CSRFormat":
        return cls(A.shape, A.indptr, A.indices, A.data)

    def to_csr(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape, dtype=VALUE_DTYPE
        )

    @property
    def row_lengths(self) -> np.ndarray:
        """Number of stored elements per row."""
        return np.diff(self.indptr).astype(np.int64)

    @property
    def footprint_bytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    @property
    def stored_elements(self) -> int:
        return self.nnz
