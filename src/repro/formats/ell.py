"""Ellpack (ELL) format: fixed-width padded rows (Figure 1)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat

#: Column-index sentinel marking zero padding.
PAD = INDEX_DTYPE(-1)


def pack_rows_ell(
    A: sp.csr_matrix, width: int, rows: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Pack (a subset of) CSR rows into dense ``(R, width)`` ELL arrays.

    Non-zeros are packed to the left; remaining slots get column ``PAD`` and
    value 0.  Rows longer than ``width`` are rejected (callers that fold
    long rows must pre-split them).
    Returns ``(colInd, val)``.
    """
    if rows is None:
        rows = np.arange(A.shape[0])
    rows = np.asarray(rows)
    lengths = (A.indptr[rows + 1] - A.indptr[rows]).astype(np.int64)
    if lengths.size and lengths.max() > width:
        raise ValueError(
            f"row of length {int(lengths.max())} does not fit ELL width {width}"
        )
    R = rows.size
    col = np.full((R, width), PAD, dtype=INDEX_DTYPE)
    val = np.zeros((R, width), dtype=VALUE_DTYPE)
    if R == 0 or lengths.sum() == 0:
        return col, val
    # Flat destination offsets: element e of packed row r goes to r*width + e.
    starts = A.indptr[rows].astype(np.int64)
    # within-row positions 0..len-1 for each source element
    within = np.arange(int(lengths.sum())) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    src = np.repeat(starts, lengths) + within
    dst_row = np.repeat(np.arange(R), lengths)
    flat = dst_row * width + within
    col.ravel()[flat] = A.indices[src]
    val.ravel()[flat] = A.data[src]
    return col, val


class ELLFormat(SparseFormat):
    """Classic Ellpack: every row padded to the maximum row length.

    A single long row inflates the whole structure — the pathology that
    motivates slicing, bucketing and, ultimately, CELL.
    """

    def __init__(self, shape: tuple[int, int], col: np.ndarray, val: np.ndarray):
        self.shape = (int(shape[0]), int(shape[1]))
        self.col = np.ascontiguousarray(col, dtype=INDEX_DTYPE)
        self.val = np.ascontiguousarray(val, dtype=VALUE_DTYPE)
        if self.col.shape != self.val.shape or self.col.ndim != 2:
            raise ValueError("col and val must be identical 2-D arrays")
        if self.col.shape[0] != self.shape[0]:
            raise ValueError("ELL arrays must have one row per matrix row")
        self.nnz = int(np.count_nonzero(self.col != PAD))

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, **kwargs) -> "ELLFormat":
        lengths = np.diff(A.indptr)
        width = int(lengths.max()) if lengths.size else 0
        col, val = pack_rows_ell(A, max(width, 1) if A.shape[0] else 0)
        return cls(A.shape, col, val)

    @property
    def width(self) -> int:
        return int(self.col.shape[1])

    def to_csr(self) -> sp.csr_matrix:
        mask = self.col != PAD
        rows = np.nonzero(mask)[0].astype(INDEX_DTYPE)
        return sp.csr_matrix(
            (self.val[mask], (rows, self.col[mask])),
            shape=self.shape,
            dtype=VALUE_DTYPE,
        )

    @property
    def footprint_bytes(self) -> int:
        return self.col.nbytes + self.val.nbytes

    @property
    def stored_elements(self) -> int:
        return int(self.col.size)
