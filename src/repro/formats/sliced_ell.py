"""Sliced Ellpack (SELL): per-slice widths over fixed row slices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE, SparseFormat
from repro.formats.ell import PAD, pack_rows_ell


@dataclass
class Slice:
    """One contiguous group of rows padded to the slice-local max width."""

    row_start: int
    col: np.ndarray  # (rows_in_slice, width) int32, PAD marks padding
    val: np.ndarray  # (rows_in_slice, width) float32

    @property
    def width(self) -> int:
        return int(self.col.shape[1])

    @property
    def num_rows(self) -> int:
        return int(self.col.shape[0])


class SlicedELLFormat(SparseFormat):
    """SELL [Monakov et al.]: rows sliced in groups of ``slice_height``.

    Each slice is an independent ELL sub-matrix whose width is the max row
    length *within the slice*, bounding the padding a single long row causes
    to its own slice.  Precursor of the CELL bucket idea.
    """

    def __init__(self, shape: tuple[int, int], slices: list[Slice]):
        self.shape = (int(shape[0]), int(shape[1]))
        self.slices = slices
        self.nnz = int(sum(np.count_nonzero(s.col != PAD) for s in slices))

    @classmethod
    def from_csr(cls, A: sp.csr_matrix, slice_height: int = 32, **kwargs) -> "SlicedELLFormat":
        if slice_height < 1:
            raise ValueError(f"slice_height must be >= 1, got {slice_height}")
        I = A.shape[0]
        lengths = np.diff(A.indptr).astype(np.int64)
        slices: list[Slice] = []
        for start in range(0, I, slice_height):
            rows = np.arange(start, min(start + slice_height, I))
            width = int(lengths[rows].max()) if rows.size else 0
            col, val = pack_rows_ell(A, max(width, 1), rows=rows)
            slices.append(Slice(row_start=start, col=col, val=val))
        return cls(A.shape, slices)

    def to_csr(self) -> sp.csr_matrix:
        rows_list, cols_list, vals_list = [], [], []
        for s in self.slices:
            mask = s.col != PAD
            local_rows = np.nonzero(mask)[0]
            rows_list.append((local_rows + s.row_start).astype(INDEX_DTYPE))
            cols_list.append(s.col[mask])
            vals_list.append(s.val[mask])
        if not rows_list:
            return sp.csr_matrix(self.shape, dtype=VALUE_DTYPE)
        return sp.csr_matrix(
            (
                np.concatenate(vals_list),
                (np.concatenate(rows_list), np.concatenate(cols_list)),
            ),
            shape=self.shape,
            dtype=VALUE_DTYPE,
        )

    @property
    def footprint_bytes(self) -> int:
        return int(sum(s.col.nbytes + s.val.nbytes for s in self.slices))

    @property
    def stored_elements(self) -> int:
        return int(sum(s.col.size for s in self.slices))
