"""Analytical GPU performance-model simulator.

This package substitutes for the NVIDIA V100 testbed of the paper.  SpMM
kernels in :mod:`repro.kernels` compute their numeric result with vectorized
NumPy and emit a :class:`~repro.gpu.stats.KernelStats` describing the
*structural* work the corresponding CUDA kernel would perform: bytes moved
to/from global memory (split by coalesced / scattered / atomic traffic),
floating-point operations, and the per-thread-block work distribution.  The
:class:`~repro.gpu.timing.TimingModel` converts those statistics into a
deterministic execution-time estimate using a roofline-style model with an
SM-level thread-block scheduler for load imbalance.

The model is relative, not absolute: it preserves which format/schedule wins
and by roughly what factor (the quantities the paper's evaluation is about),
not wall-clock milliseconds on a specific part.
"""

from repro.gpu.device import (
    A100,
    V100,
    DeviceLostError,
    GPUSpec,
    SimulatedDevice,
    SimulatedOOMError,
)
from repro.gpu.executor import BlockScheduler, ScheduleResult
from repro.gpu.faults import FaultPolicy, FaultyDevice
from repro.gpu.memory import (
    CacheModel,
    atomic_store_bytes,
    coalesced_bytes,
    scattered_bytes,
)
from repro.gpu.stats import KernelStats, Measurement
from repro.gpu.timing import TimeBreakdown, TimingModel

__all__ = [
    "GPUSpec",
    "SimulatedDevice",
    "SimulatedOOMError",
    "DeviceLostError",
    "FaultPolicy",
    "FaultyDevice",
    "V100",
    "A100",
    "BlockScheduler",
    "ScheduleResult",
    "CacheModel",
    "coalesced_bytes",
    "scattered_bytes",
    "atomic_store_bytes",
    "KernelStats",
    "Measurement",
    "TimeBreakdown",
    "TimingModel",
]
