"""GPU device specifications and the simulated-device facade."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.gpu.stats import KernelStats, Measurement
from repro.gpu.timing import TimingModel
from repro.obs import get_registry, get_tracer

#: Bytes per 32-bit word (indices and float32 values).
WORD_BYTES = 4


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU used by the timing model.

    Defaults approximate an NVIDIA V100-SXM2-16GB, the part used by the
    paper's evaluation (Section 7).  All rates are peak rates; the timing
    model applies efficiency factors supplied by each kernel's statistics.
    """

    name: str = "V100-SXM2-16GB"
    #: Number of streaming multiprocessors.
    num_sms: int = 80
    #: Core clock in GHz.
    clock_ghz: float = 1.53
    #: Peak global-memory bandwidth in GB/s (HBM2).
    mem_bandwidth_gbs: float = 900.0
    #: Memory bandwidth a single SM can sustain in GB/s (latency-limited);
    #: charged to straggler thread blocks running after the device drains.
    sm_bandwidth_gbs: float = 25.0
    #: Peak single-precision throughput in GFLOP/s.
    fp32_gflops: float = 15_700.0
    #: L2 cache capacity in bytes.
    l2_bytes: int = 6 * 1024 * 1024
    #: Device memory capacity in bytes; exceeding it raises a simulated OOM.
    dram_bytes: int = 16 * 1024**3
    #: SIMT warp width.
    warp_size: int = 32
    #: Resident thread blocks per SM (occupancy-limited slots).
    blocks_per_sm: int = 8
    #: Fixed cost of one kernel launch in microseconds (includes the host
    #: library call overhead around the launch itself).
    kernel_launch_us: float = 6.0
    #: Memory-transaction sector size in bytes (uncoalesced accesses pull a
    #: full sector per element).
    sector_bytes: int = 32
    #: Extra traffic multiplier charged per atomically-written byte, modeling
    #: the read-modify-write transaction (Volta-class float atomics to
    #: distinct addresses resolve in L2 without lane serialization).
    atomic_penalty: float = 1.8

    @property
    def block_slots(self) -> int:
        """Total concurrently resident thread-block slots on the device."""
        return self.num_sms * self.blocks_per_sm

    def with_overrides(self, **kwargs: object) -> "GPUSpec":
        """Return a copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)


#: The default device of the paper's evaluation.
V100 = GPUSpec()

#: A newer-generation part for the cross-device transfer-learning study
#: (Section 8 notes LiteForm "requires model retraining for new
#: architectures"; ``repro.core.transfer`` implements the suggested fix).
A100 = GPUSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    clock_ghz=1.41,
    mem_bandwidth_gbs=1555.0,
    sm_bandwidth_gbs=40.0,
    fp32_gflops=19_500.0,
    l2_bytes=40 * 1024 * 1024,
    dram_bytes=40 * 1024**3,
    blocks_per_sm=8,
    kernel_launch_us=5.0,
    atomic_penalty=1.5,
)


class SimulatedOOMError(MemoryError):
    """Raised when a kernel's working set exceeds the device memory.

    Mirrors the ``OOM`` annotations of Figure 6 (Triton's BSR representation
    of the large graphs does not fit in 16 GB).

    ``required_bytes > capacity_bytes`` marks a *structural* OOM — the
    working set can never fit this device, so retrying the same plan is
    futile and the only recovery is a smaller-footprint format.  Fault
    injection (:mod:`repro.gpu.faults`) raises the same error with
    ``required_bytes <= capacity_bytes`` to model *transient* memory
    pressure (fragmentation, a neighbor's allocation) that a retry can
    clear; :class:`repro.serve.server.SpMMServer` keys its recovery on
    :attr:`is_structural`.
    """

    def __init__(self, required_bytes: int, capacity_bytes: int):
        self.required_bytes = int(required_bytes)
        self.capacity_bytes = int(capacity_bytes)
        super().__init__(
            f"simulated device OOM: kernel requires {required_bytes / 2**30:.2f} GiB, "
            f"device has {capacity_bytes / 2**30:.2f} GiB"
        )

    @property
    def is_structural(self) -> bool:
        """True when the working set can never fit on this device."""
        return self.required_bytes > self.capacity_bytes


class DeviceLostError(RuntimeError):
    """Raised when a simulated device has failed permanently.

    Models the CUDA ``cudaErrorDevicesUnavailable`` / Xid-error class of
    failures: every launch on the device fails until it is replaced.  The
    serving layer's circuit breaker (:mod:`repro.serve.resilience`) ejects
    the device from placement and probes it after a cooldown.
    """

    def __init__(self, device_name: str = "device"):
        self.device_name = device_name
        super().__init__(f"simulated device lost: {device_name}")


@dataclass
class SimulatedDevice:
    """Facade combining a :class:`GPUSpec` with a :class:`TimingModel`.

    Kernels hand their :class:`KernelStats` to :meth:`measure`; the device
    checks the memory footprint and returns a :class:`Measurement` with the
    estimated execution time and utilization figures.
    """

    spec: GPUSpec = field(default_factory=lambda: V100)
    timing: TimingModel = field(default_factory=TimingModel)

    def measure(self, stats: KernelStats) -> Measurement:
        """Estimate the execution of one kernel launch (or fused launches).

        When a tracer is installed (:func:`repro.obs.get_tracer`), each
        call emits a ``kernel_launch`` span carrying the derived
        :class:`~repro.gpu.profiler.KernelProfile` fields (bound type,
        achieved bandwidth fraction, block imbalance) as attributes.
        """
        if stats.footprint_bytes > self.spec.dram_bytes:
            raise SimulatedOOMError(stats.footprint_bytes, self.spec.dram_bytes)
        tracer = get_tracer()
        with tracer.span("kernel_launch", kernel=stats.label or "unlabeled") as span:
            breakdown = self.timing.estimate(stats, self.spec)
            total_s = breakdown.total_s
            flops = float(stats.flops)
            peak = self.spec.fp32_gflops * 1e9
            throughput = 0.0 if total_s <= 0.0 else min(1.0, flops / total_s / peak)
            measurement = Measurement(
                time_s=total_s,
                breakdown=breakdown,
                stats=stats,
                compute_throughput=throughput,
            )
            if tracer.enabled and total_s > 0:
                from repro.gpu.profiler import profile  # local: avoids cycle

                p = profile(measurement, self.spec)
                span.set(
                    sim_ms=measurement.time_ms,
                    num_launches=stats.num_launches,
                    bound=p.bound,
                    bandwidth_fraction=round(p.bandwidth_fraction, 4),
                    compute_fraction=round(p.compute_fraction, 4),
                    imbalance=round(p.imbalance, 3),
                    launch_fraction=round(p.launch_fraction, 4),
                )
                # Exemplar-bearing histogram: a slow launch's bucket
                # points back at the trace that produced it.
                get_registry().histogram(
                    "gpu_kernel_sim_ms",
                    "Simulated kernel time per traced launch (ms)",
                ).observe(measurement.time_ms, exemplar=span.trace_id)
        return measurement

    def measure_many(self, stats_list: list[KernelStats]) -> Measurement:
        """Measure a sequence of dependent kernel launches (summed time)."""
        if not stats_list:
            raise ValueError("measure_many requires at least one KernelStats")
        measurements = [self.measure(s) for s in stats_list]
        total = float(np.sum([m.time_s for m in measurements]))
        combined = KernelStats.merge(stats_list)
        breakdown = measurements[0].breakdown.scaled_to(total)
        flops = float(combined.flops)
        peak = self.spec.fp32_gflops * 1e9
        throughput = 0.0 if total <= 0.0 else min(1.0, flops / total / peak)
        return Measurement(
            time_s=total,
            breakdown=breakdown,
            stats=combined,
            compute_throughput=throughput,
        )
