"""SM-level thread-block scheduling for the load-imbalance tail."""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a kernel's thread blocks onto the device.

    ``makespan`` and ``mean_load`` are in the block-cost units handed in
    (flops).  ``excess = makespan - mean_load`` is the straggler tail that
    runs after the balanced phase drains; the timing model charges it at
    single-slot rates.
    """

    makespan: float
    mean_load: float
    num_waves: float

    @property
    def imbalance(self) -> float:
        if self.mean_load <= 0:
            return 1.0
        return max(1.0, self.makespan / self.mean_load)

    @property
    def excess(self) -> float:
        return max(0.0, self.makespan - self.mean_load)


class BlockScheduler:
    """Greedy list scheduler approximating the GPU block dispatcher.

    GPUs dispatch thread blocks to SM slots as slots free up — greedy list
    scheduling in *launch order*.  Kernels that sort their work units
    longest-first (``lpt=True``, e.g. Sputnik's row swizzle) approach the
    optimal makespan; kernels issuing blocks in natural matrix order can
    expose a large straggler late in the kernel.

    For very large block counts the exact simulation is replaced by tight
    analytic bounds, keeping planning O(n).
    """

    def __init__(self, exact_threshold: int = 8192):
        self.exact_threshold = int(exact_threshold)

    def schedule(
        self, block_costs: np.ndarray, slots: int, lpt: bool = False
    ) -> ScheduleResult:
        costs = np.asarray(block_costs, dtype=np.float64)
        costs = costs[costs > 0]
        slots = max(1, int(slots))
        if costs.size == 0:
            return ScheduleResult(makespan=0.0, mean_load=0.0, num_waves=0.0)
        total = float(costs.sum())
        mean_load = total / slots
        max_cost = float(costs.max())
        if costs.size <= slots:
            makespan = max_cost
        elif costs.size <= self.exact_threshold:
            order = np.sort(costs)[::-1] if lpt else costs
            makespan = self._greedy_makespan(order, slots)
        elif lpt:
            # LPT bound: balanced load plus at most one average-size block.
            makespan = max(mean_load + float(costs.mean()) * (1.0 - 1.0 / slots), max_cost)
        else:
            # Natural order: the largest block arrives at an effectively
            # arbitrary position; in expectation half of it is exposed
            # beyond the balanced drain.
            makespan = mean_load + 0.5 * max_cost
        return ScheduleResult(
            makespan=makespan,
            mean_load=mean_load,
            num_waves=costs.size / slots,
        )

    @staticmethod
    def _greedy_makespan(costs: np.ndarray, slots: int) -> float:
        """Exact greedy dispatch: each block goes to the earliest-free slot."""
        heap = [0.0] * slots
        heapq.heapify(heap)
        for c in costs:
            earliest = heapq.heappop(heap)
            heapq.heappush(heap, earliest + float(c))
        return max(heap)
