"""Fault injection for the simulated device pool.

Real GPU serving fleets see three broad failure classes: *transient*
allocation failures (memory pressure from co-tenants, fragmentation),
*permanent* device loss (Xid errors, falling off the bus), and *latency
spikes* (thermal throttling, ECC scrubbing, a noisy neighbor).
:class:`FaultyDevice` wraps the analytical simulator with a seeded RNG
policy injecting all three, so the serving layer's recovery machinery
(:mod:`repro.serve.resilience`) can be exercised deterministically — the
same :class:`FaultPolicy` seed always produces the same fault sequence.

Injected OOMs carry ``required_bytes <= capacity_bytes`` so callers can
tell them apart from *structural* OOMs (working set genuinely larger than
the device), which the unwrapped :class:`SimulatedDevice` raises with
``required_bytes > capacity_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import DeviceLostError, SimulatedDevice, SimulatedOOMError
from repro.gpu.stats import KernelStats, Measurement


@dataclass(frozen=True)
class FaultPolicy:
    """Per-launch fault probabilities drawn from one seeded RNG stream.

    Rates apply independently per kernel launch (one :meth:`measure`
    call).  ``death_rate`` is the probability that a launch kills the
    device permanently; once dead, every later launch raises
    :class:`DeviceLostError` regardless of the draws.
    """

    #: Probability a launch fails with a transient (retryable) OOM.
    transient_oom_rate: float = 0.0
    #: Probability a launch permanently kills the device.
    death_rate: float = 0.0
    #: Probability a launch's simulated time is multiplied by
    #: ``latency_spike_factor``.
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_oom_rate", "death_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_spike_factor < 1.0:
            raise ValueError(
                f"latency_spike_factor must be >= 1, got {self.latency_spike_factor}"
            )


@dataclass
class FaultyDevice(SimulatedDevice):
    """A :class:`SimulatedDevice` that injects faults per kernel launch.

    Drop-in for anywhere a ``SimulatedDevice`` is accepted (the server's
    device pool, kernels' ``run``/``measure``).  ``measure_many`` inherits
    the base implementation, so multi-launch sequences draw faults per
    launch.  Counters (:attr:`injected_ooms`, :attr:`injected_spikes`,
    :attr:`launches`) expose what was actually injected.
    """

    faults: FaultPolicy = field(default_factory=FaultPolicy)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.faults.seed)
        self._dead = False
        self.launches = 0
        self.injected_ooms = 0
        self.injected_spikes = 0

    @property
    def dead(self) -> bool:
        """True once a death draw has permanently killed the device."""
        return self._dead

    def revive(self) -> None:
        """Bring a dead device back (models a fleet swapping the part)."""
        self._dead = False

    def measure(self, stats: KernelStats) -> Measurement:
        if self._dead:
            raise DeviceLostError(self.spec.name)
        self.launches += 1
        p = self.faults
        draw = float(self._rng.random())
        if draw < p.death_rate:
            self._dead = True
            raise DeviceLostError(self.spec.name)
        if draw < p.death_rate + p.transient_oom_rate:
            self.injected_ooms += 1
            # required <= capacity: transient pressure, not a structural OOM
            # (a genuinely oversized working set is raised by the base class
            # below, before any spike is applied).
            raise SimulatedOOMError(
                min(int(stats.footprint_bytes), self.spec.dram_bytes),
                self.spec.dram_bytes,
            )
        measurement = super().measure(stats)
        if float(self._rng.random()) < p.latency_spike_rate:
            self.injected_spikes += 1
            f = p.latency_spike_factor
            measurement = Measurement(
                time_s=measurement.time_s * f,
                breakdown=measurement.breakdown.scaled_to(measurement.time_s * f),
                stats=measurement.stats,
                compute_throughput=measurement.compute_throughput / f,
            )
        return measurement
