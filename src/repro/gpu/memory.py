"""Memory-transaction and cache models for the simulated GPU.

These helpers translate *logical* access counts (how many words a kernel
touches) into *charged* global-memory bytes, accounting for coalescing,
sector granularity, and an L2-style reuse model for the dense operand ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Size of one 32-bit word in bytes.
WORD_BYTES = 4


def coalesced_bytes(num_words: float, word_bytes: int = WORD_BYTES) -> float:
    """Bytes for a fully coalesced access to ``num_words`` contiguous words."""
    return float(num_words) * word_bytes


def scattered_bytes(
    num_accesses: float,
    word_bytes: int = WORD_BYTES,
    sector_bytes: int = 32,
    locality: float = 0.0,
) -> float:
    """Bytes charged for scattered (gather) accesses.

    Each access to a random location pulls a full ``sector_bytes`` sector.
    ``locality`` in [0, 1] discounts the expansion for partially clustered
    accesses: 0 means fully random (worst case), 1 means the accesses are
    effectively contiguous.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    expansion = sector_bytes / word_bytes
    factor = expansion + (1.0 - expansion) * locality
    return float(num_accesses) * word_bytes * factor


def atomic_store_bytes(num_words: float, word_bytes: int = WORD_BYTES) -> float:
    """Bytes written atomically (the device applies the RMW penalty later)."""
    return float(num_words) * word_bytes


@dataclass(frozen=True)
class CacheModel:
    """L2-style reuse model for the dense matrix ``B`` in SpMM.

    Kernels partition their accesses to ``B`` into *waves*: the set of
    thread blocks co-resident on the device at one time.  Within a wave,
    the first reference to a ``B`` row is a compulsory fetch; further
    references hit on chip with a probability set by how much of the wave's
    working set fits in L2.  Cross-wave reuse is only credited when all of
    ``B`` fits in L2 (then the whole kernel pays ``B`` once).

    The per-wave unique-row counts mirror the ``|set(Ind[i, w])| * J`` term
    of the paper's cost model (Eq. 5-7): CELL's buckets make a wave's
    working set both smaller (similar-length rows) and column-bounded
    (partitioning), which is exactly how the format earns its locality.
    """

    l2_bytes: int = 6 * 1024 * 1024
    #: Residual miss rate for re-references whose working set fits in L2
    #: (conflicts, line granularity).
    min_miss: float = 0.08

    def b_traffic_bytes(
        self,
        unique_per_wave: np.ndarray,
        refs_per_wave: np.ndarray,
        J: int,
        num_b_rows: int,
        word_bytes: int = WORD_BYTES,
    ) -> float:
        """Charged bytes for all accesses to ``B``.

        Parameters
        ----------
        unique_per_wave:
            Distinct ``B`` rows referenced in each wave.
        refs_per_wave:
            Total logical row references in each wave (>= unique).
        J:
            Columns of ``B``.
        num_b_rows:
            Rows of ``B`` reachable by this kernel region (the full matrix,
            or one column partition's width for CELL).
        """
        unique = np.asarray(unique_per_wave, dtype=np.float64)
        refs = np.asarray(refs_per_wave, dtype=np.float64)
        if unique.shape != refs.shape:
            raise ValueError("unique_per_wave and refs_per_wave must align")
        if unique.size == 0:
            return 0.0
        row_bytes = float(J) * word_bytes
        total_refs = float(refs.sum())
        b_bytes = float(num_b_rows) * row_bytes
        if b_bytes <= self.l2_bytes:
            # Whole operand resident: pay it once, re-reference at the floor.
            compulsory = min(float(unique.sum()), float(num_b_rows))
            return (
                compulsory * row_bytes
                + max(0.0, total_refs - compulsory) * row_bytes * self.min_miss
            )
        working_set = unique * row_bytes
        with np.errstate(divide="ignore", invalid="ignore"):
            resident = np.minimum(1.0, self.l2_bytes / np.maximum(working_set, 1.0))
        miss = self.min_miss + (1.0 - self.min_miss) * (1.0 - resident)
        refetch = np.maximum(0.0, refs - unique)
        charged_rows = unique + refetch * miss
        return float(charged_rows.sum()) * row_bytes
