"""Discrete-event SIMT micro-simulator.

The analytical model of :mod:`repro.gpu.timing` prices kernels from
aggregate statistics.  This module provides an independent, finer-grained
check: a queueing-network simulation of the same kernels at thread-block
granularity, with

* per-block **instruction traces** (alternating memory transactions and
  compute phases) generated from the actual format arrays;
* a shared **memory subsystem** — fixed latency plus a bandwidth-limited
  pipe that serializes transactions (the DRAM bottleneck);
* an **SM dispatcher** with a bounded number of resident-block slots per
  SM, releasing queued blocks as slots free up.

It is intended for *validation* on small matrices (the event loop is pure
Python): ``tests/test_gpu_microsim.py`` and
``benchmarks/test_ext_model_validation.py`` check that the analytical
model and the discrete-event engine rank format configurations the same
way — the property the reproduction's conclusions rest on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.formats.cell import CELLFormat
from repro.formats.csr import CSRFormat
from repro.formats.ell import PAD
from repro.gpu.device import GPUSpec, V100


@dataclass(frozen=True)
class TraceOp:
    """One step of a block's execution.

    Kinds: ``mem`` (amount = bytes), ``compute`` (amount = MACs), and
    ``bload`` — a gather of dense-operand rows identified by ``rows``;
    the engine resolves it against its L2 model, charging ``amount`` bytes
    per *missing* row only.
    """

    kind: str  # "mem" | "compute" | "bload"
    amount: float  # bytes for mem, MACs for compute, bytes-per-row for bload
    rows: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("mem", "compute", "bload"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.amount < 0:
            raise ValueError("op amount must be non-negative")


#: A thread block's execution trace.
BlockTrace = list


@dataclass
class MicrosimResult:
    """Outcome of one discrete-event run."""

    cycles: float
    time_s: float
    blocks: int
    mem_busy_cycles: float
    #: Fraction of the makespan the memory pipe was busy (1.0 = saturated).
    memory_utilization: float


class MemorySubsystem:
    """Latency + bandwidth-serialized memory pipe."""

    def __init__(self, bytes_per_cycle: float, latency_cycles: float):
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency_cycles
        self.pipe_free = 0.0
        self.busy_cycles = 0.0

    def issue(self, now: float, num_bytes: float) -> float:
        """Issue a transaction at ``now``; returns its completion time."""
        start = max(now, self.pipe_free)
        service = num_bytes / self.bytes_per_cycle
        self.pipe_free = start + service
        self.busy_cycles += service
        return start + service + self.latency


class _L2Cache:
    """FIFO row cache for the dense operand (capacity in rows)."""

    def __init__(self, capacity_rows: int):
        self.capacity = max(1, int(capacity_rows))
        self._resident: dict = {}

    def access(self, rows) -> int:
        """Insert ``rows``; return how many were misses."""
        misses = 0
        for r in rows:
            if r in self._resident:
                continue
            misses += 1
            self._resident[r] = None
            if len(self._resident) > self.capacity:
                self._resident.pop(next(iter(self._resident)))
        return misses


class DiscreteEventGPU:
    """Event-driven execution of block traces on an SM array."""

    def __init__(self, spec: GPUSpec | None = None, compute_ipc: float = 64.0):
        self.spec = spec or V100
        #: MACs retired per SM per cycle (warp-wide FMA pipes).
        self.compute_ipc = compute_ipc

    def run(self, traces: list[BlockTrace]) -> MicrosimResult:
        spec = self.spec
        cycles_per_second = spec.clock_ghz * 1e9
        mem = MemorySubsystem(
            bytes_per_cycle=spec.mem_bandwidth_gbs * 1e9 / cycles_per_second,
            latency_cycles=400.0,
        )
        # L2 capacity in dense-operand rows; row size comes from the first
        # bload op encountered (uniform within one kernel).
        row_bytes = next(
            (op.amount for tr in traces for op in tr if op.kind == "bload"), 0.0
        )
        cache = _L2Cache(spec.l2_bytes / row_bytes) if row_bytes > 0 else None
        slots = spec.block_slots
        if not traces:
            return MicrosimResult(0.0, 0.0, 0, 0.0, 0.0)

        # Event queue holds (time, seq, block_id) "block ready for next op".
        pending = list(range(len(traces)))  # launch-order queue
        progress = [0] * len(traces)
        events: list[tuple[float, int, int]] = []
        seq = 0
        active = 0
        finished_at = 0.0

        def start_block(t: float) -> None:
            nonlocal seq, active
            if not pending:
                return
            b = pending.pop(0)
            active += 1
            heapq.heappush(events, (t, seq, b))
            seq += 1

        for _ in range(min(slots, len(traces))):
            start_block(0.0)

        while events:
            t, _, b = heapq.heappop(events)
            trace = traces[b]
            i = progress[b]
            if i >= len(trace):
                # block retired: free the slot
                active -= 1
                finished_at = max(finished_at, t)
                start_block(t)
                continue
            op = trace[i]
            progress[b] += 1
            if op.kind == "mem":
                done = mem.issue(t, op.amount)
            elif op.kind == "bload":
                misses = cache.access(op.rows) if cache is not None else len(op.rows)
                done = mem.issue(t, misses * op.amount) if misses else t
            else:
                done = t + op.amount / self.compute_ipc
            heapq.heappush(events, (done, seq, b))
            seq += 1

        makespan = finished_at
        return MicrosimResult(
            cycles=makespan,
            time_s=makespan / cycles_per_second,
            blocks=len(traces),
            mem_busy_cycles=mem.busy_cycles,
            memory_utilization=mem.busy_cycles / makespan if makespan > 0 else 0.0,
        )


# ----------------------------------------------------------------------
# Trace generation from formats
# ----------------------------------------------------------------------

def csr_rowsplit_traces(fmt: CSRFormat, J: int, rows_per_block: int = 4) -> list[BlockTrace]:
    """Traces of the cuSPARSE-style row-split kernel (Algorithm 1)."""
    if not isinstance(fmt, CSRFormat):
        raise TypeError("csr_rowsplit_traces requires CSRFormat")
    I = fmt.shape[0]
    lengths = np.diff(fmt.indptr).astype(np.int64)
    traces: list[BlockTrace] = []
    for start in range(0, I, rows_per_block):
        stop = min(start + rows_per_block, I)
        block_rows = lengths[start:stop]
        trace: BlockTrace = []
        # warps run concurrently: the block's critical path is its longest
        # row, but each row's index gather is its own (sector-rounded)
        # transaction — the pointer-chasing cost of short rows.
        longest = int(block_rows.max()) if block_rows.size else 0
        if longest:
            for l in block_rows:
                if l:
                    trace.append(TraceOp("mem", float(-(-int(l) * 8 // 32) * 32)))
            cols = fmt.indices[fmt.indptr[start] : fmt.indptr[stop]]
            trace.append(TraceOp("bload", float(J) * 4, rows=tuple(np.unique(cols))))
            trace.append(TraceOp("compute", float(longest) * J * 2))
        trace.append(TraceOp("mem", float(stop - start) * J * 4))  # C
        traces.append(trace)
    return traces


def cell_traces(fmt: CELLFormat, J: int) -> list[BlockTrace]:
    """Traces of the CELL kernel (Algorithm 2), one per 2^k-element block."""
    if not isinstance(fmt, CELLFormat):
        raise TypeError("cell_traces requires CELLFormat")
    traces: list[BlockTrace] = []
    for _, bucket in fmt.iter_buckets():
        R, W = bucket.num_rows, bucket.width
        for b0 in range(0, R, bucket.block_rows):
            rows = slice(b0, min(b0 + bucket.block_rows, R))
            n_rows = rows.stop - rows.start
            stored = n_rows * W
            block_cols = bucket.col[rows]
            uniq = np.unique(block_cols[block_cols != PAD])
            trace: BlockTrace = [
                TraceOp("mem", float(n_rows) * 4),  # rowInd
                TraceOp("mem", float(stored) * 8),  # colInd + val (padded,
                # fully coalesced: exact bytes, no sector rounding)
                TraceOp("bload", float(J) * 4, rows=tuple(uniq)),
                TraceOp("compute", float(stored) * J * 2),
                TraceOp("mem", float(n_rows) * J * 4),  # C (atomic or not)
            ]
            traces.append(trace)
    return traces


def simulate_csr(fmt: CSRFormat, J: int, spec: GPUSpec | None = None) -> MicrosimResult:
    """Convenience: discrete-event run of the row-split CSR kernel."""
    return DiscreteEventGPU(spec).run(csr_rowsplit_traces(fmt, J))


def simulate_cell(fmt: CELLFormat, J: int, spec: GPUSpec | None = None) -> MicrosimResult:
    """Convenience: discrete-event run of the CELL kernel."""
    return DiscreteEventGPU(spec).run(cell_traces(fmt, J))
