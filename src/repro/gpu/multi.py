"""Multi-GPU SpMM — the extension sketched in the paper's Section 10.

The conclusion names "multiple GPUs" as future work; this module implements
the standard 1-D row decomposition on the simulated devices:

* the sparse matrix's rows are split into one contiguous shard per GPU
  (balanced by non-zeros, not rows — shards get equal work);
* the dense operand ``B`` is broadcast once over the interconnect;
* each GPU runs the (independently composed) kernel on its shard;
* the row-partitioned result needs no reduction — only a gather of ``C``.

``time = broadcast + max_i(shard kernel time) + gather``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.formats.base import as_csr
from repro.gpu.device import GPUSpec, SimulatedDevice, V100


@dataclass(frozen=True)
class MultiGPUSpec:
    """A homogeneous multi-GPU node."""

    num_gpus: int = 4
    gpu: GPUSpec = field(default_factory=lambda: V100)
    #: Per-link interconnect bandwidth in GB/s (NVLink-class default).
    interconnect_gbs: float = 150.0
    #: Fixed per-collective latency in microseconds.
    collective_latency_us: float = 10.0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.interconnect_gbs <= 0:
            raise ValueError("interconnect_gbs must be positive")


@dataclass
class MultiGPUResult:
    """Timing decomposition of one multi-GPU SpMM."""

    total_s: float
    broadcast_s: float
    compute_s: float
    gather_s: float
    shard_times_s: list[float]
    shard_rows: list[tuple[int, int]]

    @property
    def balance(self) -> float:
        """max shard time / mean shard time (1.0 = perfect)."""
        mean = float(np.mean(self.shard_times_s))
        return max(self.shard_times_s) / mean if mean > 0 else 1.0


def partition_rows_by_nnz(A: sp.csr_matrix, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous row ranges with (approximately) equal non-zero counts.

    ``num_shards`` is clamped to the row count (a shard needs at least
    one row to be meaningful), so asking for more shards than rows
    returns one range per row.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    I = A.shape[0]
    num_shards = min(num_shards, max(1, I))
    if A.nnz == 0:
        # All nnz targets coincide at 0, which would collapse every
        # searchsorted cut onto row 0 (first shard gets all rows, the
        # rest nothing).  With no work to balance, balance rows instead.
        edges = np.linspace(0, I, num_shards + 1).astype(int)
        return [(int(edges[i]), int(edges[i + 1])) for i in range(num_shards)]
    targets = np.linspace(0, A.nnz, num_shards + 1)
    cuts = np.searchsorted(A.indptr, targets[1:-1], side="left")
    edges = [0, *[int(c) for c in cuts], I]
    # enforce monotone non-empty-ish ranges
    for i in range(1, len(edges)):
        edges[i] = max(edges[i], edges[i - 1])
    edges[-1] = I
    return [(edges[i], edges[i + 1]) for i in range(num_shards)]


class MultiGPUSimulator:
    """Row-decomposed SpMM across several simulated GPUs.

    ``compose_fn(shard_matrix, J) -> (fmt, kernel)`` decides how each GPU
    represents its shard — pass LiteForm's composition for the full
    pipeline, or a fixed-format builder for baselines.
    """

    def __init__(
        self,
        spec: MultiGPUSpec | None = None,
        devices: list[SimulatedDevice] | None = None,
    ):
        self.spec = spec or MultiGPUSpec()
        if devices is None:
            devices = [
                SimulatedDevice(spec=self.spec.gpu)
                for _ in range(self.spec.num_gpus)
            ]
        elif len(devices) != self.spec.num_gpus:
            raise ValueError(
                f"got {len(devices)} devices for a {self.spec.num_gpus}-GPU spec"
            )
        #: One simulated device per GPU — shard ``i`` always measures on
        #: ``devices[i]``, so per-device state (launch counters, injected
        #: faults) attributes to the GPU that actually ran the shard.
        self.devices = devices

    def measure(self, A: sp.spmatrix, J: int, compose_fn) -> MultiGPUResult:
        A = as_csr(A)
        if J < 1:
            raise ValueError(f"J must be >= 1, got {J}")
        shards = partition_rows_by_nnz(A, self.spec.num_gpus)
        shard_times: list[float] = []
        for (r0, r1), device in zip(shards, self.devices):
            sub = A[r0:r1]
            if sub.nnz == 0:
                shard_times.append(0.0)
                continue
            fmt, kernel = compose_fn(sub, J)
            shard_times.append(kernel.measure(fmt, J, device).time_s)

        link = self.spec.interconnect_gbs * 1e9
        lat = self.spec.collective_latency_us * 1e-6
        if self.spec.num_gpus == 1:
            broadcast_s = gather_s = 0.0
        else:
            b_bytes = float(A.shape[1]) * J * 4
            # ring broadcast: each GPU receives B once
            broadcast_s = lat + b_bytes / link
            # gather: every GPU ships its C shard to the host/root
            c_bytes = float(A.shape[0]) * J * 4
            gather_s = lat + c_bytes / link
        compute_s = max(shard_times) if shard_times else 0.0
        return MultiGPUResult(
            total_s=broadcast_s + compute_s + gather_s,
            broadcast_s=broadcast_s,
            compute_s=compute_s,
            gather_s=gather_s,
            shard_times_s=shard_times,
            shard_rows=shards,
        )


def liteform_compose_fn(liteform, force_cell: bool | None = True):
    """Adapter: LiteForm composition as a :class:`MultiGPUSimulator` hook."""

    def compose(sub: sp.csr_matrix, J: int):
        plan = liteform.compose(sub, J, force_cell=force_cell)
        return plan.fmt, plan.kernel

    return compose
