"""Human-readable kernel profiles — a miniature Nsight for the simulator.

Given a :class:`~repro.gpu.stats.Measurement`, classifies the kernel
(memory- vs compute-bound), reports achieved bandwidth/throughput against
the device's peaks, and renders the per-component time breakdown used by
the Figure 11 fidelity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GPUSpec, V100
from repro.gpu.stats import Measurement


@dataclass(frozen=True)
class KernelProfile:
    """Derived profile quantities for one simulated kernel."""

    bound: str  # "memory" | "compute" | "launch"
    arithmetic_intensity: float  # flops per byte of global traffic
    achieved_bandwidth_gbs: float
    achieved_gflops: float
    bandwidth_fraction: float
    compute_fraction: float
    imbalance: float
    launch_fraction: float

    def render(self) -> str:
        return "\n".join(
            [
                f"bound:                {self.bound}",
                f"arithmetic intensity: {self.arithmetic_intensity:.3f} flop/B",
                f"achieved bandwidth:   {self.achieved_bandwidth_gbs:.1f} GB/s "
                f"({self.bandwidth_fraction:.1%} of peak)",
                f"achieved compute:     {self.achieved_gflops:.1f} GFLOP/s "
                f"({self.compute_fraction:.1%} of peak)",
                f"block imbalance:      {self.imbalance:.2f}x",
                f"launch overhead:      {self.launch_fraction:.1%} of total time",
            ]
        )


def profile(measurement: Measurement, spec: GPUSpec | None = None) -> KernelProfile:
    """Derive a :class:`KernelProfile` from a measurement."""
    spec = spec or V100
    stats = measurement.stats
    bd = measurement.breakdown
    total = measurement.time_s
    if total <= 0:
        raise ValueError("measurement has non-positive time")
    bytes_moved = stats.total_load_bytes + stats.total_store_bytes
    intensity = stats.flops / bytes_moved if bytes_moved > 0 else float("inf")
    bw = bytes_moved / total / 1e9
    gflops = stats.flops / total / 1e9
    launch_frac = min(1.0, bd.launch_s / total)
    if launch_frac > 0.5:
        bound = "launch"
    elif bd.memory_s >= bd.compute_s:
        bound = "memory"
    else:
        bound = "compute"
    return KernelProfile(
        bound=bound,
        arithmetic_intensity=intensity,
        achieved_bandwidth_gbs=bw,
        achieved_gflops=gflops,
        bandwidth_fraction=bw / spec.mem_bandwidth_gbs,
        compute_fraction=gflops / spec.fp32_gflops,
        imbalance=bd.imbalance,
        launch_fraction=launch_frac,
    )
