"""Structural kernel statistics and measurement records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpu.timing import TimeBreakdown


@dataclass
class KernelStats:
    """Structural description of the work one GPU kernel launch performs.

    Every field is a *count* derived from the sparse format and the operand
    shapes, never from wall-clock timing, so measurements are deterministic.

    Attributes
    ----------
    coalesced_load_bytes:
        Global-memory bytes read through fully coalesced transactions
        (e.g. contiguous value/index arrays, dense-matrix row segments).
    scattered_load_bytes:
        Bytes read through scattered (gather) accesses *after* sector
        expansion, e.g. random rows of ``B`` indexed by column ids.
    coalesced_store_bytes:
        Bytes written with plain coalesced stores.
    atomic_store_bytes:
        Bytes written with atomic read-modify-write operations; the device
        charges :attr:`repro.gpu.device.GPUSpec.atomic_penalty` per byte.
    flops:
        Floating-point operations (one fused multiply-add counts as 2).
    block_costs:
        Per-thread-block work estimate in arbitrary but consistent units
        (typically "non-zeros processed, padding included").  Drives the
        load-imbalance factor.
    threads_per_block:
        Threads per block; used for a warp-granularity utilization factor.
    lane_utilization:
        Fraction of SIMT lanes doing useful work (1.0 = no divergence).
    num_launches:
        Number of kernel launches this statistic represents (each pays the
        fixed launch overhead); composable formats may emit one launch per
        bucket unless horizontally fused.
    footprint_bytes:
        Device-resident bytes of the operands (format arrays + B + C); used
        for the simulated-OOM check.
    """

    coalesced_load_bytes: float = 0.0
    scattered_load_bytes: float = 0.0
    coalesced_store_bytes: float = 0.0
    atomic_store_bytes: float = 0.0
    flops: float = 0.0
    block_costs: np.ndarray = field(default_factory=lambda: np.zeros(0))
    threads_per_block: int = 128
    lane_utilization: float = 1.0
    num_launches: int = 1
    footprint_bytes: float = 0.0
    label: str = ""
    #: Kernel-specific multiplier on achievable FP32 throughput (dense-tile
    #: kernels using tensor cores exceed the generic scalar efficiency).
    compute_efficiency: float = 1.0
    #: Kernel-specific multiplier on achieved DRAM bandwidth: regular
    #: streaming kernels (ELL-family) sustain a higher fraction of peak than
    #: latency-bound gather kernels (generic CSR, TACO codegen).
    bandwidth_efficiency: float = 1.0
    #: Whether the kernel's blocks are dispatched longest-first (sorted
    #: workloads, e.g. Sputnik's row swizzle) rather than in natural order.
    lpt_dispatch: bool = False

    def __post_init__(self) -> None:
        self.block_costs = np.asarray(self.block_costs, dtype=np.float64)
        if self.lane_utilization <= 0.0 or self.lane_utilization > 1.0:
            raise ValueError(
                f"lane_utilization must be in (0, 1], got {self.lane_utilization}"
            )

    @property
    def total_load_bytes(self) -> float:
        return self.coalesced_load_bytes + self.scattered_load_bytes

    @property
    def total_store_bytes(self) -> float:
        return self.coalesced_store_bytes + self.atomic_store_bytes

    @property
    def num_blocks(self) -> int:
        return int(self.block_costs.size)

    def effective_memory_bytes(self, atomic_penalty: float) -> float:
        """Total charged memory traffic including the atomic penalty."""
        return (
            self.total_load_bytes
            + self.coalesced_store_bytes
            + self.atomic_store_bytes * atomic_penalty
        )

    @staticmethod
    def merge(stats: Sequence["KernelStats"] | Iterable["KernelStats"]) -> "KernelStats":
        """Aggregate several launches into one record (sums counters)."""
        stats = list(stats)
        if not stats:
            raise ValueError("cannot merge an empty sequence of KernelStats")
        costs = (
            np.concatenate([s.block_costs for s in stats])
            if any(s.block_costs.size for s in stats)
            else np.zeros(0)
        )
        total_work = sum(float(np.sum(s.block_costs)) or s.flops for s in stats)
        if total_work > 0:
            lane = (
                sum(
                    s.lane_utilization * (float(np.sum(s.block_costs)) or s.flops)
                    for s in stats
                )
                / total_work
            )
        else:
            lane = 1.0
        if total_work > 0:
            ceff = (
                sum(
                    s.compute_efficiency * (float(np.sum(s.block_costs)) or s.flops)
                    for s in stats
                )
                / total_work
            )
        else:
            ceff = 1.0
        total_bytes = sum(
            s.total_load_bytes + s.total_store_bytes for s in stats
        )
        if total_bytes > 0:
            beff = (
                sum(
                    s.bandwidth_efficiency
                    * (s.total_load_bytes + s.total_store_bytes)
                    for s in stats
                )
                / total_bytes
            )
        else:
            beff = 1.0
        return KernelStats(
            bandwidth_efficiency=float(beff),
            coalesced_load_bytes=sum(s.coalesced_load_bytes for s in stats),
            scattered_load_bytes=sum(s.scattered_load_bytes for s in stats),
            coalesced_store_bytes=sum(s.coalesced_store_bytes for s in stats),
            atomic_store_bytes=sum(s.atomic_store_bytes for s in stats),
            flops=sum(s.flops for s in stats),
            block_costs=costs,
            threads_per_block=stats[0].threads_per_block,
            lane_utilization=float(min(1.0, max(lane, 1e-9))),
            num_launches=sum(s.num_launches for s in stats),
            footprint_bytes=max(s.footprint_bytes for s in stats),
            label="+".join(s.label for s in stats if s.label),
            compute_efficiency=float(ceff),
            lpt_dispatch=all(s.lpt_dispatch for s in stats),
        )


@dataclass
class Measurement:
    """Result of simulating one kernel (or fused kernel group).

    ``compute_throughput`` is the fraction of peak FP32 throughput achieved,
    mirroring the "GPU compute throughput (%)" metric of Figure 11.
    """

    time_s: float
    breakdown: "TimeBreakdown"
    stats: KernelStats
    compute_throughput: float

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6
