"""Roofline-style timing model combining memory, compute, and scheduling."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.gpu.executor import BlockScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import GPUSpec
    from repro.gpu.stats import KernelStats


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-component decomposition of one simulated kernel time."""

    memory_s: float
    compute_s: float
    launch_s: float
    imbalance: float
    total_s: float

    def scaled_to(self, new_total: float) -> "TimeBreakdown":
        """Rescale all components proportionally to a new total time."""
        if self.total_s <= 0:
            return replace(self, total_s=new_total)
        r = new_total / self.total_s
        return TimeBreakdown(
            memory_s=self.memory_s * r,
            compute_s=self.compute_s * r,
            launch_s=self.launch_s * r,
            imbalance=self.imbalance,
            total_s=new_total,
        )


class TimingModel:
    """Convert :class:`KernelStats` into a deterministic time estimate.

    ``time = max(memory_time, compute_makespan_time) + launch_overhead``

    * *memory_time* charges all global traffic (atomics amplified by the
      device's RMW penalty) against peak bandwidth scaled by a fixed
      achievable-bandwidth efficiency — global memory is a device-wide
      shared resource, so it is insensitive to block placement;
    * *compute_makespan_time* schedules the per-block flop counts
      (``KernelStats.block_costs``, padding and per-row overheads included)
      onto the device's resident-block slots with a greedy dispatcher and
      divides the resulting makespan by one slot's throughput.  Load
      imbalance therefore extends the kernel exactly when a straggler block
      outlasts the streaming of memory — the physical mechanism behind the
      skewed-row pathology of row-split CSR kernels.
    """

    def __init__(
        self,
        bandwidth_efficiency: float = 0.75,
        compute_efficiency: float = 0.60,
        scheduler: BlockScheduler | None = None,
    ):
        if not 0 < bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if not 0 < compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        self.bandwidth_efficiency = bandwidth_efficiency
        self.compute_efficiency = compute_efficiency
        self.scheduler = scheduler or BlockScheduler()

    def estimate(self, stats: "KernelStats", spec: "GPUSpec") -> TimeBreakdown:
        mem_bytes = stats.effective_memory_bytes(spec.atomic_penalty)
        bw = (
            spec.mem_bandwidth_gbs
            * 1e9
            * self.bandwidth_efficiency
            * stats.bandwidth_efficiency
        )
        memory_s = mem_bytes / bw

        effective = (
            spec.fp32_gflops
            * 1e9
            * self.compute_efficiency
            * stats.lane_utilization
            * stats.compute_efficiency
        )
        launch_s = stats.num_launches * spec.kernel_launch_us * 1e-6

        if not stats.block_costs.size:
            compute_s = stats.flops / effective
            body = max(memory_s, compute_s)
            return TimeBreakdown(
                memory_s=memory_s,
                compute_s=compute_s,
                launch_s=launch_s,
                imbalance=1.0,
                total_s=body + launch_s,
            )

        schedule = self.scheduler.schedule(
            stats.block_costs, spec.block_slots, lpt=stats.lpt_dispatch
        )
        total_cost = float(stats.block_costs.sum())
        compute_s = total_cost / effective
        # Balanced phase: full-device roofline over the evenly distributed work.
        balanced_s = max(memory_s, compute_s)
        # Straggler tail: the excess of the worst slot runs after the device
        # drains, at single-slot rates for both compute and memory.
        excess = schedule.excess
        if excess > 0 and total_cost > 0:
            slot_rate = effective / spec.block_slots
            # The straggler's bytes scale with its real arithmetic, not with
            # per-row overhead terms folded into block costs.
            bytes_per_flop = mem_bytes / stats.flops if stats.flops > 0 else 0.0
            tail_mem = excess * bytes_per_flop / (spec.sm_bandwidth_gbs * 1e9)
            tail_s = max(excess / slot_rate, tail_mem)
        else:
            tail_s = 0.0
        return TimeBreakdown(
            memory_s=memory_s,
            compute_s=compute_s,
            launch_s=launch_s,
            imbalance=schedule.imbalance,
            total_s=balanced_s + tail_s + launch_s,
        )
