"""Simulated-GPU SpMM kernels.

Each kernel pairs a numeric execution path (vectorized NumPy/SciPy consuming
the format's arrays) with a structural statistics path
(:class:`repro.gpu.stats.KernelStats`) from which the simulated device
derives the execution time.  One kernel class per scheduling strategy of the
systems compared in Section 7.
"""

from repro.kernels.base import SpMMKernel, spmm_reference
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import DgSparseSpMM, RowSplitCSRSpMM, SputnikSpMM
from repro.kernels.ell_spmm import ELLSpMM, SlicedELLSpMM
from repro.kernels.taco_spmm import TacoSchedule, TacoSpMM

__all__ = [
    "SpMMKernel",
    "spmm_reference",
    "RowSplitCSRSpMM",
    "SputnikSpMM",
    "DgSparseSpMM",
    "TacoSpMM",
    "TacoSchedule",
    "BCSRSpMM",
    "ELLSpMM",
    "SlicedELLSpMM",
    "CELLSpMM",
]
