"""Kernel abstraction and shared statistics helpers."""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.formats.base import SparseFormat, VALUE_DTYPE
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import KernelStats, Measurement

#: Bytes per 32-bit word.
WORD = 4


def spmm_reference(A: sp.csr_matrix, B: np.ndarray) -> np.ndarray:
    """Ground-truth C = A @ B used to verify every kernel's result."""
    B = np.asarray(B, dtype=VALUE_DTYPE)
    return np.asarray(A @ B, dtype=VALUE_DTYPE)


def check_dense_operand(B: np.ndarray, K: int) -> np.ndarray:
    """Validate and canonicalize the dense operand of SpMM."""
    B = np.ascontiguousarray(B, dtype=VALUE_DTYPE)
    if B.ndim != 2:
        raise ValueError(f"B must be 2-D, got shape {B.shape}")
    if B.shape[0] != K:
        raise ValueError(f"B has {B.shape[0]} rows, expected {K}")
    return B


#: Default number of co-resident thread blocks assumed by kernels when
#: forming L2 reuse waves (the V100's 80 SMs x 8 resident blocks).
DEFAULT_WAVE_BLOCKS = 640


def wave_unique_refs(
    indptr: np.ndarray, indices: np.ndarray, rows_per_wave: int, num_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct and total column references per wave of CSR rows.

    A *wave* is a group of ``rows_per_wave`` consecutive rows whose thread
    blocks are co-resident on the device.  Exact and vectorized:
    O(nnz log nnz).  Waves whose rows share neighbors fetch fewer rows of
    ``B`` — the locality signal the cache model consumes.
    """
    n_rows = indptr.size - 1
    if n_rows == 0 or indices.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z
    rows_per_wave = max(1, int(rows_per_wave))
    lengths = np.diff(indptr).astype(np.int64)
    row_of = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    wave_of = row_of // rows_per_wave
    n_waves = -(-n_rows // rows_per_wave)
    refs = np.bincount(wave_of, minlength=n_waves).astype(np.int64)
    keys = wave_of * np.int64(num_cols) + indices.astype(np.int64)
    uniq = np.unique(keys)
    unique = np.bincount(
        (uniq // np.int64(num_cols)).astype(np.int64), minlength=n_waves
    ).astype(np.int64)
    return unique, refs


def operand_footprint(format_bytes: float, K: int, I: int, J: int) -> float:
    """Device-resident bytes: format arrays + dense B + dense C."""
    return float(format_bytes) + (K + I) * J * WORD


class SpMMKernel(abc.ABC):
    """A GPU SpMM kernel: numeric execution + structural cost statistics.

    Subclasses implement :meth:`plan` (emit :class:`KernelStats` for a given
    format and dense width ``J``) and :meth:`execute` (compute ``C``
    numerically from the format's own arrays).  :meth:`run` combines both on
    a :class:`SimulatedDevice`.
    """

    #: Human-readable kernel name (system whose strategy it reproduces).
    name: str = "abstract"

    @abc.abstractmethod
    def plan(self, fmt: SparseFormat, J: int) -> KernelStats:
        """Derive the structural work statistics for ``C = A @ B``."""

    @abc.abstractmethod
    def execute(self, fmt: SparseFormat, B: np.ndarray) -> np.ndarray:
        """Compute the numeric result from the format's arrays."""

    def run(
        self, fmt: SparseFormat, B: np.ndarray, device: SimulatedDevice
    ) -> tuple[np.ndarray, Measurement]:
        """Execute numerically and measure on the simulated device."""
        stats = self.plan(fmt, int(B.shape[1]))
        measurement = device.measure(stats)
        C = self.execute(fmt, B)
        return C, measurement

    def measure(self, fmt: SparseFormat, J: int, device: SimulatedDevice) -> Measurement:
        """Timing-only path (no numeric execution) for tuners and sweeps."""
        return device.measure(self.plan(fmt, int(J)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
