"""Dense-tile SpMM over BCSR — the Triton block-sparse strategy."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.bcsr import BCSRFormat
from repro.gpu.memory import CacheModel, coalesced_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    check_dense_operand,
    operand_footprint,
    wave_unique_refs,
)


class BCSRSpMM(SpMMKernel):
    """Tile-dense SpMM over BCSR (Triton's block-sparse kernels).

    Each stored tile is multiplied densely against the matching ``B`` row
    block — perfectly regular, tensor-core friendly work, but *all* padding
    inside non-zero tiles is computed and moved.  On irregular graphs with
    ~99% tile padding the footprint explodes (the >60x blow-up of
    Section 2.1) and large inputs hit the simulated 16 GB OOM, reproducing
    the OOM bars of Figure 6.
    """

    name = "triton"

    def __init__(
        self,
        cache: CacheModel | None = None,
        wave_blocks: int = DEFAULT_WAVE_BLOCKS,
        dense_tile_efficiency: float = 3.0,
    ):
        self.cache = cache or CacheModel(min_miss=0.08)
        self.wave_blocks = wave_blocks
        #: Dense tiles run near peak (tensor-core assisted) relative to the
        #: generic scalar efficiency of irregular kernels.
        self.dense_tile_efficiency = dense_tile_efficiency

    def plan(self, fmt: BCSRFormat, J: int) -> KernelStats:
        if not isinstance(fmt, BCSRFormat):
            raise TypeError(f"{self.name} kernel requires BCSRFormat, got {type(fmt).__name__}")
        I, K = fmt.shape
        bh, bw = fmt.block_shape
        nb = fmt.num_blocks
        # One thread block per block-row; its work is its tile count.
        per_block_row = np.diff(fmt.indptr).astype(np.float64)
        block_costs = 2.0 * per_block_row * bh * bw * J
        # B reuse: each tile reads a (bw x J) slab of B.  Waves are groups of
        # co-resident block-rows; distinct tile columns within a wave are
        # compulsory fetches, repeats hit per the cache model.
        unique_tiles, ref_tiles = wave_unique_refs(
            fmt.indptr, fmt.indices, self.wave_blocks, -(-K // bw)
        )
        b_bytes = self.cache.b_traffic_bytes(
            unique_per_wave=unique_tiles * bw,
            refs_per_wave=ref_tiles * bw,
            J=J,
            num_b_rows=K,
        )
        a_bytes = coalesced_bytes(nb * bh * bw + nb + fmt.indptr.size)
        c_bytes = coalesced_bytes(fmt.num_block_rows * bh * J)
        return KernelStats(
            coalesced_load_bytes=a_bytes + b_bytes,
            scattered_load_bytes=0.0,
            coalesced_store_bytes=c_bytes,
            atomic_store_bytes=0.0,
            flops=2.0 * nb * bh * bw * J,
            block_costs=block_costs,
            threads_per_block=128,
            lane_utilization=1.0,
            compute_efficiency=self.dense_tile_efficiency,
            bandwidth_efficiency=1.15,  # dense tile streaming
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, J),
            label=self.name,
        )

    def execute(self, fmt: BCSRFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        bh, bw = fmt.block_shape
        padded_cols = (int(fmt.indices.max()) + 1) * bw if fmt.indices.size else fmt.shape[1]
        padded_cols = max(padded_cols, fmt.shape[1])
        bsr = sp.bsr_matrix(
            (fmt.blocks, fmt.indices, fmt.indptr),
            shape=(fmt.num_block_rows * bh, padded_cols),
        )
        B_pad = B
        if padded_cols > fmt.shape[1]:
            B_pad = np.vstack(
                [B, np.zeros((padded_cols - fmt.shape[1], B.shape[1]), dtype=B.dtype)]
            )
        C = np.asarray(bsr @ B_pad)
        return C[: fmt.shape[0]]
