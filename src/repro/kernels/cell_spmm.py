"""SpMM over the CELL format — Algorithm 2 of the paper."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE
from repro.formats.cell import Bucket, CELLFormat
from repro.gpu.memory import CacheModel, coalesced_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    check_dense_operand,
    operand_footprint,
)


class CELLSpMM(SpMMKernel):
    """Blockwise SpMM over CELL buckets (Algorithm 2).

    Every block processes exactly ``2**k`` stored elements, so thread-block
    costs are uniform and load balance is near perfect.  Column-index and
    value arrays are read with fully coalesced bursts; writes to ``C`` use
    ``atomicAdd`` when the format requires it (multiple partitions, or
    folded rows in the bucket).  All buckets are horizontally fused into a
    single launch, matching the TVM fusion pass of Section 6.
    """

    name = "cell"

    def __init__(
        self,
        cache: CacheModel | None = None,
        fused: bool = True,
        wave_blocks: int = DEFAULT_WAVE_BLOCKS,
    ):
        self.cache = cache or CacheModel()
        self.fused = fused
        self.wave_blocks = wave_blocks

    def _bucket_stats(
        self, fmt: CELLFormat, bucket: Bucket, J: int, partition_cols: int
    ) -> KernelStats:
        R, W = bucket.num_rows, bucket.width
        K = fmt.shape[1]
        stored = bucket.stored_elements
        atomic = fmt.needs_atomic(bucket)
        out_words = float(R * J)
        # Column partitioning bounds the B working set to the partition's
        # columns — the data-locality mechanism of Section 4.
        unique, refs = bucket.wave_traffic(bucket.block_rows * self.wave_blocks)
        b_bytes = self.cache.b_traffic_bytes(
            unique_per_wave=unique,
            refs_per_wave=refs,
            J=J,
            num_b_rows=partition_cols,
        )
        n_blocks = bucket.num_blocks
        block_costs = np.full(n_blocks, 2.0 * float(bucket.block_nnz) * J)
        if n_blocks:
            tail_rows = R - (n_blocks - 1) * bucket.block_rows
            block_costs[-1] = 2.0 * float(tail_rows * W) * J
        return KernelStats(
            coalesced_load_bytes=coalesced_bytes(R + 2 * stored) + b_bytes,
            coalesced_store_bytes=0.0 if atomic else coalesced_bytes(out_words),
            atomic_store_bytes=coalesced_bytes(out_words) if atomic else 0.0,
            flops=2.0 * stored * J,
            block_costs=block_costs,
            threads_per_block=128,
            lane_utilization=1.0,
            bandwidth_efficiency=1.15,  # dense coalesced Ellpack streaming
            lpt_dispatch=True,  # equal-size blocks: order is irrelevant
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, fmt.shape[0], J),
            label=f"{self.name}[w={W}]",
        )

    def plan(self, fmt: CELLFormat, J: int) -> KernelStats:
        if not isinstance(fmt, CELLFormat):
            raise TypeError(f"{self.name} kernel requires CELLFormat, got {type(fmt).__name__}")
        I, K = fmt.shape
        per_bucket = [
            self._bucket_stats(fmt, bucket, J, part.num_cols)
            for part, bucket in fmt.iter_buckets()
        ]
        if not per_bucket:
            return KernelStats(
                coalesced_store_bytes=coalesced_bytes(I * J),
                flops=0.0,
                block_costs=np.zeros(0),
                num_launches=1,
                footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, J),
                label=self.name,
            )
        merged = KernelStats.merge(per_bucket)
        merged.num_launches = 1 if self.fused else len(per_bucket)
        if merged.atomic_store_bytes > 0:
            # atomicAdd accumulation needs its target rows zero-initialized;
            # only the rows written by atomic buckets are memset.
            atomic_rows = sum(
                bucket.num_output_rows
                for _, bucket in fmt.iter_buckets()
                if fmt.needs_atomic(bucket)
            )
            merged.coalesced_store_bytes += float(min(atomic_rows, I)) * J * 4
            merged.num_launches += 1
        merged.label = self.name
        return merged

    def execute(self, fmt: CELLFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        I, J = fmt.shape[0], B.shape[1]
        C = np.zeros((I, J), dtype=VALUE_DTYPE)
        for _, bucket in fmt.iter_buckets():
            # Cached compact slab: columns within each bucket row are already
            # in CSR order, so the direct constructor needs no COO sort.
            data, indices, indptr = bucket.csr_slab
            if not data.size:
                continue
            slab = sp.csr_matrix(
                (data, indices, indptr),
                shape=(bucket.num_rows, fmt.shape[1]),
            )
            partial = np.asarray(slab @ B)
            row_ind = bucket.row_ind.astype(np.int64)
            if bucket.has_folds:
                # Folded chunks alias output rows, so the scatter must
                # accumulate duplicates — the atomicAdd path of the plan.
                # (Cross-partition accumulation still counts as atomic in
                # plan()'s cost model, but across buckets plain ``+=`` is
                # exact: each bucket touches a row at most once here.)
                np.add.at(C, row_ind, partial)
            else:
                C[row_ind] += partial
        return C
