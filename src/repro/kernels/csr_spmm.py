"""CSR SpMM kernels: cuSPARSE-, Sputnik-, and dgSPARSE-style schedules."""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRFormat
from repro.gpu.memory import CacheModel, coalesced_bytes, scattered_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    check_dense_operand,
    operand_footprint,
    wave_unique_refs,
)


class RowSplitCSRSpMM(SpMMKernel):
    """Row-split CSR SpMM — the cuSPARSE-style baseline schedule.

    One warp per sparse row; the warp's lanes tile the dense dimension
    ``J``, so accesses to ``B[k, :]`` are coalesced bursts.  Thread blocks
    cover ``rows_per_block`` consecutive rows.  The strategy's weaknesses,
    which the statistics expose directly, are (a) load imbalance when row
    lengths are skewed — a block finishes with its *longest* row — and
    (b) per-row loop overhead dominating on very short rows.
    """

    name = "cusparse"

    #: Generic library code: no shared-memory staging, so the reuse floor is
    #: higher than the hand-tuned kernels below.
    DEFAULT_CACHE = CacheModel(min_miss=0.12)
    #: Whether the A column-index gather issues full sectors per warp
    #: (wasteful on short rows); hand-tuned kernels stage them instead.
    SECTORED_INDEX_LOADS = True
    #: Generic library entry points run an analysis/setup pass per call.
    NUM_LAUNCHES = 2
    #: Achieved-DRAM-bandwidth multiplier: the generic gather kernel is
    #: latency-bound and sustains less of peak than streaming kernels.
    BANDWIDTH_EFFICIENCY = 0.85
    #: Whether B-traffic waves follow the (possibly swizzled) processing
    #: order instead of the natural row order.
    TRAFFIC_FOLLOWS_ROW_ORDER = False

    def __init__(
        self,
        rows_per_block: int = 4,
        row_overhead: float = 16.0,
        cache: CacheModel | None = None,
        wave_blocks: int = DEFAULT_WAVE_BLOCKS,
    ):
        if rows_per_block < 1:
            raise ValueError(f"rows_per_block must be >= 1, got {rows_per_block}")
        self.rows_per_block = rows_per_block
        #: Fixed work (in element-equivalents) charged per row for loop
        #: setup, pointer chasing, and short-row underutilization.
        self.row_overhead = row_overhead
        self.cache = cache or self.DEFAULT_CACHE
        #: Co-resident thread blocks forming one L2 reuse wave.
        self.wave_blocks = wave_blocks

    # -- schedule hooks overridden by subclasses -----------------------
    def _row_order(self, fmt: CSRFormat) -> np.ndarray | None:
        """Row permutation applied before forming thread blocks.

        Affects load balance only: real swizzles remap row ids inside the
        kernel, which leaves the L2's view of B-traffic locality (set by
        wave co-residency over the whole device) essentially unchanged.
        """
        return None

    def _j_tile(self, J: int) -> int:
        """Output-column tile width per thread block (default: all of J)."""
        return J

    def plan(self, fmt: CSRFormat, J: int) -> KernelStats:
        if not isinstance(fmt, CSRFormat):
            raise TypeError(f"{self.name} kernel requires CSRFormat, got {type(fmt).__name__}")
        I, K = fmt.shape
        nnz = fmt.nnz
        lengths = fmt.row_lengths
        order = self._row_order(fmt)
        if order is not None:
            lengths = lengths[order]
        rpb = self.rows_per_block
        n_units = int(lengths.size)
        n_blocks = -(-n_units // rpb) if n_units else 0
        pad = n_blocks * rpb - n_units
        padded = np.concatenate([lengths, np.zeros(pad, dtype=lengths.dtype)])
        per_block = padded.reshape(n_blocks, rpb) if n_blocks else padded.reshape(0, rpb)
        # flops per block: the block retires with its longest row's warp.
        # Output tiling (j_tile < J) splits each row's work across several
        # blocks, shrinking the worst straggler proportionally.
        jt = max(1, min(self._j_tile(J), J))
        j_repeats = -(-J // jt)
        block_costs = np.tile(
            2.0 * (per_block.max(axis=1) + self.row_overhead) * jt, j_repeats
        )

        if self.TRAFFIC_FOLLOWS_ROW_ORDER and order is not None:
            # Swizzled processing scrambles which rows are co-resident,
            # degrading the wave's column locality.
            nat_lengths = fmt.row_lengths
            perm_lengths = nat_lengths[order]
            perm_indptr = np.concatenate([[0], np.cumsum(perm_lengths)]).astype(
                np.int64
            )
            starts = fmt.indptr[order].astype(np.int64)
            src = np.repeat(starts, perm_lengths) + (
                np.arange(nnz) - np.repeat(perm_indptr[:-1], perm_lengths)
            )
            w_indptr, w_indices = perm_indptr, fmt.indices[src]
        else:
            w_indptr, w_indices = fmt.indptr, fmt.indices
        unique, refs = wave_unique_refs(
            w_indptr, w_indices, rpb * self.wave_blocks, K
        )
        b_bytes = self.cache.b_traffic_bytes(
            unique_per_wave=unique,
            refs_per_wave=refs,
            J=J,
            num_b_rows=K,
        )
        if self.SECTORED_INDEX_LOADS and nnz:
            # Each warp gathers its own row's indices; short rows waste most
            # of every 32-byte sector.
            avg_len = nnz / max(1, int(np.count_nonzero(lengths)))
            index_bytes = scattered_bytes(nnz, locality=min(1.0, avg_len / 8.0))
        else:
            index_bytes = coalesced_bytes(nnz)
        a_bytes = index_bytes + coalesced_bytes(I + 1 + nnz)  # + indptr + val
        c_bytes = coalesced_bytes(I * J)
        return KernelStats(
            coalesced_load_bytes=a_bytes + b_bytes,
            scattered_load_bytes=0.0,
            coalesced_store_bytes=c_bytes,
            atomic_store_bytes=0.0,
            flops=2.0 * nnz * J,
            block_costs=block_costs,
            threads_per_block=self.rows_per_block * 32,
            lane_utilization=1.0,
            bandwidth_efficiency=self.BANDWIDTH_EFFICIENCY,
            lpt_dispatch=self._row_order(fmt) is not None,
            num_launches=self.NUM_LAUNCHES,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, J),
            label=self.name,
        )

    def execute(self, fmt: CSRFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        return np.asarray(fmt.to_csr() @ B)


class SputnikSpMM(RowSplitCSRSpMM):
    """Sputnik-style CSR SpMM [Gale et al., SC'20].

    Adds (a) *row swizzle*: rows are sorted by length so each block's warps
    process similar-length rows, removing most intra-block imbalance, and
    (b) subwarp tiling + vector memory instructions, reducing the fixed
    per-row overhead.  The memory side is unchanged CSR traffic.
    """

    name = "sputnik"

    DEFAULT_CACHE = CacheModel(min_miss=0.08)
    SECTORED_INDEX_LOADS = False  # vector loads fetch index tiles wholesale
    NUM_LAUNCHES = 1  # single hand-written kernel
    BANDWIDTH_EFFICIENCY = 0.92  # vector loads, but still a gather kernel
    TRAFFIC_FOLLOWS_ROW_ORDER = True  # swizzle scrambles wave locality

    def __init__(
        self,
        rows_per_block: int = 4,
        row_overhead: float = 6.0,
        cache: CacheModel | None = None,
        j_tile: int = 128,
    ):
        super().__init__(rows_per_block=rows_per_block, row_overhead=row_overhead, cache=cache)
        #: Sputnik's 1-D output tiling: each block owns a (rows x j_tile)
        #: slice of C, so a long row's work spreads over J/j_tile blocks.
        self.j_tile = j_tile

    def _row_order(self, fmt: CSRFormat) -> np.ndarray:
        # Stable descending length sort: the published row-swizzle balance trick.
        return np.argsort(-fmt.row_lengths, kind="stable")

    def _j_tile(self, J: int) -> int:
        return self.j_tile


class DgSparseSpMM(RowSplitCSRSpMM):
    """dgSPARSE/GE-SpMM-style CSR SpMM [Huang et al., SC'20].

    Coalesced row caching: the block stages its rows' column indices in
    shared memory so warps issue wide coalesced loads of ``B`` and reuse
    staged indices, improving achieved reuse (lower cache miss floor) while
    keeping the natural row order.
    """

    name = "dgsparse"

    DEFAULT_CACHE = CacheModel(min_miss=0.06)
    SECTORED_INDEX_LOADS = False  # indices staged through shared memory
    NUM_LAUNCHES = 1  # single hand-written kernel
    BANDWIDTH_EFFICIENCY = 0.92  # coalesced, but gather-bound row groups

    def __init__(self, rows_per_block: int = 4, row_overhead: float = 4.0, cache: CacheModel | None = None):
        super().__init__(
            rows_per_block=rows_per_block,
            row_overhead=row_overhead,
            cache=cache,
        )
