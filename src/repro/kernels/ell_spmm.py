"""Ellpack-family SpMM kernels (plain ELL and Sliced-ELL)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE
from repro.formats.ell import PAD, ELLFormat
from repro.formats.sliced_ell import SlicedELLFormat
from repro.gpu.memory import CacheModel, coalesced_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    check_dense_operand,
    operand_footprint,
    wave_unique_refs,
)


def _ell_wave_traffic(
    col: np.ndarray, rows_per_wave: int, num_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-wave unique/total B-row references for a padded ELL slab."""
    mask = col != PAD
    lengths = mask.sum(axis=1).astype(np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    indices = col[mask].astype(np.int64)
    return wave_unique_refs(indptr, indices, rows_per_wave, num_cols)


def _ell_slab_product(
    col: np.ndarray, val: np.ndarray, B: np.ndarray, num_cols: int
) -> np.ndarray:
    """Multiply one padded ELL slab against B without materializing R*W*J.

    Builds a CSR view of the slab's real entries and uses a sparse matmul —
    the same arithmetic Algorithm 2 performs, element by element.
    """
    R, W = col.shape
    mask = col != PAD
    rows = np.nonzero(mask)[0]
    m = sp.csr_matrix(
        (val[mask], (rows, col[mask])), shape=(R, num_cols), dtype=VALUE_DTYPE
    )
    return np.asarray(m @ B)


class ELLSpMM(SpMMKernel):
    """Plain ELL SpMM: one thread row, lanes across J, fully coalesced.

    Perfectly regular but computes and moves every padded slot; a single
    long row makes the whole matrix pay its width.
    """

    name = "ell"

    def __init__(
        self,
        rows_per_block: int = 32,
        cache: CacheModel | None = None,
        wave_blocks: int = DEFAULT_WAVE_BLOCKS,
    ):
        self.rows_per_block = rows_per_block
        self.cache = cache or CacheModel()
        self.wave_blocks = wave_blocks

    def plan(self, fmt: ELLFormat, J: int) -> KernelStats:
        if not isinstance(fmt, ELLFormat):
            raise TypeError(f"{self.name} kernel requires ELLFormat, got {type(fmt).__name__}")
        I, K = fmt.shape
        W = fmt.width
        stored = fmt.stored_elements
        rpb = self.rows_per_block
        n_blocks = -(-I // rpb) if I else 0
        block_costs = np.full(n_blocks, 2.0 * float(rpb * W) * J)
        unique, refs = _ell_wave_traffic(fmt.col, rpb * self.wave_blocks, K)
        b_bytes = self.cache.b_traffic_bytes(
            unique_per_wave=unique,
            refs_per_wave=refs,
            J=J,
            num_b_rows=K,
        )
        return KernelStats(
            coalesced_load_bytes=coalesced_bytes(2 * stored) + b_bytes,
            coalesced_store_bytes=coalesced_bytes(I * J),
            flops=2.0 * stored * J,
            block_costs=block_costs,
            threads_per_block=128,
            lane_utilization=1.0,
            bandwidth_efficiency=1.15,  # dense coalesced Ellpack streaming
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, J),
            label=self.name,
        )

    def execute(self, fmt: ELLFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        return _ell_slab_product(fmt.col, fmt.val, B, fmt.shape[1])


class SlicedELLSpMM(SpMMKernel):
    """Sliced-ELL SpMM: one thread block per slice, slice-local width."""

    name = "sliced-ell"

    def __init__(self, cache: CacheModel | None = None, wave_blocks: int = DEFAULT_WAVE_BLOCKS):
        self.cache = cache or CacheModel()
        self.wave_blocks = wave_blocks

    def plan(self, fmt: SlicedELLFormat, J: int) -> KernelStats:
        if not isinstance(fmt, SlicedELLFormat):
            raise TypeError(
                f"{self.name} kernel requires SlicedELLFormat, got {type(fmt).__name__}"
            )
        I, K = fmt.shape
        stored = fmt.stored_elements
        block_costs = np.array(
            [2.0 * float(s.col.size) * J for s in fmt.slices], dtype=np.float64
        )
        # One slice maps to one thread block; a wave spans wave_blocks slices.
        slice_h = fmt.slices[0].num_rows if fmt.slices else 1
        if fmt.slices:
            # Treat the whole matrix as one CSR stream with slice-sized waves.
            lengths = np.concatenate(
                [(s.col != PAD).sum(axis=1) for s in fmt.slices]
            ).astype(np.int64)
            indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
            indices = np.concatenate(
                [s.col[s.col != PAD] for s in fmt.slices]
            ).astype(np.int64)
            unique, refs = wave_unique_refs(
                indptr, indices, slice_h * self.wave_blocks, K
            )
        else:
            unique = refs = np.zeros(0, dtype=np.int64)
        b_bytes = self.cache.b_traffic_bytes(
            unique_per_wave=unique,
            refs_per_wave=refs,
            J=J,
            num_b_rows=K,
        )
        return KernelStats(
            coalesced_load_bytes=coalesced_bytes(2 * stored) + b_bytes,
            coalesced_store_bytes=coalesced_bytes(I * J),
            flops=2.0 * stored * J,
            block_costs=block_costs,
            threads_per_block=128,
            lane_utilization=1.0,
            bandwidth_efficiency=1.1,  # slice-local Ellpack streaming
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, J),
            label=self.name,
        )

    def execute(self, fmt: SlicedELLFormat, B: np.ndarray) -> np.ndarray:
        B = check_dense_operand(B, fmt.shape[1])
        I, J = fmt.shape[0], B.shape[1]
        C = np.zeros((I, J), dtype=VALUE_DTYPE)
        for s in fmt.slices:
            C[s.row_start : s.row_start + s.num_rows] = _ell_slab_product(
                s.col, s.val, B, fmt.shape[1]
            )
        return C
