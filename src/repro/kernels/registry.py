"""Single source of truth for the ``method -> (Format, Kernel)`` table.

The one-call :func:`repro.spmm` API, the CLI, and the benchmarks all need
to map a user-facing method name (``"cell"``, ``"csr"``, ``"sputnik"``,
...) to the format class that stores the matrix and the kernel class that
executes it.  Before this module each consumer carried its own copy of
that table, so adding a method (or renaming one) meant hunting down every
inline dict.  ``resolve`` is the one lookup; ``available_methods`` is the
one listing; :exc:`ValueError` with a consistent message is the one
unknown-method error.

The registry maps names to *classes*, not instances: kernels are cheap,
stateless-by-default objects, and some callers want constructor kwargs
(e.g. ``CELLFormat.from_csr(..., num_partitions=4)``), so instantiation
stays with the caller.
"""

from __future__ import annotations

from repro.formats import (
    BCSRFormat,
    CELLFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.formats.base import SparseFormat
from repro.kernels.base import SpMMKernel
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import DgSparseSpMM, RowSplitCSRSpMM, SputnikSpMM
from repro.kernels.ell_spmm import ELLSpMM, SlicedELLSpMM
from repro.kernels.sddmm import CELLSDDMM, CSRSDDMM
from repro.kernels.spmv import MergeCSRSpMV, ScalarCSRSpMV, VectorCSRSpMV
from repro.kernels.taco_spmm import TacoSpMM

#: The canonical SpMM method table.  Keys are the names accepted by
#: :func:`repro.spmm` and printed by the CLI; values are
#: ``(format_class, kernel_class)`` pairs.
KERNEL_REGISTRY: dict[str, tuple[type[SparseFormat], type[SpMMKernel]]] = {
    "cell": (CELLFormat, CELLSpMM),
    "csr": (CSRFormat, RowSplitCSRSpMM),
    "sputnik": (CSRFormat, SputnikSpMM),
    "dgsparse": (CSRFormat, DgSparseSpMM),
    "taco": (CSRFormat, TacoSpMM),
    "bcsr": (BCSRFormat, BCSRSpMM),
    "ell": (ELLFormat, ELLSpMM),
    "sliced-ell": (SlicedELLFormat, SlicedELLSpMM),
}

#: Per-op method tables.  ``spmm`` is the historical registry; the SDDMM
#: and SpMV kernels (previously unreachable from here) get their own
#: namespaces so ``resolve(name, op=...)`` dispatches all three op kinds
#: without perturbing the canonical SpMM listing.
OP_REGISTRIES: dict[str, dict[str, tuple[type[SparseFormat], type[SpMMKernel]]]] = {
    "spmm": KERNEL_REGISTRY,
    "sddmm": {
        "sddmm-csr": (CSRFormat, CSRSDDMM),
        "sddmm-cell": (CELLFormat, CELLSDDMM),
    },
    "spmv": {
        "spmv-scalar": (CSRFormat, ScalarCSRSpMV),
        "spmv-vector": (CSRFormat, VectorCSRSpMV),
        "spmv-merge": (CSRFormat, MergeCSRSpMV),
    },
}


def _op_table(op: str) -> dict[str, tuple[type[SparseFormat], type[SpMMKernel]]]:
    try:
        return OP_REGISTRIES[op]
    except KeyError:
        raise ValueError(
            f"unknown op {op!r}; choose from {list(OP_REGISTRIES)}"
        ) from None


def available_methods(op: str = "spmm") -> tuple[str, ...]:
    """All method names for ``op``, sorted — the listing every error cites."""
    return tuple(sorted(_op_table(op)))


def resolve(method: str, op: str = "spmm") -> tuple[type[SparseFormat], type[SpMMKernel]]:
    """Look up ``(format_class, kernel_class)`` for a method name.

    Raises the repo-wide unknown-method :exc:`ValueError` otherwise, so
    ``repro.spmm``, the CLI, and the benchmarks all fail with the same
    message.
    """
    table = _op_table(op)
    try:
        return table[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {list(available_methods(op))}"
        ) from None


def kernel_for_op(fmt: SparseFormat, op: str) -> SpMMKernel | None:
    """Pick the kernel that executes ``op`` over an already-built format.

    Returns ``None`` when the composed plan's own SpMM kernel should be
    kept (``op == "spmm"``, or an SpMV over a non-CSR format, which any
    SpMM kernel serves correctly at ``J = 1``) or when no registered
    kernel of that op speaks the format (the caller rebuilds CSR).
    """
    _op_table(op)  # validate op
    if op == "spmm":
        return None
    if op == "sddmm":
        if isinstance(fmt, CELLFormat):
            return CELLSDDMM()
        if isinstance(fmt, CSRFormat):
            return CSRSDDMM()
        return None
    if isinstance(fmt, CSRFormat):  # spmv
        return MergeCSRSpMV()
    return None
