"""Single source of truth for the ``method -> (Format, Kernel)`` table.

The one-call :func:`repro.spmm` API, the CLI, and the benchmarks all need
to map a user-facing method name (``"cell"``, ``"csr"``, ``"sputnik"``,
...) to the format class that stores the matrix and the kernel class that
executes it.  Before this module each consumer carried its own copy of
that table, so adding a method (or renaming one) meant hunting down every
inline dict.  ``resolve`` is the one lookup; ``available_methods`` is the
one listing; :exc:`ValueError` with a consistent message is the one
unknown-method error.

The registry maps names to *classes*, not instances: kernels are cheap,
stateless-by-default objects, and some callers want constructor kwargs
(e.g. ``CELLFormat.from_csr(..., num_partitions=4)``), so instantiation
stays with the caller.
"""

from __future__ import annotations

from repro.formats import (
    BCSRFormat,
    CELLFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.formats.base import SparseFormat
from repro.kernels.base import SpMMKernel
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import DgSparseSpMM, RowSplitCSRSpMM, SputnikSpMM
from repro.kernels.ell_spmm import ELLSpMM, SlicedELLSpMM
from repro.kernels.taco_spmm import TacoSpMM

#: The canonical method table.  Keys are the names accepted by
#: :func:`repro.spmm` and printed by the CLI; values are
#: ``(format_class, kernel_class)`` pairs.
KERNEL_REGISTRY: dict[str, tuple[type[SparseFormat], type[SpMMKernel]]] = {
    "cell": (CELLFormat, CELLSpMM),
    "csr": (CSRFormat, RowSplitCSRSpMM),
    "sputnik": (CSRFormat, SputnikSpMM),
    "dgsparse": (CSRFormat, DgSparseSpMM),
    "taco": (CSRFormat, TacoSpMM),
    "bcsr": (BCSRFormat, BCSRSpMM),
    "ell": (ELLFormat, ELLSpMM),
    "sliced-ell": (SlicedELLFormat, SlicedELLSpMM),
}


def available_methods() -> tuple[str, ...]:
    """All method names, sorted — the listing every error message cites."""
    return tuple(sorted(KERNEL_REGISTRY))


def resolve(method: str) -> tuple[type[SparseFormat], type[SpMMKernel]]:
    """Look up ``(format_class, kernel_class)`` for a method name.

    Raises the repo-wide unknown-method :exc:`ValueError` otherwise, so
    ``repro.spmm``, the CLI, and the benchmarks all fail with the same
    message.
    """
    try:
        return KERNEL_REGISTRY[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {list(available_methods())}"
        ) from None
