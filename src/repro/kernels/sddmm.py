"""SDDMM kernels — Section 10's "various sparse computational kernels".

Sampled dense-dense matrix multiplication computes, for every stored
position of a sparse matrix ``A``::

    C[i, j] = A[i, j] * (U[i, :] . V[j, :])

with dense ``U (I, K)`` and ``V (J_cols, K)`` — the sparse-attention /
GNN-edge-score primitive that pairs with SpMM in transformer-style GNNs.
The CELL variant reuses the format's structural regularity the same way
the SpMM kernel does: coalesced index/value streams, uniform blocks, and
partition-bounded gather windows on ``V``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE
from repro.formats.cell import CELLFormat
from repro.formats.csr import CSRFormat
from repro.formats.ell import PAD
from repro.gpu.memory import CacheModel, coalesced_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    wave_unique_refs,
)

#: Row-chunk size for the vectorized execution path (bounds temporaries).
_CHUNK_NNZ = 1 << 18


def sddmm_reference(A: sp.csr_matrix, U: np.ndarray, V: np.ndarray) -> sp.csr_matrix:
    """Ground truth: ``A .* (U @ V.T)`` restricted to A's pattern."""
    U = np.asarray(U, dtype=VALUE_DTYPE)
    V = np.asarray(V, dtype=VALUE_DTYPE)
    _check_operands(A.shape, U, V)
    out = A.copy().astype(VALUE_DTYPE)
    rows = np.repeat(np.arange(A.shape[0]), np.diff(A.indptr))
    vals = np.empty(A.nnz, dtype=VALUE_DTYPE)
    for lo in range(0, A.nnz, _CHUNK_NNZ):
        hi = min(lo + _CHUNK_NNZ, A.nnz)
        vals[lo:hi] = np.einsum(
            "ij,ij->i", U[rows[lo:hi]], V[A.indices[lo:hi]], dtype=np.float32
        )
    out.data = A.data * vals
    return out


def _check_operands(shape: tuple[int, int], U: np.ndarray, V: np.ndarray) -> None:
    if U.ndim != 2 or V.ndim != 2:
        raise ValueError("U and V must be 2-D")
    if U.shape[0] != shape[0]:
        raise ValueError(f"U has {U.shape[0]} rows, expected {shape[0]}")
    if V.shape[0] != shape[1]:
        raise ValueError(f"V has {V.shape[0]} rows, expected {shape[1]}")
    if U.shape[1] != V.shape[1]:
        raise ValueError(
            f"feature dims differ: U has {U.shape[1]}, V has {V.shape[1]}"
        )


class _SDDMMKernel(SpMMKernel):
    """SDDMM operands are a ``(U, V)`` pair, not one dense matrix, so the
    generic :meth:`SpMMKernel.run` (which plans off ``B.shape[1]``) does
    not apply; plan off the shared feature width ``K = U.shape[1]``."""

    def run(self, fmt, operands, device):
        U, V = operands
        stats = self.plan(fmt, int(np.asarray(U).shape[1]))
        measurement = device.measure(stats)
        C = self.execute(fmt, (U, V))
        return C, measurement


class CSRSDDMM(_SDDMMKernel):
    """Element-parallel SDDMM over CSR: one warp per stored element group."""

    name = "sddmm-csr"

    def __init__(self, cache: CacheModel | None = None, wave_blocks: int = DEFAULT_WAVE_BLOCKS):
        self.cache = cache or CacheModel(min_miss=0.12)
        self.wave_blocks = wave_blocks
        self.nnz_per_block = 128

    def plan(self, fmt: CSRFormat, K: int) -> KernelStats:
        if not isinstance(fmt, CSRFormat):
            raise TypeError(f"{self.name} requires CSRFormat, got {type(fmt).__name__}")
        I, Jc = fmt.shape
        nnz = fmt.nnz
        npb = self.nnz_per_block
        n_blocks = -(-nnz // npb) if nnz else 0
        block_costs = np.full(n_blocks, 2.0 * npb * K)
        # U rows stream sequentially (row-major over elements); V rows are a
        # gather indexed by colInd with wave-level reuse, like SpMM's B.
        unique, refs = wave_unique_refs(
            fmt.indptr, fmt.indices, max(1, npb * self.wave_blocks // 8), Jc
        )
        v_bytes = self.cache.b_traffic_bytes(unique, refs, K, Jc)
        u_bytes = coalesced_bytes(min(nnz, I) * K)
        a_bytes = coalesced_bytes(I + 1 + 2 * nnz)
        return KernelStats(
            coalesced_load_bytes=a_bytes + u_bytes + v_bytes,
            coalesced_store_bytes=coalesced_bytes(nnz),
            flops=2.0 * nnz * K,
            block_costs=block_costs,
            lane_utilization=1.0,
            lpt_dispatch=True,
            num_launches=1,
            footprint_bytes=fmt.footprint_bytes + (I + Jc) * K * 4 + nnz * 4,
            label=self.name,
        )

    def execute(self, fmt: CSRFormat, operands) -> sp.csr_matrix:
        U, V = operands
        A = fmt.to_csr()
        return sddmm_reference(A, U, V)


class CELLSDDMM(_SDDMMKernel):
    """Blockwise SDDMM over CELL buckets: uniform 2^k-element blocks."""

    name = "sddmm-cell"

    def __init__(self, cache: CacheModel | None = None, wave_blocks: int = DEFAULT_WAVE_BLOCKS):
        self.cache = cache or CacheModel()
        self.wave_blocks = wave_blocks

    def plan(self, fmt: CELLFormat, K: int) -> KernelStats:
        if not isinstance(fmt, CELLFormat):
            raise TypeError(f"{self.name} requires CELLFormat, got {type(fmt).__name__}")
        I, Jc = fmt.shape
        per_bucket = []
        for part, bucket in fmt.iter_buckets():
            R, W = bucket.num_rows, bucket.width
            stored = bucket.stored_elements
            unique, refs = bucket.wave_traffic(bucket.block_rows * self.wave_blocks)
            v_bytes = self.cache.b_traffic_bytes(unique, refs, K, part.num_cols)
            n_blocks = bucket.num_blocks
            costs = np.full(n_blocks, 2.0 * bucket.block_nnz * K)
            per_bucket.append(
                KernelStats(
                    coalesced_load_bytes=coalesced_bytes(R + 2 * stored + R * K) + v_bytes,
                    coalesced_store_bytes=coalesced_bytes(stored),
                    flops=2.0 * stored * K,
                    block_costs=costs,
                    lane_utilization=1.0,
                    bandwidth_efficiency=1.15,
                    lpt_dispatch=True,
                    num_launches=1,
                    footprint_bytes=fmt.footprint_bytes + (I + Jc) * K * 4,
                    label=f"{self.name}[w={W}]",
                )
            )
        if not per_bucket:
            return KernelStats(num_launches=1, label=self.name)
        merged = KernelStats.merge(per_bucket)
        merged.num_launches = 1
        merged.label = self.name
        return merged

    def execute(self, fmt: CELLFormat, operands) -> sp.csr_matrix:
        U, V = operands
        U = np.asarray(U, dtype=VALUE_DTYPE)
        V = np.asarray(V, dtype=VALUE_DTYPE)
        _check_operands(fmt.shape, U, V)
        rows_all, cols_all, vals_all = [], [], []
        for _, bucket in fmt.iter_buckets():
            mask = bucket.col != PAD
            if not mask.any():
                continue
            local_rows, _ = np.nonzero(mask)
            rows = bucket.row_ind.astype(np.int64)[local_rows]
            cols = bucket.col[mask].astype(np.int64)
            vals = bucket.val[mask]
            dots = np.einsum("ij,ij->i", U[rows], V[cols], dtype=np.float32)
            rows_all.append(rows)
            cols_all.append(cols)
            vals_all.append(vals * dots)
        if not rows_all:
            return sp.csr_matrix(fmt.shape, dtype=VALUE_DTYPE)
        return sp.csr_matrix(
            (np.concatenate(vals_all), (np.concatenate(rows_all), np.concatenate(cols_all))),
            shape=fmt.shape,
            dtype=VALUE_DTYPE,
        )
