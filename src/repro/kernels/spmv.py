"""SpMV kernels: scalar-CSR, vector-CSR, and merge-based CSR.

Sparse matrix-vector multiplication is the J=1 corner of SpMM and the
subject of much of the paper's related work (Auto-SpMV, Seer, WISE,
Merrill & Garland's merge-based decomposition).  These kernels model the
three classic CSR SpMV strategies on the simulated device:

* **scalar**: one thread per row — catastrophic divergence on skewed rows;
* **vector**: one warp per row — wasted lanes on short rows, good on long;
* **merge**: Merrill & Garland's MergePath split of (rows + nnz) into
  exactly equal shares — perfect balance at the price of atomic fix-ups
  at share boundaries.

They reuse the SpMM kernel interface with ``J = 1`` (``B`` is an
``(K, 1)`` column), so the whole measurement stack applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRFormat
from repro.gpu.memory import CacheModel, coalesced_bytes, scattered_bytes
from repro.gpu.stats import KernelStats
from repro.kernels.base import (
    DEFAULT_WAVE_BLOCKS,
    SpMMKernel,
    check_dense_operand,
    operand_footprint,
    wave_unique_refs,
)


class _CSRSpMVBase(SpMMKernel):
    """Shared plumbing: x-vector gather traffic and numeric execution."""

    def __init__(self, cache: CacheModel | None = None, wave_blocks: int = DEFAULT_WAVE_BLOCKS):
        self.cache = cache or CacheModel(min_miss=0.1)
        self.wave_blocks = wave_blocks

    def _x_bytes(self, fmt: CSRFormat, rows_per_wave: int) -> float:
        unique, refs = wave_unique_refs(
            fmt.indptr, fmt.indices, rows_per_wave, fmt.shape[1]
        )
        # J=1: each x element is a 4-byte word; gathers expand to sectors
        # unless the wave's working set is cache-resident, which the cache
        # model handles at row granularity (row = 1 word here).
        return self.cache.b_traffic_bytes(unique, refs, 1, fmt.shape[1]) * 8.0

    def execute(self, fmt: CSRFormat, x: np.ndarray) -> np.ndarray:
        x = check_dense_operand(np.atleast_2d(np.asarray(x, dtype=np.float32).reshape(fmt.shape[1], -1)), fmt.shape[1])
        return np.asarray(fmt.to_csr() @ x)

    def run(self, fmt: CSRFormat, x: np.ndarray, device):
        """SpMV run: a 1-D ``x`` is a single column (the generic SpMM
        ``run`` would index ``x.shape[1]``)."""
        x = np.asarray(x, dtype=np.float32).reshape(fmt.shape[1], -1)
        return super().run(fmt, x, device)

    def _common(self, fmt: CSRFormat) -> tuple[int, int, int]:
        if not isinstance(fmt, CSRFormat):
            raise TypeError(f"{self.name} requires CSRFormat, got {type(fmt).__name__}")
        I, K = fmt.shape
        return I, K, fmt.nnz


class ScalarCSRSpMV(_CSRSpMVBase):
    """One thread per row: a warp retires with its longest resident row."""

    name = "spmv-scalar"

    def plan(self, fmt: CSRFormat, J: int = 1) -> KernelStats:
        I, K, nnz = self._common(fmt)
        lengths = fmt.row_lengths.astype(np.float64)
        rpb = 128  # threads (= rows) per block
        n_blocks = -(-I // rpb) if I else 0
        pad = n_blocks * rpb - I
        padded = np.concatenate([lengths, np.zeros(pad)])
        grouped = padded.reshape(n_blocks, rpb) if n_blocks else padded.reshape(0, rpb)
        # every warp serializes on its longest row; charge the block with
        # 32x the max row (the whole warp idles behind it)
        block_costs = 2.0 * grouped.max(axis=1) * 32.0
        # per-thread index/value gathers are NOT coalesced across lanes
        a_bytes = scattered_bytes(2 * nnz, locality=0.25)
        return KernelStats(
            coalesced_load_bytes=coalesced_bytes(I + 1) + self._x_bytes(fmt, rpb * self.wave_blocks),
            scattered_load_bytes=a_bytes,
            coalesced_store_bytes=coalesced_bytes(I),
            flops=2.0 * nnz,
            block_costs=block_costs,
            lane_utilization=0.5,
            bandwidth_efficiency=0.6,
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, 1),
            label=self.name,
        )


class VectorCSRSpMV(_CSRSpMVBase):
    """One warp per row with an intra-warp reduction."""

    name = "spmv-vector"

    def plan(self, fmt: CSRFormat, J: int = 1) -> KernelStats:
        I, K, nnz = self._common(fmt)
        lengths = fmt.row_lengths.astype(np.float64)
        rpb = 4  # warps (= rows) per block
        n_blocks = -(-I // rpb) if I else 0
        pad = n_blocks * rpb - I
        padded = np.concatenate([lengths, np.zeros(pad)])
        grouped = padded.reshape(n_blocks, rpb) if n_blocks else padded.reshape(0, rpb)
        # the warp strides its row: cost = max row + log2(32) reduction
        block_costs = 2.0 * (grouped.max(axis=1) + 5.0)
        # lanes idle when rows are shorter than the warp
        util = float(np.minimum(lengths[lengths > 0], 32).mean() / 32) if nnz else 1.0
        return KernelStats(
            coalesced_load_bytes=(
                coalesced_bytes(I + 1 + 2 * nnz)
                + self._x_bytes(fmt, rpb * self.wave_blocks)
            ),
            coalesced_store_bytes=coalesced_bytes(I),
            flops=2.0 * nnz,
            block_costs=block_costs,
            lane_utilization=max(min(util, 1.0), 1e-3),
            bandwidth_efficiency=0.9,
            num_launches=1,
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, 1),
            label=self.name,
        )


class MergeCSRSpMV(_CSRSpMVBase):
    """Merrill & Garland merge-based SpMV: equal (row + nnz) shares."""

    name = "spmv-merge"

    def __init__(self, items_per_block: int = 256, **kwargs):
        super().__init__(**kwargs)
        self.items_per_block = items_per_block

    def plan(self, fmt: CSRFormat, J: int = 1) -> KernelStats:
        I, K, nnz = self._common(fmt)
        total_items = I + nnz
        ipb = self.items_per_block
        n_blocks = -(-total_items // ipb) if total_items else 0
        block_costs = np.full(n_blocks, 2.0 * ipb)
        if n_blocks:
            block_costs[-1] = 2.0 * (total_items - (n_blocks - 1) * ipb)
        # shares straddling row boundaries fix up with one atomic each
        atomic_words = n_blocks
        return KernelStats(
            coalesced_load_bytes=(
                coalesced_bytes(I + 1 + 2 * nnz)
                + self._x_bytes(fmt, max(1, ipb * self.wave_blocks // 8))
            ),
            coalesced_store_bytes=coalesced_bytes(I),
            atomic_store_bytes=float(atomic_words * 4),
            flops=2.0 * nnz,
            block_costs=block_costs,
            lane_utilization=0.9,
            bandwidth_efficiency=0.95,
            lpt_dispatch=True,  # uniform shares
            num_launches=2,  # path-search + compute
            footprint_bytes=operand_footprint(fmt.footprint_bytes, K, I, 1),
            label=self.name,
        )
