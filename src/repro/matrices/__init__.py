"""Sparse matrix workloads: generators, GNN stand-ins, and feature extraction.

The paper evaluates on seven GNN graphs (Table 4) and 1,351 SuiteSparse
matrices.  Neither collection ships with this environment, so this package
provides seeded synthetic generators spanning the same sparsity-pattern
classes and matched summary statistics; see DESIGN.md for the substitution
rationale and per-dataset scale factors.
"""

from repro.matrices.collection import CollectionEntry, SuiteSparseLikeCollection
from repro.matrices.features import (
    FORMAT_FEATURE_NAMES,
    PARTITION_FEATURE_NAMES,
    format_selection_features,
    partition_features,
)
from repro.matrices.generators import (
    banded_matrix,
    block_diagonal_matrix,
    community_graph,
    diagonal_dominant_matrix,
    mixture_matrix,
    power_law_graph,
    random_row_update,
    replace_rows,
    rmat_graph,
    uniform_random_matrix,
    with_dense_rows,
)
from repro.matrices.gnn import GNN_DATASETS, GNNDatasetSpec, make_gnn_standin
from repro.matrices.io import read_matrix_market, write_matrix_market

__all__ = [
    "SuiteSparseLikeCollection",
    "CollectionEntry",
    "FORMAT_FEATURE_NAMES",
    "PARTITION_FEATURE_NAMES",
    "format_selection_features",
    "partition_features",
    "banded_matrix",
    "block_diagonal_matrix",
    "community_graph",
    "diagonal_dominant_matrix",
    "mixture_matrix",
    "power_law_graph",
    "random_row_update",
    "replace_rows",
    "rmat_graph",
    "uniform_random_matrix",
    "with_dense_rows",
    "GNN_DATASETS",
    "GNNDatasetSpec",
    "make_gnn_standin",
    "read_matrix_market",
    "write_matrix_market",
]
