"""A seeded SuiteSparse-like matrix collection.

The paper draws 1,351 matrices with at least 2,000 rows from the SuiteSparse
Matrix Collection, spanning densities from 8.7e-7 to 0.1 (Table 4).  This
module generates a deterministic synthetic collection covering the same
pattern classes and size/density ranges; the number of matrices is a
parameter so tests can use dozens while benchmark sweeps use hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.matrices.generators import (
    banded_matrix,
    block_diagonal_matrix,
    community_graph,
    diagonal_dominant_matrix,
    mixture_matrix,
    power_law_graph,
    rmat_graph,
    uniform_random_matrix,
    with_dense_rows,
)

#: Pattern families cycled through by the collection, mirroring the domain
#: diversity of SuiteSparse (graphs, PDEs, circuits, optimization, ...).
PATTERNS = (
    "power_law",
    "community",
    "rmat",
    "banded",
    "block_diagonal",
    "uniform",
    "diagonal_dominant",
    "mixture",
    "power_law_dense_rows",
)


@dataclass(frozen=True)
class CollectionEntry:
    """One matrix of the collection with its generation metadata."""

    name: str
    pattern: str
    matrix: sp.csr_matrix

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def density(self) -> float:
        r, c = self.matrix.shape
        return self.matrix.nnz / (r * c)


class SuiteSparseLikeCollection:
    """Deterministic synthetic stand-in for the SuiteSparse collection.

    Iterating yields :class:`CollectionEntry` objects.  The same
    ``(size, seed)`` always produces the same matrices, so training data,
    figures, and tests are reproducible.

    Parameters
    ----------
    size:
        Number of matrices to generate.
    min_rows / max_rows:
        Matrix size range (log-uniform), min 2,000 per the paper's filter.
    seed:
        Base RNG seed.
    """

    def __init__(
        self,
        size: int = 128,
        min_rows: int = 2_000,
        max_rows: int = 60_000,
        seed: int = 2025,
    ):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if min_rows < 2:
            raise ValueError(f"min_rows must be >= 2, got {min_rows}")
        if max_rows < min_rows:
            raise ValueError("max_rows must be >= min_rows")
        self.size = size
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.seed = seed

    def __len__(self) -> int:
        return self.size

    def entry(self, index: int) -> CollectionEntry:
        """Generate (deterministically) the ``index``-th matrix."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        rng = np.random.default_rng(self.seed + 7919 * index)
        pattern = PATTERNS[index % len(PATTERNS)]
        n = int(
            np.exp(
                rng.uniform(np.log(self.min_rows), np.log(self.max_rows))
            )
        )
        seed = int(rng.integers(0, 2**31 - 1))
        matrix = self._generate(pattern, n, rng, seed)
        return CollectionEntry(
            name=f"ss_{index:04d}_{pattern}", pattern=pattern, matrix=matrix
        )

    @staticmethod
    def _generate(
        pattern: str, n: int, rng: np.random.Generator, seed: int
    ) -> sp.csr_matrix:
        if pattern == "power_law":
            return power_law_graph(n, avg_degree=rng.uniform(3, 40), seed=seed)
        if pattern == "community":
            return community_graph(
                n,
                avg_degree=rng.uniform(5, 60),
                num_communities=int(rng.integers(8, 128)),
                seed=seed,
            )
        if pattern == "rmat":
            scale = max(11, int(np.log2(n)))
            return rmat_graph(
                scale, edge_factor=int(rng.integers(4, 24)), seed=seed
            )
        if pattern == "banded":
            return banded_matrix(
                n, bandwidth=int(rng.integers(1, 16)), fill=rng.uniform(0.4, 1.0), seed=seed
            )
        if pattern == "block_diagonal":
            return block_diagonal_matrix(
                n,
                block_size=int(rng.choice([4, 8, 16, 32])),
                block_density=rng.uniform(0.5, 1.0),
                seed=seed,
            )
        if pattern == "uniform":
            density = float(np.exp(rng.uniform(np.log(3e-6), np.log(5e-3))))
            # keep at least ~1 nnz per two rows so kernels have work
            density = max(density, 0.6 / n)
            return uniform_random_matrix(n, n, density=density, seed=seed)
        if pattern == "diagonal_dominant":
            return diagonal_dominant_matrix(
                n,
                off_diagonal_density=float(
                    np.exp(rng.uniform(np.log(1e-6), np.log(1e-3)))
                ),
                seed=seed,
            )
        if pattern == "mixture":
            return mixture_matrix(n, avg_degree=rng.uniform(6, 30), seed=seed)
        if pattern == "power_law_dense_rows":
            base = power_law_graph(n, avg_degree=rng.uniform(3, 25), seed=seed)
            return with_dense_rows(
                base,
                num_dense_rows=int(rng.integers(1, 6)),
                row_density=rng.uniform(0.1, 0.6),
                seed=seed + 1,
            )
        raise ValueError(f"unknown pattern {pattern!r}")

    def __iter__(self) -> Iterator[CollectionEntry]:
        for i in range(self.size):
            yield self.entry(i)
