"""Feature extraction for LiteForm's two predictors (Tables 2 and 3).

Both feature sets are deliberately cheap — O(nnz) single passes over the
CSR row-pointer array — because low construction overhead is the point of
the whole framework (Section 5.1: "basic matrix features ... avoiding the
need for costly preprocessing").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

#: Table 2: features for predicting whether CELL offers an advantage.
FORMAT_FEATURE_NAMES = (
    "num_rows",
    "num_cols",
    "nnz",
    "avg_nnz_per_row",
    "min_nnz_per_row",
    "max_nnz_per_row",
    "std_nnz_per_row",
)

#: Table 3: features for predicting the optimal number of partitions.
#: Densities, not raw counts — Section 5.2 found densities markedly more
#: predictive — plus the dense-operand size ("product of other dimensions").
PARTITION_FEATURE_NAMES = (
    "num_rows",
    "num_cols",
    "nnz",
    "avg_row_density",
    "min_row_density",
    "max_row_density",
    "std_row_density",
    "dense_dim_product",
)


def _row_lengths(A: sp.csr_matrix) -> np.ndarray:
    return np.diff(A.indptr).astype(np.float64)


def format_selection_features(A: sp.csr_matrix) -> np.ndarray:
    """The seven Table 2 features, as a float vector."""
    lengths = _row_lengths(A)
    if lengths.size == 0:
        lengths = np.zeros(1)
    return np.array(
        [
            float(A.shape[0]),
            float(A.shape[1]),
            float(A.nnz),
            float(lengths.mean()),
            float(lengths.min()),
            float(lengths.max()),
            float(lengths.std()),
        ]
    )


def partition_features(A: sp.csr_matrix, J: int) -> np.ndarray:
    """The eight Table 3 features for dense width ``J``."""
    if J < 1:
        raise ValueError(f"J must be >= 1, got {J}")
    lengths = _row_lengths(A)
    if lengths.size == 0:
        lengths = np.zeros(1)
    n_cols = max(1, A.shape[1])
    density = lengths / n_cols
    return np.array(
        [
            float(A.shape[0]),
            float(A.shape[1]),
            float(A.nnz),
            float(density.mean()),
            float(density.min()),
            float(density.max()),
            float(density.std()),
            float(A.shape[1] * J),
        ]
    )


def feature_matrix(
    matrices: list[sp.csr_matrix],
    extractor=format_selection_features,
    **kwargs,
) -> np.ndarray:
    """Stack an extractor over a list of matrices into an (n, d) array."""
    return np.vstack([extractor(A, **kwargs) for A in matrices])
