"""Seeded synthetic sparse-matrix generators.

Each generator produces a canonical float32 CSR matrix from a NumPy seed,
covering the sparsity-pattern classes of the paper's evaluation inputs:
power-law graphs (social networks, citation graphs), community-structured
graphs (GNN benchmarks), R-MAT/Kronecker graphs (web-scale skew), banded and
block-diagonal matrices (PDE/stencil problems), diagonally dominant systems,
uniform random sparsity, and mixtures with embedded dense rows (the
pathology motivating CELL's folded rows).

All generators are fully vectorized; none loops over individual non-zeros.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE, as_csr


def _finalize(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: tuple[int, int],
    rng: np.random.Generator,
    symmetrize: bool = False,
) -> sp.csr_matrix:
    """Deduplicate, (optionally) symmetrize, and attach random values."""
    if symmetrize:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    data = np.ones(rows.size, dtype=VALUE_DTYPE)
    A = sp.csr_matrix((data, (rows, cols)), shape=shape)
    A.sum_duplicates()
    A.data[:] = rng.standard_normal(A.nnz).astype(VALUE_DTYPE)
    # Guard against exact zeros from the RNG (would vanish in round-trips).
    A.data[A.data == 0] = 1.0
    return as_csr(A)


def uniform_random_matrix(
    n_rows: int,
    n_cols: int,
    density: float,
    seed: int = 0,
) -> sp.csr_matrix:
    """Erdős–Rényi-style uniform sparsity (no structure, no locality)."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(n_rows * n_cols * density)))
    rows = rng.integers(0, n_rows, size=nnz)
    cols = rng.integers(0, n_cols, size=nnz)
    return _finalize(rows, cols, (n_rows, n_cols), rng)


def power_law_graph(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: int = 0,
) -> sp.csr_matrix:
    """Configuration-model graph with Zipf-distributed degrees.

    Produces the hub-and-tail row-length skew of social and citation
    networks — the regime where row-split kernels suffer stragglers and
    fixed-width ELL suffers padding.
    """
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, n / 4)
    degrees = raw * (avg_degree / raw.mean())
    weights = degrees / degrees.sum()
    # Oversample ~15% to offset duplicate-edge collapse, then stub-match:
    # endpoints drawn proportional to degree weight.
    m = max(1, int(round(n * avg_degree / 2 * 1.15)))
    src = rng.choice(n, size=m, p=weights)
    dst = rng.choice(n, size=m, p=weights)
    keep = src != dst
    return _finalize(src[keep], dst[keep], (n, n), rng, symmetrize=True)


def community_graph(
    n: int,
    avg_degree: float,
    num_communities: int = 32,
    p_in: float = 0.9,
    seed: int = 0,
) -> sp.csr_matrix:
    """Stochastic-block-style graph: dense within communities, sparse across.

    Supplies the column locality typical of GNN benchmark graphs (cora,
    pubmed, reddit): consecutive rows share most of their neighbourhoods.
    """
    if not 0.0 <= p_in <= 1.0:
        raise ValueError(f"p_in must be in [0, 1], got {p_in}")
    rng = np.random.default_rng(seed)
    target = max(1, int(round(n * avg_degree / 2)))
    comm_size = max(1, n // num_communities)

    def draw(m: int) -> tuple[np.ndarray, np.ndarray]:
        src = rng.integers(0, n, size=m)
        intra = rng.random(m) < p_in
        intra_dst = (
            (src // comm_size) * comm_size + rng.integers(0, comm_size, size=m)
        ).clip(0, n - 1)
        inter_dst = rng.integers(0, n, size=m)
        dst = np.where(intra, intra_dst, inter_dst)
        keep = src != dst
        return src[keep], dst[keep]

    # Dense communities collapse many duplicate draws; top up until the
    # distinct-edge target is met (bounded rounds keep this deterministic
    # and O(target)).
    srcs, dsts = [], []
    pairs: np.ndarray | None = None
    for _ in range(6):
        have = 0 if pairs is None else pairs.size
        if have >= target:
            break
        s, d = draw(int((target - have) * 1.3) + 1)
        srcs.append(s)
        dsts.append(d)
        lo = np.minimum(np.concatenate(srcs), np.concatenate(dsts))
        hi = np.maximum(np.concatenate(srcs), np.concatenate(dsts))
        pairs = np.unique(lo * np.int64(n) + hi)
    assert pairs is not None
    src = (pairs // n).astype(np.int64)
    dst = (pairs % n).astype(np.int64)
    return _finalize(src, dst, (n, n), rng, symmetrize=True)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> sp.csr_matrix:
    """R-MAT/Kronecker graph (Graph500 parameters by default).

    Recursive quadrant sampling yields both heavy power-law skew and
    hierarchical locality — the closest synthetic analogue of web and
    social-network matrices in SuiteSparse.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if a + b + c >= 1.0:
        raise ValueError("quadrant probabilities a + b + c must be < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        r = rng.random(m)
        quad = np.searchsorted(thresholds, r)
        bit = 1 << (scale - 1 - level)
        rows += np.where((quad == 2) | (quad == 3), bit, 0)
        cols += np.where((quad == 1) | (quad == 3), bit, 0)
    keep = rows != cols
    return _finalize(rows[keep], cols[keep], (n, n), rng, symmetrize=True)


def banded_matrix(
    n: int,
    bandwidth: int,
    fill: float = 1.0,
    seed: int = 0,
) -> sp.csr_matrix:
    """Banded matrix (stencil/PDE style): all non-zeros within a diagonal band."""
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows = np.repeat(np.arange(n), offsets.size)
    cols = rows + np.tile(offsets, n)
    keep = (cols >= 0) & (cols < n)
    if fill < 1.0:
        keep &= rng.random(rows.size) < fill
    return _finalize(rows[keep], cols[keep], (n, n), rng)


def block_diagonal_matrix(
    n: int,
    block_size: int,
    block_density: float = 0.8,
    seed: int = 0,
) -> sp.csr_matrix:
    """Dense-ish blocks on the diagonal: the regime where BCSR excels.

    The format-selection model should learn to answer "FALSE" (keep the
    fixed blockwise format) for matrices like these.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if not 0.0 < block_density <= 1.0:
        raise ValueError(f"block_density must be in (0, 1], got {block_density}")
    rng = np.random.default_rng(seed)
    n_blocks = max(1, n // block_size)
    # Enumerate every in-block position once and keep a Bernoulli sample, so
    # block_density=1.0 yields fully dense blocks.
    base = np.repeat(np.arange(n_blocks, dtype=np.int64) * block_size, block_size * block_size)
    within = np.tile(np.arange(block_size * block_size), n_blocks)
    rows = base + within // block_size
    cols = base + within % block_size
    keep = (rows < n) & (cols < n)
    if block_density < 1.0:
        keep &= rng.random(rows.size) < block_density
    return _finalize(rows[keep], cols[keep], (n, n), rng)


def diagonal_dominant_matrix(
    n: int,
    off_diagonal_density: float = 1e-3,
    seed: int = 0,
) -> sp.csr_matrix:
    """Full diagonal plus sparse uniform off-diagonal entries."""
    rng = np.random.default_rng(seed)
    nnz_off = max(1, int(round(n * n * off_diagonal_density)))
    rows = np.concatenate([np.arange(n), rng.integers(0, n, size=nnz_off)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, size=nnz_off)])
    return _finalize(rows, cols, (n, n), rng)


def with_dense_rows(
    A: sp.csr_matrix,
    num_dense_rows: int,
    row_density: float = 0.5,
    seed: int = 0,
) -> sp.csr_matrix:
    """Inject near-dense rows into a matrix (Section 2.1's ELL pathology)."""
    if num_dense_rows < 0:
        raise ValueError("num_dense_rows must be >= 0")
    if num_dense_rows == 0:
        return as_csr(A)
    rng = np.random.default_rng(seed)
    n_rows, n_cols = A.shape
    target_rows = rng.choice(n_rows, size=min(num_dense_rows, n_rows), replace=False)
    per_row = max(1, int(round(n_cols * row_density)))
    rows = np.repeat(target_rows, per_row)
    cols = np.tile(
        np.sort(rng.choice(n_cols, size=per_row, replace=False)), target_rows.size
    )
    data = rng.standard_normal(rows.size).astype(VALUE_DTYPE)
    data[data == 0] = 1.0
    extra = sp.csr_matrix((data, (rows, cols)), shape=A.shape)
    return as_csr(A + extra)


def replace_rows(
    A: sp.csr_matrix,
    rows: np.ndarray,
    cols_per_row: list[np.ndarray],
    vals_per_row: list[np.ndarray],
) -> sp.csr_matrix:
    """Return a copy of ``A`` with the listed rows replaced wholesale.

    Each entry of ``cols_per_row`` / ``vals_per_row`` gives the complete
    new contents of the corresponding row (an empty array empties it).
    The result is a fresh canonical float32 CSR matrix; ``A`` is not
    modified.  This is the mutation primitive behind
    :func:`random_row_update` and the incremental-recompose
    (``ComposePlan.patch_rows``) delta-replay tests.
    """
    A = as_csr(A)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size != len(cols_per_row) or rows.size != len(vals_per_row):
        raise ValueError(
            f"rows ({rows.size}), cols_per_row ({len(cols_per_row)}) and "
            f"vals_per_row ({len(vals_per_row)}) must have equal lengths"
        )
    if rows.size != np.unique(rows).size:
        raise ValueError("rows must be unique")
    if rows.size and (rows.min() < 0 or rows.max() >= A.shape[0]):
        raise ValueError(f"rows out of range for {A.shape[0]} rows")
    coo = A.tocoo()
    keep = ~np.isin(coo.row, rows)
    r = [coo.row[keep]]
    c = [coo.col[keep]]
    v = [coo.data[keep]]
    for row, cols, vals in zip(rows, cols_per_row, vals_per_row):
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if cols.size != vals.size:
            raise ValueError(f"row {row}: {cols.size} cols but {vals.size} vals")
        if cols.size and (cols.min() < 0 or cols.max() >= A.shape[1]):
            raise ValueError(f"row {row}: columns out of range")
        if cols.size != np.unique(cols).size:
            raise ValueError(f"row {row}: duplicate columns")
        r.append(np.full(cols.size, row, dtype=np.int64))
        c.append(cols)
        v.append(vals)
    # coo -> csr canonicalizes (sorts indices within rows, sums dups).
    B = sp.csr_matrix(
        (np.concatenate(v), (np.concatenate(r), np.concatenate(c))),
        shape=A.shape,
        dtype=VALUE_DTYPE,
    )
    return as_csr(B)


def random_row_update(
    A: sp.csr_matrix,
    rng: np.random.Generator,
    num_rows: int = 4,
    empty_fraction: float = 0.25,
    grow_fraction: float = 0.25,
    band: int | None = None,
) -> tuple[np.ndarray, sp.csr_matrix]:
    """Seeded random mutation of a few rows; returns ``(changed_rows, A')``.

    Per changed row one of three updates is drawn: *empty* the row
    (probability ``empty_fraction``), *grow* it to up to 4x its current
    length (``grow_fraction`` — long enough to cross width-bucket and
    fold boundaries), or *rewrite* it at roughly the same length.  The
    mix is exactly the update stream the incremental-recompose path must
    survive: rows vanishing from partitions, rows newly spilling into
    the folded max-width bucket, and plain value/pattern churn.

    With ``band=k`` replacement columns are drawn from the diagonal band
    ``[row - k, row + k]`` (stencil-style updates), keeping each change
    local to the partitions the row already lives in — the regime where
    incremental recompose pays off.  Default draws columns uniformly.
    """
    A = as_csr(A)
    n_rows, n_cols = A.shape
    num_rows = min(int(num_rows), n_rows)
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    if band is not None and band < 1:
        raise ValueError(f"band must be >= 1, got {band}")
    rows = np.sort(rng.choice(n_rows, size=num_rows, replace=False))
    lengths = np.diff(A.indptr)
    cols_per_row: list[np.ndarray] = []
    vals_per_row: list[np.ndarray] = []
    for row in rows:
        if band is None:
            lo, hi = 0, n_cols
        else:
            lo = max(0, int(row) - band)
            hi = min(n_cols, int(row) + band + 1)
        window = hi - lo
        draw = rng.random()
        if draw < empty_fraction:
            new_len = 0
        elif draw < empty_fraction + grow_fraction:
            base = max(1, int(lengths[row]))
            new_len = min(window, base * int(rng.integers(2, 5)))
        else:
            new_len = min(window, max(1, int(lengths[row])))
        cols = lo + np.sort(rng.choice(window, size=new_len, replace=False))
        vals = rng.standard_normal(new_len).astype(VALUE_DTYPE)
        vals[vals == 0] = 1.0
        cols_per_row.append(cols)
        vals_per_row.append(vals)
    return rows, replace_rows(A, rows, cols_per_row, vals_per_row)


def mixture_matrix(
    n: int,
    avg_degree: float = 12.0,
    seed: int = 0,
) -> sp.csr_matrix:
    """Composite pattern: community core + power-law overlay + dense rows.

    Mimics the heterogeneous matrices where different regions want
    different formats — the motivating case for composable formats.
    """
    rng = np.random.default_rng(seed)
    core = community_graph(n, avg_degree * 0.6, seed=seed)
    overlay = power_law_graph(n, avg_degree * 0.4, seed=seed + 1)
    mixed = as_csr(core + overlay)
    n_dense = int(rng.integers(1, max(2, n // 500)))
    return with_dense_rows(mixed, n_dense, row_density=0.25, seed=seed + 2)
