"""Synthetic stand-ins for the seven GNN benchmark graphs of Table 4.

The paper evaluates on cora, citeseer, pubmed, ppi, arxiv, proteins, and
reddit.  Those datasets are not available offline, so each is replaced by a
seeded generator matched on node count, average degree, and density, using
the pattern class that best describes the original (citation graphs are
power-law; ppi/proteins/reddit have strong community structure).

The two largest graphs are scaled down by the ``scale`` factor recorded in
their spec (nodes and edges divided equally, preserving average degree);
benchmarks that depend on absolute capacity (the Triton OOM of Figure 6)
scale the simulated device's DRAM by the same factor, keeping the
footprint-to-capacity ratio faithful.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.matrices.generators import community_graph, power_law_graph


@dataclass(frozen=True)
class GNNDatasetSpec:
    """Published statistics (Table 4) plus our stand-in parameters."""

    name: str
    nodes: int
    edges: int
    density: float
    pattern: str  # "power_law" | "community"
    #: Down-scale factor: nodes divided by ``scale`` and edges by
    #: ``scale**2``, preserving the published density (the property the
    #: cache/footprint models key on).
    scale: int = 1
    #: Community count used by the community generator.
    communities: int = 64

    @property
    def standin_nodes(self) -> int:
        return self.nodes // self.scale

    @property
    def standin_edges(self) -> int:
        return self.edges // (self.scale * self.scale)

    @property
    def avg_degree(self) -> float:
        return self.edges / self.nodes


#: Table 4 of the paper.  proteins and reddit are scaled (see module doc).
GNN_DATASETS: dict[str, GNNDatasetSpec] = {
    spec.name: spec
    for spec in [
        GNNDatasetSpec("cora", 2_708, 10_556, 1.44e-3, "power_law"),
        GNNDatasetSpec("citeseer", 3_327, 9_228, 8.34e-4, "power_law"),
        GNNDatasetSpec("pubmed", 19_717, 88_651, 2.28e-4, "power_law"),
        GNNDatasetSpec("ppi", 44_906, 1_271_274, 6.30e-4, "community", communities=24),
        GNNDatasetSpec("arxiv", 169_343, 1_166_243, 4.07e-5, "power_law", scale=2),
        GNNDatasetSpec(
            "proteins", 132_534, 39_561_252, 2.25e-3, "community", scale=4, communities=128
        ),
        GNNDatasetSpec(
            "reddit", 232_965, 114_615_892, 2.11e-3, "community", scale=6, communities=160
        ),
    ]
}


def make_gnn_standin(name: str, seed: int = 0) -> sp.csr_matrix:
    """Generate the synthetic stand-in adjacency matrix for a Table 4 graph."""
    try:
        spec = GNN_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown GNN dataset {name!r}; choose from {sorted(GNN_DATASETS)}"
        ) from None
    n = spec.standin_nodes
    avg_deg = spec.standin_edges / n
    if spec.pattern == "power_law":
        return power_law_graph(n, avg_deg, seed=seed)
    return community_graph(n, avg_deg, num_communities=spec.communities, seed=seed)
