"""Synthetic stand-ins for the seven GNN benchmark graphs of Table 4.

The paper evaluates on cora, citeseer, pubmed, ppi, arxiv, proteins, and
reddit.  Those datasets are not available offline, so each is replaced by a
seeded generator matched on node count, average degree, and density, using
the pattern class that best describes the original (citation graphs are
power-law; ppi/proteins/reddit have strong community structure).

The two largest graphs are scaled down by the ``scale`` factor recorded in
their spec (nodes and edges divided equally, preserving average degree);
benchmarks that depend on absolute capacity (the Triton OOM of Figure 6)
scale the simulated device's DRAM by the same factor, keeping the
footprint-to-capacity ratio faithful.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.matrices.generators import community_graph, power_law_graph


@dataclass(frozen=True)
class GNNDatasetSpec:
    """Published statistics (Table 4) plus our stand-in parameters."""

    name: str
    nodes: int
    edges: int
    density: float
    pattern: str  # "power_law" | "community"
    #: Down-scale factor: nodes divided by ``scale`` and edges by
    #: ``scale**2``, preserving the published density (the property the
    #: cache/footprint models key on).
    scale: int = 1
    #: Community count used by the community generator.
    communities: int = 64

    @property
    def standin_nodes(self) -> int:
        return self.nodes // self.scale

    @property
    def standin_edges(self) -> int:
        return self.edges // (self.scale * self.scale)

    @property
    def avg_degree(self) -> float:
        return self.edges / self.nodes


#: Table 4 of the paper.  proteins and reddit are scaled (see module doc).
GNN_DATASETS: dict[str, GNNDatasetSpec] = {
    spec.name: spec
    for spec in [
        GNNDatasetSpec("cora", 2_708, 10_556, 1.44e-3, "power_law"),
        GNNDatasetSpec("citeseer", 3_327, 9_228, 8.34e-4, "power_law"),
        GNNDatasetSpec("pubmed", 19_717, 88_651, 2.28e-4, "power_law"),
        GNNDatasetSpec("ppi", 44_906, 1_271_274, 6.30e-4, "community", communities=24),
        GNNDatasetSpec("arxiv", 169_343, 1_166_243, 4.07e-5, "power_law", scale=2),
        GNNDatasetSpec(
            "proteins", 132_534, 39_561_252, 2.25e-3, "community", scale=4, communities=128
        ),
        GNNDatasetSpec(
            "reddit", 232_965, 114_615_892, 2.11e-3, "community", scale=6, communities=160
        ),
    ]
}


def make_gnn_standin(name: str, seed: int = 0) -> sp.csr_matrix:
    """Generate the synthetic stand-in adjacency matrix for a Table 4 graph."""
    try:
        spec = GNN_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown GNN dataset {name!r}; choose from {sorted(GNN_DATASETS)}"
        ) from None
    n = spec.standin_nodes
    avg_deg = spec.standin_edges / n
    if spec.pattern == "power_law":
        return power_law_graph(n, avg_deg, seed=seed)
    return community_graph(n, avg_deg, num_communities=spec.communities, seed=seed)


# Independent seed streams so changing one knob (weights, arrivals) never
# shifts the values drawn by another — same idiom as repro.serve.workload.
_FEATURE_STREAM = 0xF0A7
_WEIGHT_STREAM = 0x3E16
_ARRIVAL_STREAM = 0xA221


@dataclass(frozen=True)
class GNNWorkloadSpec:
    """Seeded multi-epoch GNN inference workload over one stand-in graph.

    Each epoch becomes one :class:`~repro.serve.graph.GraphRequest` whose
    stages chain a full forward pass:

    * ``model="gat"`` — per layer: SDDMM attention scores over the
      adjacency, row-softmax normalize, SpMM aggregation, dense update
      (ReLU on all but the last layer).
    * ``model="gcn"`` — one SpMV degree pass plus a row-sum normalize of
      the adjacency per epoch, then per layer SpMM aggregation and dense
      update.  This variant exercises all three op kinds.

    Every epoch shares the same adjacency pattern, so a server with
    structural reuse enabled composes once per ``(A, op)`` and re-values
    thereafter — the live-serving analogue of the paper's Figure 8
    amortization argument.
    """

    dataset: str = "cora"
    model: str = "gat"  # "gat" | "gcn"
    layers: int = 3
    epochs: int = 2
    feature_dim: int = 32
    hidden_dim: int = 32
    seed: int = 0
    #: Mean inter-arrival gap between epochs (exponential); 0 disables
    #: stamping and leaves every request at ``arrival_ms=0``.
    mean_gap_ms: float = 0.0
    deadline_ms: float = float("inf")


def _gat_layer(index: int, adjacency, features, weight, activation):
    """Stage chain for one GAT layer: SDDMM -> softmax -> SpMM -> dense."""
    from repro.serve.graph import OpStage

    return [
        OpStage(
            name=f"scores{index}", op="sddmm", matrix=adjacency,
            inputs=(features, features),
        ),
        OpStage(
            name=f"attn{index}", op="normalize",
            inputs=(f"@scores{index}",), kind="softmax",
        ),
        OpStage(
            name=f"agg{index}", op="spmm", matrix=f"@attn{index}",
            inputs=(features,),
        ),
        OpStage(
            name=f"update{index}", op="dense", inputs=(f"@agg{index}",),
            weight=weight, activation=activation,
        ),
    ]


def _gcn_layer(index: int, norm_ref: str, features, weight, activation):
    """Stage chain for one GCN layer: SpMM over normalized A -> dense."""
    from repro.serve.graph import OpStage

    return [
        OpStage(name=f"agg{index}", op="spmm", matrix=norm_ref, inputs=(features,)),
        OpStage(
            name=f"update{index}", op="dense", inputs=(f"@agg{index}",),
            weight=weight, activation=activation,
        ),
    ]


def generate_gnn_workload(spec: GNNWorkloadSpec) -> list:
    """Build the epoch-per-request GraphRequest list for ``spec``.

    Deterministic for a fixed spec.  Input features are fixed across
    epochs (inference replays the same graph signal); dense weights are
    redrawn per epoch so plan *values* change while the adjacency
    *pattern* does not — exactly the trace that separates per-request
    recomposition from structural reuse.
    """
    from repro.serve.graph import GraphRequest, OpStage

    if spec.model not in ("gat", "gcn"):
        raise ValueError(f"unknown GNN model {spec.model!r}; choose gat or gcn")
    if spec.layers < 1:
        raise ValueError("layers must be >= 1")
    if spec.epochs < 1:
        raise ValueError("epochs must be >= 1")

    A = make_gnn_standin(spec.dataset, seed=spec.seed)
    n = A.shape[0]
    feat_rng = np.random.default_rng((spec.seed, _FEATURE_STREAM))
    weight_rng = np.random.default_rng((spec.seed, _WEIGHT_STREAM))
    features = feat_rng.standard_normal((n, spec.feature_dim)).astype(np.float32)
    ones = np.ones(n, dtype=np.float32)

    dims = [spec.feature_dim] + [spec.hidden_dim] * spec.layers
    arrival = 0.0
    arrival_rng = np.random.default_rng((spec.seed, _ARRIVAL_STREAM))
    requests = []
    for epoch in range(spec.epochs):
        weights = [
            weight_rng.standard_normal((dims[i], dims[i + 1])).astype(np.float32)
            / np.float32(np.sqrt(dims[i]))
            for i in range(spec.layers)
        ]
        stages: list = []
        if spec.model == "gcn":
            stages.append(OpStage(name="deg", op="spmv", matrix=A, inputs=(ones,)))
            stages.append(
                OpStage(name="norm", op="normalize", inputs=(A,), kind="sum")
            )
        h: object = features
        for layer in range(spec.layers):
            activation = "relu" if layer < spec.layers - 1 else None
            if spec.model == "gat":
                stages.extend(_gat_layer(layer, A, h, weights[layer], activation))
            else:
                stages.extend(
                    _gcn_layer(layer, "@norm", h, weights[layer], activation)
                )
            h = f"@update{layer}"
        if spec.mean_gap_ms > 0:
            arrival += float(arrival_rng.exponential(spec.mean_gap_ms))
        requests.append(
            GraphRequest(
                stages=stages,
                name=f"{spec.dataset}-{spec.model}-epoch{epoch}",
                deadline_ms=spec.deadline_ms,
                arrival_ms=arrival,
            )
        )
    return requests
