"""Minimal Matrix Market (.mtx) reader/writer.

Supports the ``matrix coordinate real general/symmetric`` subset — enough
to exchange matrices with SuiteSparse tooling — implemented on NumPy text
IO so no external dependency is needed.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE, as_csr

_HEADER = "%%MatrixMarket matrix coordinate real {symmetry}\n"


def write_matrix_market(
    A: sp.spmatrix, path: str | Path, symmetry: str = "general"
) -> None:
    """Write a sparse matrix in Matrix Market coordinate format."""
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")
    A = as_csr(A).tocoo()
    if symmetry == "symmetric":
        keep = A.row >= A.col
        A = sp.coo_matrix(
            (A.data[keep], (A.row[keep], A.col[keep])), shape=A.shape
        )
    path = Path(path)
    with path.open("w") as fh:
        fh.write(_HEADER.format(symmetry=symmetry))
        fh.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        out = np.column_stack([A.row + 1, A.col + 1, A.data.astype(np.float64)])
        np.savetxt(fh, out, fmt="%d %d %.9g")


def read_matrix_market(path: str | Path) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file into canonical CSR."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket matrix coordinate real"):
            raise ValueError(f"unsupported Matrix Market header: {header.strip()!r}")
        symmetric = "symmetric" in header
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(x) for x in line.split())
        body = fh.read()
    if nnz == 0:
        return sp.csr_matrix((rows, cols), dtype=VALUE_DTYPE)
    data = np.loadtxt(io.StringIO(body), ndmin=2)
    if data.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {data.shape[0]}")
    r = data[:, 0].astype(np.int64) - 1
    c = data[:, 1].astype(np.int64) - 1
    v = data[:, 2].astype(VALUE_DTYPE)
    if symmetric:
        off = r != c
        r = np.concatenate([r, c[off]])
        c = np.concatenate([c, data[:, 0].astype(np.int64)[off] - 1])
        v = np.concatenate([v, v[off]])
    return as_csr(sp.csr_matrix((v, (r, c)), shape=(rows, cols)))
