"""From-scratch NumPy machine-learning library.

scikit-learn is not available in this environment, so this package
implements the ten classifiers the paper evaluates in Tables 5 and 6
(Random Forest, KNeighbors, Linear SVM, RBF SVM, Gaussian Process,
Decision Tree, Neural Net, AdaBoost, Naive Bayes, QDA), plus the metrics,
preprocessing, and model-selection utilities LiteForm needs.

The implementations follow the classic formulations; they are black boxes
to the rest of the system, exactly as scikit-learn is to the paper.
"""

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.forest import RandomForestClassifier
from repro.ml.gaussian_process import GaussianProcessClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    cosine_similarity,
    f1_score,
    partition_similarity,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neural_net import MLPClassifier
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.qda import QuadraticDiscriminantAnalysis
from repro.ml.svm import LinearSVMClassifier, RBFSVMClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.zoo import CLASSIFIER_NAMES, make_classifier_zoo

__all__ = [
    "BaseClassifier",
    "check_X_y",
    "check_array",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "RBFSVMClassifier",
    "GaussianProcessClassifier",
    "MLPClassifier",
    "AdaBoostClassifier",
    "GaussianNB",
    "QuadraticDiscriminantAnalysis",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "cosine_similarity",
    "partition_similarity",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "StandardScaler",
    "LabelEncoder",
    "CLASSIFIER_NAMES",
    "make_classifier_zoo",
]
