"""AdaBoost (SAMME) over shallow CART trees."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier(BaseClassifier):
    """Multi-class AdaBoost.SAMME with depth-limited trees as weak learners."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        n = X.shape[0]
        K = self.classes_.size
        w = np.full(n, 1.0 / n)
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []
        self._estimator_class_maps: list[np.ndarray] = []
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=int(rng.integers(0, 2**31 - 1))
            )
            stump.fit(X, codes, sample_weight=w)
            pred = stump.predict(X)
            miss = pred != codes
            err = float(np.sum(w * miss) / np.sum(w))
            if err <= 0:
                # Perfect weak learner: take it with a large weight and stop.
                self.estimators_.append(stump)
                self.estimator_weights_.append(10.0)
                self._estimator_class_maps.append(stump.classes_.astype(np.int64))
                break
            if err >= 1.0 - 1.0 / K:
                break  # no better than chance; boosting cannot continue
            alpha = self.learning_rate * (np.log((1 - err) / err) + np.log(K - 1))
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            self._estimator_class_maps.append(stump.classes_.astype(np.int64))
            w *= np.exp(alpha * miss)
            w /= w.sum()
        if not self.estimators_:
            # Degenerate data: fall back to a single stump.
            stump = DecisionTreeClassifier(max_depth=self.max_depth)
            stump.fit(X, codes, sample_weight=w)
            self.estimators_.append(stump)
            self.estimator_weights_.append(1.0)
            self._estimator_class_maps.append(stump.classes_.astype(np.int64))
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        scores = np.zeros((X.shape[0], self.classes_.size))
        for est, alpha, cmap in zip(
            self.estimators_, self.estimator_weights_, self._estimator_class_maps
        ):
            pred_codes = cmap[np.argmax(est.predict_proba(X), axis=1)]
            scores[np.arange(X.shape[0]), pred_codes] += alpha
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
