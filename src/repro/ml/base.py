"""Estimator base class and input validation."""

from __future__ import annotations

import abc

import numpy as np


def check_array(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate and canonicalize a 2-D float feature array."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinity")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and its label vector together."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]} labels"
        )
    return X, y


class BaseClassifier(abc.ABC):
    """Common interface: ``fit(X, y) -> self``, ``predict(X) -> labels``.

    Subclasses store ``classes_`` (sorted unique labels) after ``fit`` and
    work internally with integer class codes.  ``predict_proba`` is optional
    but provided by most implementations.
    """

    classes_: np.ndarray

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        """Train on features ``X`` (n, d) and labels ``y`` (n,)."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a label for every row of ``X``."""

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Set ``classes_`` and return integer codes for ``y``."""
        self.classes_, codes = np.unique(y, return_inverse=True)
        return codes

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before predicting"
            )

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
