"""Random Forest: bagged CART trees with per-node feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees (soft-voting ensemble).

    The model LiteForm adopts for both predictors (Section 6): best
    accuracy in Tables 5-6 at sub-second training cost.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        max_features: int | str | None = "sqrt",
        min_samples_split: int = 2,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        n = X.shape[0]
        rng = np.random.default_rng(self.seed)
        self.trees_: list[DecisionTreeClassifier] = []
        self._tree_class_maps: list[np.ndarray] = []
        for t in range(self.n_estimators):
            boot = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[boot], codes[boot])
            self.trees_.append(tree)
            # A bootstrap may miss classes; remember the tree's code->global map.
            self._tree_class_maps.append(tree.classes_.astype(np.int64))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        agg = np.zeros((X.shape[0], self.classes_.size))
        for tree, cmap in zip(self.trees_, self._tree_class_maps):
            agg[:, cmap] += tree.predict_proba(X)
        return agg / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
