"""Gaussian-process classifier (RBF-kernel regression on one-hot targets).

A full Laplace-approximation GPC is overkill for its role here (one row of
Tables 5-6); instead we use the standard least-squares classification view
of GPs: kernel ridge regression on one-hot targets, predicting the argmax.
This keeps the characteristic O(n^3) training cost — the property the
tables highlight (GP is by far the slowest model to train) — while staying
a few hundred lines simpler.  Documented in DESIGN.md as a substitution.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.preprocessing import StandardScaler


class GaussianProcessClassifier(BaseClassifier):
    """GP least-squares classification with an RBF kernel."""

    def __init__(self, length_scale: float = 1.0, noise: float = 1e-2):
        if length_scale <= 0:
            raise ValueError(f"length_scale must be positive, got {length_scale}")
        if noise <= 0:
            raise ValueError(f"noise must be positive, got {noise}")
        self.length_scale = length_scale
        self.noise = noise

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        aa = np.sum(A * A, axis=1)[:, None]
        bb = np.sum(B * B, axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (A @ B.T), 0.0)
        return np.exp(-0.5 * d2 / (self.length_scale**2))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        self._X = Xs
        n = Xs.shape[0]
        C = self.classes_.size
        Y = np.zeros((n, C))
        Y[np.arange(n), codes] = 1.0
        K = self._kernel(Xs, Xs) + self.noise * np.eye(n)
        # Cholesky solve: the O(n^3) step that dominates GP training time.
        cho = scipy.linalg.cho_factor(K, lower=True)
        self._dual = scipy.linalg.cho_solve(cho, Y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Xs = self._scaler.transform(check_array(X))
        scores = self._kernel(Xs, self._X) @ self._dual
        scores -= scores.max(axis=1, keepdims=True)
        p = np.exp(scores * 4.0)  # sharpen regression scores into probabilities
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Xs = self._scaler.transform(check_array(X))
        scores = self._kernel(Xs, self._X) @ self._dual
        return self.classes_[np.argmax(scores, axis=1)]
