"""k-nearest-neighbours classifier (brute force, Euclidean)."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.ml.base import BaseClassifier, check_X_y, check_array


class KNeighborsClassifier(BaseClassifier):
    """Majority vote among the ``k`` nearest training points.

    Near-zero training cost and moderate inference cost, matching its
    Table 5 profile (fastest to "train", slower to query).
    """

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self._X = X
        self._codes = self._encode_labels(y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        k = min(self.n_neighbors, self._X.shape[0])
        d = cdist(X, self._X)
        nearest = np.argpartition(d, k - 1, axis=1)[:, :k]
        votes = self._codes[nearest]
        out = np.zeros((X.shape[0], self.classes_.size))
        rows = np.repeat(np.arange(X.shape[0]), k)
        np.add.at(out, (rows, votes.ravel()), 1.0)
        return out / k

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
