"""Classification metrics and the paper's similarity measures (Eqs. 1-2).

The paper reports identical accuracy/precision/recall/f1 values per model
in Tables 5-6, which is the signature of *micro-averaged* multi-class
metrics (they all reduce to accuracy); ``average="micro"`` is therefore the
default here, with macro averaging available.
"""

from __future__ import annotations

import numpy as np


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly correct predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """C[i, j] = count of samples with true class i predicted as class j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    n = classes.size
    cm = np.zeros((n, n), dtype=np.int64)
    ti = np.array([index[c] for c in y_true])
    pi = np.array([index[c] for c in y_pred])
    np.add.at(cm, (ti, pi), 1)
    return cm


def _prf(y_true: np.ndarray, y_pred: np.ndarray, average: str) -> tuple[float, float, float]:
    cm = confusion_matrix(y_true, y_pred)
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    true_pos = cm.sum(axis=1).astype(np.float64)
    if average == "micro":
        p = tp.sum() / max(pred_pos.sum(), 1.0)
        r = tp.sum() / max(true_pos.sum(), 1.0)
    elif average == "macro":
        with np.errstate(divide="ignore", invalid="ignore"):
            pc = np.where(pred_pos > 0, tp / pred_pos, 0.0)
            rc = np.where(true_pos > 0, tp / true_pos, 0.0)
        p, r = float(pc.mean()), float(rc.mean())
    else:
        raise ValueError(f"average must be 'micro' or 'macro', got {average!r}")
    f = 0.0 if p + r == 0 else 2 * p * r / (p + r)
    return float(p), float(r), float(f)


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "micro") -> float:
    return _prf(y_true, y_pred, average)[0]


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "micro") -> float:
    return _prf(y_true, y_pred, average)[1]


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "micro") -> float:
    return _prf(y_true, y_pred, average)[2]


def partition_similarity(predicted: float, actual: float) -> float:
    """Eq. 1: ``1 - |p - p̂| / max(p, p̂)`` for a single partition count.

    1.0 means exact; nearby counts score close to 1 because nearby partition
    numbers deliver similar kernel performance (Section 5.2).
    """
    p, a = float(predicted), float(actual)
    if p < 0 or a < 0:
        raise ValueError("partition counts must be non-negative")
    m = max(p, a)
    if m == 0:
        return 1.0
    return 1.0 - abs(p - a) / m


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Eq. 2: cosine similarity between predicted and actual partition vectors."""
    u = np.asarray(u, dtype=np.float64).ravel()
    v = np.asarray(v, dtype=np.float64).ravel()
    if u.shape != v.shape:
        raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0 or nv == 0:
        return 1.0 if nu == nv else 0.0
    return float(np.dot(u, v) / (nu * nv))
