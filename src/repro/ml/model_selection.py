"""Train/test splitting and cross-validation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test; stratified by label by default.

    The paper's Table 5 uses an 80/20 split of 514 matrices.
    """
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    if stratify:
        test_idx_parts = []
        for cls in np.unique(y):
            members = np.nonzero(y == cls)[0]
            members = rng.permutation(members)
            k = max(1, int(round(members.size * test_size))) if members.size > 1 else 0
            test_idx_parts.append(members[:k])
        test_idx = np.concatenate(test_idx_parts) if test_idx_parts else np.zeros(0, int)
    else:
        perm = rng.permutation(n)
        test_idx = perm[: max(1, int(round(n * test_size)))]
    mask = np.zeros(n, dtype=bool)
    mask[test_idx] = True
    if mask.all():
        mask[rng.integers(0, n)] = False  # keep at least one training sample
    return X[~mask], X[mask], y[~mask], y[mask]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            idx = np.random.default_rng(self.seed).permutation(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Accuracy per fold; ``model_factory()`` must return a fresh classifier."""
    X, y = check_X_y(X, y)
    scores = []
    for train, test in KFold(n_splits=n_splits, seed=seed).split(X.shape[0]):
        model: BaseClassifier = model_factory()
        model.fit(X[train], y[train])
        scores.append(model.score(X[test], y[test]))
    return np.asarray(scores)
