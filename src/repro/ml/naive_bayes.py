"""Gaussian Naive Bayes."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array


class GaussianNB(BaseClassifier):
    """Per-class independent Gaussians with a variance floor.

    Cheap and weak — the accuracy floor of Tables 5-6.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing <= 0:
            raise ValueError(f"var_smoothing must be positive, got {var_smoothing}")
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        C, d = self.classes_.size, X.shape[1]
        self.theta_ = np.zeros((C, d))
        self.var_ = np.zeros((C, d))
        self.class_log_prior_ = np.zeros(C)
        eps = self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        for c in range(C):
            members = X[codes == c]
            self.theta_[c] = members.mean(axis=0)
            self.var_[c] = members.var(axis=0) + eps
            self.class_log_prior_[c] = np.log(members.shape[0] / X.shape[0])
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        ll = -0.5 * np.sum(
            np.log(2.0 * np.pi * self.var_[None, :, :])
            + (X[:, None, :] - self.theta_[None, :, :]) ** 2 / self.var_[None, :, :],
            axis=2,
        )
        return ll + self.class_log_prior_[None, :]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]
