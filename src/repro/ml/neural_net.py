"""One-hidden-layer MLP classifier trained with Adam."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.preprocessing import StandardScaler


class MLPClassifier(BaseClassifier):
    """ReLU hidden layer + softmax output, cross-entropy loss, Adam."""

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 120,
        batch_size: int = 32,
        lr: float = 1e-3,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.l2 = l2
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        n, d = Xs.shape
        C = self.classes_.size
        rng = np.random.default_rng(self.seed)
        params = {
            "W1": rng.normal(0, np.sqrt(2.0 / d), size=(d, self.hidden)),
            "b1": np.zeros(self.hidden),
            "W2": rng.normal(0, np.sqrt(2.0 / self.hidden), size=(self.hidden, C)),
            "b2": np.zeros(C),
        }
        m = {k: np.zeros_like(v) for k, v in params.items()}
        v = {k: np.zeros_like(v_) for k, v_ in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        for epoch in range(self.epochs):
            perm = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                batch = perm[start : start + self.batch_size]
                xb, yb = Xs[batch], codes[batch]
                # forward
                h_pre = xb @ params["W1"] + params["b1"]
                h = np.maximum(h_pre, 0.0)
                logits = h @ params["W2"] + params["b2"]
                logits -= logits.max(axis=1, keepdims=True)
                p = np.exp(logits)
                p /= p.sum(axis=1, keepdims=True)
                # backward
                g_logits = p
                g_logits[np.arange(batch.size), yb] -= 1.0
                g_logits /= batch.size
                grads = {
                    "W2": h.T @ g_logits + self.l2 * params["W2"],
                    "b2": g_logits.sum(axis=0),
                }
                g_h = (g_logits @ params["W2"].T) * (h_pre > 0)
                grads["W1"] = xb.T @ g_h + self.l2 * params["W1"]
                grads["b1"] = g_h.sum(axis=0)
                for k in params:
                    m[k] = beta1 * m[k] + (1 - beta1) * grads[k]
                    v[k] = beta2 * v[k] + (1 - beta2) * grads[k] ** 2
                    mh = m[k] / (1 - beta1**t)
                    vh = v[k] / (1 - beta2**t)
                    params[k] -= self.lr * mh / (np.sqrt(vh) + eps)
        self._params = params
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Xs = self._scaler.transform(check_array(X))
        h = np.maximum(Xs @ self._params["W1"] + self._params["b1"], 0.0)
        logits = h @ self._params["W2"] + self._params["b2"]
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
