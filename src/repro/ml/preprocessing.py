"""Feature scaling and label encoding."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_array


class StandardScaler:
    """Zero-mean / unit-variance feature scaling (constant columns pass through)."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = check_array(X)
        if X.shape[1] != self.mean_.size:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler fitted with {self.mean_.size}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder:
    """Map arbitrary labels to integer codes 0..K-1 and back."""

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        codes = np.clip(codes, 0, self.classes_.size - 1)
        if not np.array_equal(self.classes_[codes], y):
            unknown = set(np.unique(y)) - set(self.classes_)
            raise ValueError(f"unseen labels: {sorted(unknown)!r}")
        return codes

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.classes_.size):
            raise ValueError("codes out of range")
        return self.classes_[codes]
