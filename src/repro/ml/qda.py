"""Quadratic Discriminant Analysis with covariance regularization."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array


class QuadraticDiscriminantAnalysis(BaseClassifier):
    """Per-class full-covariance Gaussians.

    ``reg_param`` shrinks each covariance toward a scaled identity, which
    keeps the model usable when a class has fewer samples than features.
    """

    def __init__(self, reg_param: float = 0.1):
        if not 0.0 <= reg_param <= 1.0:
            raise ValueError(f"reg_param must be in [0, 1], got {reg_param}")
        self.reg_param = reg_param

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuadraticDiscriminantAnalysis":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        C, d = self.classes_.size, X.shape[1]
        self.means_ = np.zeros((C, d))
        self._prec = np.zeros((C, d, d))
        self._logdet = np.zeros(C)
        self.priors_ = np.zeros(C)
        for c in range(C):
            members = X[codes == c]
            self.means_[c] = members.mean(axis=0)
            diff = members - self.means_[c]
            cov = diff.T @ diff / max(members.shape[0] - 1, 1)
            scale = max(np.trace(cov) / d, 1e-12)
            cov = (1 - self.reg_param) * cov + self.reg_param * scale * np.eye(d)
            cov += 1e-9 * scale * np.eye(d)
            sign, logdet = np.linalg.slogdet(cov)
            if sign <= 0:
                raise np.linalg.LinAlgError("regularized covariance not PD")
            self._prec[c] = np.linalg.inv(cov)
            self._logdet[c] = logdet
            self.priors_[c] = members.shape[0] / X.shape[0]
        return self

    def _scores(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        n, C = X.shape[0], self.classes_.size
        s = np.zeros((n, C))
        for c in range(C):
            diff = X - self.means_[c]
            maha = np.einsum("ij,jk,ik->i", diff, self._prec[c], diff)
            s[:, c] = -0.5 * (maha + self._logdet[c]) + np.log(self.priors_[c])
        return s

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        s = self._scores(X)
        s -= s.max(axis=1, keepdims=True)
        p = np.exp(s)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.classes_[np.argmax(self._scores(X), axis=1)]
