"""Support vector machines: linear (primal SGD) and RBF (dual ascent).

Multi-class handling is one-vs-rest for both variants.  Features are
standardized internally — SVMs are scale-sensitive and LiteForm's raw
features span many orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.preprocessing import StandardScaler


class LinearSVMClassifier(BaseClassifier):
    """L2-regularized hinge loss trained with Pegasos-style SGD."""

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 0,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.C = C
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        n, d = Xs.shape
        C_cls = self.classes_.size
        lam = 1.0 / (self.C * n)
        rng = np.random.default_rng(self.seed)
        self.coef_ = np.zeros((C_cls, d))
        self.intercept_ = np.zeros(C_cls)
        t = 0
        for epoch in range(self.epochs):
            perm = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                eta = 1.0 / (lam * (t + 10))
                batch = perm[start : start + self.batch_size]
                xb = Xs[batch]
                yb = np.where(codes[batch][None, :] == np.arange(C_cls)[:, None], 1.0, -1.0)
                margins = yb * (self.coef_ @ xb.T + self.intercept_[:, None])
                viol = margins < 1.0
                grad_w = lam * self.coef_ - (viol * yb) @ xb / batch.size
                grad_b = -(viol * yb).mean(axis=1)
                self.coef_ -= eta * grad_w
                self.intercept_ -= eta * grad_b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Xs = self._scaler.transform(check_array(X))
        return Xs @ self.coef_.T + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]


class RBFSVMClassifier(BaseClassifier):
    """Kernel SVM with an RBF kernel, trained by projected gradient ascent
    on the dual with box constraints (a simplified SMO stand-in suitable
    for the few-thousand-sample training sets LiteForm uses)."""

    def __init__(
        self,
        C: float = 1.0,
        gamma: float | str = "scale",
        iterations: int = 200,
        tol: float = 1e-4,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.gamma = gamma
        self.iterations = iterations
        self.tol = tol

    def _gamma_value(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            v = X.var()
            return 1.0 / (X.shape[1] * v) if v > 0 else 1.0
        g = float(self.gamma)
        if g <= 0:
            raise ValueError(f"gamma must be positive, got {g}")
        return g

    @staticmethod
    def _rbf(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
        aa = np.sum(A * A, axis=1)[:, None]
        bb = np.sum(B * B, axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (A @ B.T), 0.0)
        return np.exp(-gamma * d2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RBFSVMClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        self._X = Xs
        self._gamma = self._gamma_value(Xs)
        K = self._rbf(Xs, Xs, self._gamma)
        n = Xs.shape[0]
        C_cls = self.classes_.size
        self._alpha_y = np.zeros((C_cls, n))
        self._bias = np.zeros(C_cls)
        # Lipschitz step: diag of RBF kernel is 1.
        step = 1.0 / max(np.linalg.norm(K, ord=np.inf), 1.0)
        for c in range(C_cls):
            yb = np.where(codes == c, 1.0, -1.0)
            alpha = np.zeros(n)
            for _ in range(self.iterations):
                grad = 1.0 - yb * (K @ (alpha * yb))
                new = np.clip(alpha + step * grad, 0.0, self.C)
                if np.max(np.abs(new - alpha)) < self.tol:
                    alpha = new
                    break
                alpha = new
            self._alpha_y[c] = alpha * yb
            sv = (alpha > 1e-8) & (alpha < self.C - 1e-8)
            if sv.any():
                self._bias[c] = np.mean(yb[sv] - K[sv] @ self._alpha_y[c])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Xs = self._scaler.transform(check_array(X))
        K = self._rbf(Xs, self._X, self._gamma)
        return K @ self._alpha_y.T + self._bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
