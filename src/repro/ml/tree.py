"""CART decision tree with weighted Gini impurity.

Supports sample weights (needed by AdaBoost) and per-node feature
subsampling (needed by Random Forest).  Split search is vectorized: for
each candidate feature the samples are sorted once and class-weight prefix
sums give the impurity of every threshold in O(n) after the sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, check_array


@dataclass
class _Node:
    """One tree node; leaves carry the class-probability distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    proba: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _weighted_gini(class_weights: np.ndarray) -> float:
    total = class_weights.sum()
    if total <= 0:
        return 0.0
    p = class_weights / total
    return float(1.0 - np.sum(p * p))


def _best_split(
    X: np.ndarray,
    codes: np.ndarray,
    w: np.ndarray,
    n_classes: int,
    features: np.ndarray,
) -> tuple[int, float, float]:
    """Best (feature, threshold, impurity_decrease) over candidate features.

    Returns feature -1 when no split improves impurity.
    """
    n = X.shape[0]
    total_w = w.sum()
    parent_cw = np.zeros(n_classes)
    np.add.at(parent_cw, codes, w)
    parent_gini = _weighted_gini(parent_cw)

    best_feature, best_threshold, best_gain = -1, 0.0, 1e-12
    onehot_w = np.zeros((n, n_classes))
    onehot_w[np.arange(n), codes] = w
    for f in features:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        cum = np.cumsum(onehot_w[order], axis=0)  # (n, C) left class weights
        left_w = cum.sum(axis=1)
        right_cum = cum[-1] - cum
        right_w = total_w - left_w
        # Valid split positions: between distinct consecutive values.
        valid = xs[:-1] < xs[1:]
        if not valid.any():
            continue
        lw = left_w[:-1]
        rw = right_w[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            gl = 1.0 - np.sum((cum[:-1] / np.maximum(lw, 1e-300)[:, None]) ** 2, axis=1)
            gr = 1.0 - np.sum(
                (right_cum[:-1] / np.maximum(rw, 1e-300)[:, None]) ** 2, axis=1
            )
        child = (lw * gl + rw * gr) / total_w
        gain = np.where(valid & (lw > 0) & (rw > 0), parent_gini - child, -np.inf)
        i = int(np.argmax(gain))
        if gain[i] > best_gain:
            best_gain = float(gain[i])
            best_feature = int(f)
            best_threshold = float(0.5 * (xs[i] + xs[i + 1]))
    return best_feature, best_threshold, best_gain


class DecisionTreeClassifier(BaseClassifier):
    """CART classifier (Gini criterion).

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None = grow until pure/min_samples).
    min_samples_split:
        Minimum samples required to attempt a split.
    max_features:
        ``None`` (all), ``"sqrt"``, or an int — features sampled per node.
    seed:
        RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        seed: int = 0,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        k = int(self.max_features)
        if not 1 <= k <= d:
            raise ValueError(f"max_features must be in [1, {d}], got {k}")
        return k

    def fit(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        n, d = X.shape
        C = self.classes_.size
        if sample_weight is None:
            w = np.full(n, 1.0 / n)
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError(f"sample_weight must have shape ({n},)")
            if w.min() < 0:
                raise ValueError("sample_weight must be non-negative")
            w = w / max(w.sum(), 1e-300)
        rng = np.random.default_rng(self.seed)
        k_feat = self._n_candidate_features(d)

        self._nodes: list[_Node] = []

        def leaf(idx: np.ndarray) -> int:
            cw = np.zeros(C)
            np.add.at(cw, codes[idx], w[idx])
            total = cw.sum()
            proba = cw / total if total > 0 else np.full(C, 1.0 / C)
            self._nodes.append(_Node(proba=proba))
            return len(self._nodes) - 1

        def build(idx: np.ndarray, depth: int) -> int:
            sub_codes = codes[idx]
            pure = np.all(sub_codes == sub_codes[0])
            depth_cap = self.max_depth is not None and depth >= self.max_depth
            if pure or depth_cap or idx.size < self.min_samples_split:
                return leaf(idx)
            features = (
                np.arange(d)
                if k_feat == d
                else rng.choice(d, size=k_feat, replace=False)
            )
            f, thr, gain = _best_split(X[idx], sub_codes, w[idx], C, features)
            if f < 0:
                return leaf(idx)
            go_left = X[idx, f] <= thr
            left_idx, right_idx = idx[go_left], idx[~go_left]
            if left_idx.size == 0 or right_idx.size == 0:
                return leaf(idx)
            node_id = len(self._nodes)
            self._nodes.append(_Node(feature=f, threshold=thr))
            self._nodes[node_id].left = build(left_idx, depth + 1)
            self._nodes[node_id].right = build(right_idx, depth + 1)
            return node_id

        build(np.arange(n), 0)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        n = X.shape[0]
        out = np.zeros((n, self.classes_.size))
        # Route all samples level-by-level (vectorized over samples).
        current = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        while active.size:
            nodes = current[active]
            still = []
            for nid in np.unique(nodes):
                members = active[nodes == nid]
                node = self._nodes[nid]
                if node.is_leaf:
                    out[members] = node.proba
                else:
                    go_left = X[members, node.feature] <= node.threshold
                    current[members[go_left]] = node.left
                    current[members[~go_left]] = node.right
                    still.append(members)
            active = np.concatenate(still) if still else np.zeros(0, dtype=np.int64)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    @property
    def node_count(self) -> int:
        self._check_fitted()
        return len(self._nodes)
