"""The ten-classifier zoo of Tables 5 and 6."""

from __future__ import annotations

from typing import Callable

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gaussian_process import GaussianProcessClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neural_net import MLPClassifier
from repro.ml.qda import QuadraticDiscriminantAnalysis
from repro.ml.svm import LinearSVMClassifier, RBFSVMClassifier
from repro.ml.tree import DecisionTreeClassifier

#: Row order of Tables 5-6.
CLASSIFIER_NAMES = (
    "Random Forest",
    "KNeighbors",
    "Linear SVM",
    "RBF SVM",
    "Gaussian Process",
    "Decision Tree",
    "Neural Net",
    "AdaBoost",
    "Naive Bayes",
    "QDA",
)


def make_classifier_zoo(seed: int = 0) -> dict[str, Callable[[], BaseClassifier]]:
    """Factories for the ten classifiers the paper evaluates.

    Returns factories (not instances) so cross-validation and repeated
    training get fresh models.
    """
    return {
        "Random Forest": lambda: RandomForestClassifier(n_estimators=50, seed=seed),
        "KNeighbors": lambda: KNeighborsClassifier(n_neighbors=5),
        "Linear SVM": lambda: LinearSVMClassifier(C=1.0, seed=seed),
        "RBF SVM": lambda: RBFSVMClassifier(C=1.0),
        "Gaussian Process": lambda: GaussianProcessClassifier(),
        "Decision Tree": lambda: DecisionTreeClassifier(max_depth=12, seed=seed),
        "Neural Net": lambda: MLPClassifier(seed=seed),
        "AdaBoost": lambda: AdaBoostClassifier(n_estimators=50, seed=seed),
        "Naive Bayes": lambda: GaussianNB(),
        "QDA": lambda: QuadraticDiscriminantAnalysis(),
    }
