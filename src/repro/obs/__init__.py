"""Observability: end-to-end tracing and a metrics registry.

The paper's central quantitative claim is about *overhead* — how little
time LiteForm spends composing relative to the speedup it buys (Figures
8-9).  This package makes that attribution first-class across the whole
stack instead of end-of-run aggregates:

* :mod:`repro.obs.trace` — a thread-safe :class:`Tracer` of nested
  context-manager spans with monotonic timestamps, exported as Chrome
  trace-event JSON (open in Perfetto) or a plain-text flame summary.
  The compose pipeline, the simulated device, the serving layer, and
  the benchmark harness all emit spans on the globally installed tracer
  (:func:`get_tracer`), which defaults to a near-zero-cost no-op.
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket streaming histograms (p50/p95/p99 without
  unbounded storage), rendered as Prometheus text exposition or a JSON
  snapshot.  :class:`repro.serve.ServerMetrics` publishes onto it.

See docs/OBSERVABILITY.md for the API tour and overhead numbers.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]
