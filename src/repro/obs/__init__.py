"""Observability: distributed tracing, metrics, SLOs, and attribution.

The paper's central quantitative claim is about *overhead* — how little
time LiteForm spends composing relative to the speedup it buys (Figures
8-9).  This package makes that attribution first-class across the whole
stack instead of end-of-run aggregates:

* :mod:`repro.obs.trace` — a thread-safe :class:`Tracer` of nested
  context-manager spans with monotonic timestamps, exported as Chrome
  trace-event JSON (open in Perfetto) or a plain-text flame summary.
  Spans carry a propagated :class:`TraceContext` so one logical request
  keeps a single trace id across every component it touches.  The
  compose pipeline, the simulated device, the serving layer, and the
  benchmark harness all emit spans on the globally installed tracer
  (:func:`get_tracer`), which defaults to a near-zero-cost no-op.
* :mod:`repro.obs.merge` — :func:`merge_traces` stitches many tracers
  (one per serving shard, plus the frontend) into one Perfetto file with
  per-component process lanes, reconstructing a request's full causal
  path including reroutes after shard death.
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket streaming histograms (p50/p95/p99 without
  unbounded storage, labels, per-bucket exemplars), rendered as
  Prometheus text exposition (round-trips through
  :func:`parse_prometheus`) or a JSON snapshot.
* :mod:`repro.obs.slo` — declarative :class:`SLOSpec` objectives
  evaluated by an :class:`SLOEngine` with Google-SRE multi-window
  burn-rate alerting, so a fault storm pages before availability
  breaches.
* :mod:`repro.obs.attribution` — :class:`AttributionCollector` turns
  per-request stage breakdowns into p50/p95/p99 tail attribution with
  exemplar trace ids ("the p99 is 71% queue_wait; see req-000042").

See docs/OBSERVABILITY.md for the API tour and overhead numbers.
"""

from repro.obs.attribution import STAGES, AttributionCollector
from repro.obs.merge import merge_traces, trace_ids_by_lane, write_merged
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
    get_registry,
    parse_prometheus,
)
from repro.obs.slo import (
    Alert,
    BurnRatePolicy,
    SLOEngine,
    SLOSpec,
    default_policies,
    default_slos,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    get_tracer,
    mint_trace_id,
    set_tracer,
    span_event,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "mint_trace_id",
    "span_event",
    "get_tracer",
    "set_tracer",
    "tracing",
    "merge_traces",
    "write_merged",
    "trace_ids_by_lane",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prometheus",
    "escape_label_value",
    "format_labels",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "SLOSpec",
    "SLOEngine",
    "BurnRatePolicy",
    "Alert",
    "default_slos",
    "default_policies",
    "AttributionCollector",
    "STAGES",
]
