"""Tail-latency attribution: where does a slow request's time go?

Percentile summaries say *how slow* the tail is; attribution says *why*.
Each completed request reports a stage breakdown — how many milliseconds
it spent in ``queue_wait``, ``compose``, ``launch``, ``retry_backoff``,
``migration`` — and the :class:`AttributionCollector` aggregates two
views of it:

* per-stage :class:`~repro.obs.registry.Histogram` series (labeled
  ``stage="..."``), each observation carrying the request's trace id as
  an **exemplar**, so a tail bucket links to a concrete trace in the
  merged Perfetto file;
* a bounded, seeded reservoir of whole-request records (trace id, total,
  stage breakdown, shard), kept *jointly* so tail attribution is honest:
  "the p99 is 71% queue_wait" requires knowing the stage mix of the
  actual tail requests, which marginal per-stage histograms cannot give.

:meth:`AttributionCollector.report` renders the p50/p95/p99 attribution
table with the dominant stage and an exemplar trace id per tail;
:meth:`AttributionCollector.snapshot` is the JSON twin consumed by
``cli stats --attribution`` / ``--json``.
"""

from __future__ import annotations

import random
import threading

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry

#: Canonical request stages, in pipeline order.
STAGES = ("queue_wait", "compose", "launch", "retry_backoff", "migration")

#: Percentiles the attribution report covers.
ATTRIBUTION_PERCENTILES = (50, 95, 99)


class AttributionCollector:
    """Aggregates per-request stage breakdowns for tail attribution.

    ``registry``/``prefix`` direct the per-stage histogram series (e.g.
    ``cluster_stage_ms{stage="queue_wait"}``); the reservoir keeps at
    most ``capacity`` whole-request records via seeded Algorithm R, so
    memory is bounded and replays are deterministic.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        prefix: str = "stage",
        capacity: int = 512,
        seed: int = 0,
    ):
        self.registry = registry
        self.prefix = prefix
        self.capacity = int(capacity)
        self._rng = random.Random(seed)
        self._records: list[dict] = []
        self._seen = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record(
        self,
        trace_id: str | None,
        stages: dict[str, float],
        total_ms: float | None = None,
        shard: str | None = None,
    ) -> None:
        """Report one completed request's stage breakdown (milliseconds).

        Unknown stage keys are kept (the report shows whatever was
        measured); ``total_ms`` defaults to the sum of the stages.
        """
        clean = {k: float(v) for k, v in stages.items() if v}
        total = float(total_ms) if total_ms is not None else sum(clean.values())
        if self.registry is not None:
            for stage, ms in clean.items():
                self.registry.histogram(
                    f"{self.prefix}_ms",
                    "Per-stage request latency",
                    buckets=DEFAULT_LATENCY_BUCKETS_MS,
                    labels={"stage": stage},
                ).observe(ms, exemplar=trace_id)
            self.registry.histogram(
                f"{self.prefix}_total_ms",
                "End-to-end request latency",
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
            ).observe(total, exemplar=trace_id)
        rec = {
            "trace_id": trace_id,
            "total_ms": total,
            "stages": clean,
            "shard": shard,
        }
        with self._lock:
            self._seen += 1
            if len(self._records) < self.capacity:
                self._records.append(rec)
            else:  # Vitter's Algorithm R
                j = self._rng.randrange(self._seen)
                if j < self.capacity:
                    self._records[j] = rec

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Requests seen (>= records retained)."""
        return self._seen

    def records(self) -> tuple[dict, ...]:
        with self._lock:
            return tuple(self._records)

    def _tail(self, p: float) -> list[dict]:
        """Records at or above the p-th percentile of total latency."""
        recs = self.records()
        if not recs:
            return []
        totals = sorted(r["total_ms"] for r in recs)
        rank = min(len(totals) - 1, max(0, int(round(p / 100.0 * len(totals))) - 1))
        cut = totals[rank]
        return [r for r in recs if r["total_ms"] >= cut]

    def percentile_attribution(self, p: float) -> dict:
        """Stage shares over the requests at/above the p-th percentile.

        Returns ``{"p": p, "cut_ms", "requests", "shares": {stage:
        fraction}, "dominant": (stage, share), "exemplar": trace_id}``
        where the exemplar is the slowest tail request's trace.
        """
        tail = self._tail(p)
        if not tail:
            return {"p": p, "cut_ms": 0.0, "requests": 0, "shares": {},
                    "dominant": None, "exemplar": None}
        stage_sums: dict[str, float] = {}
        for r in tail:
            for stage, ms in r["stages"].items():
                stage_sums[stage] = stage_sums.get(stage, 0.0) + ms
        denom = sum(stage_sums.values()) or 1.0
        shares = {s: ms / denom for s, ms in sorted(stage_sums.items())}
        dominant = max(shares.items(), key=lambda kv: kv[1]) if shares else None
        worst = max(tail, key=lambda r: r["total_ms"])
        return {
            "p": p,
            "cut_ms": min(r["total_ms"] for r in tail),
            "requests": len(tail),
            "shares": shares,
            "dominant": dominant,
            "exemplar": worst["trace_id"],
        }

    def by_shard(self, p: float = 95) -> dict[str, int]:
        """How many tail requests each shard served (who owns the tail)."""
        out: dict[str, int] = {}
        for r in self._tail(p):
            if r["shard"] is not None:
                out[r["shard"]] = out.get(r["shard"], 0) + 1
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly attribution state for ``cli stats --json``."""
        return {
            "requests": self._seen,
            "retained": len(self.records()),
            "percentiles": {
                f"p{p}": self.percentile_attribution(p)
                for p in ATTRIBUTION_PERCENTILES
            },
            "tail_by_shard": self.by_shard(95),
        }

    def report(self) -> str:
        """Human-readable p50/p95/p99 attribution table."""
        if not self._seen:
            return "(no attribution records)"
        lines = [f"attribution over {self._seen} requests "
                 f"({len(self.records())} sampled):"]
        for p in ATTRIBUTION_PERCENTILES:
            att = self.percentile_attribution(p)
            if not att["requests"]:
                continue
            shares = ", ".join(
                f"{stage} {share * 100.0:.0f}%"
                for stage, share in sorted(
                    att["shares"].items(), key=lambda kv: -kv[1]
                )
            )
            dom = att["dominant"]
            lines.append(
                f"  p{p:<3d} >= {att['cut_ms']:8.3f} ms "
                f"({att['requests']:4d} reqs): {shares}"
                + (f"  [dominant: {dom[0]}]" if dom else "")
                + (f"  exemplar={att['exemplar']}" if att["exemplar"] else "")
            )
        shard_tail = self.by_shard(95)
        if shard_tail:
            owners = ", ".join(f"{s}: {n}" for s, n in shard_tail.items())
            lines.append(f"  p95 tail by shard: {owners}")
        return "\n".join(lines)
