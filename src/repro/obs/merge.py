"""Stitch many tracers into one Chrome/Perfetto trace with process lanes.

A sharded serving fleet records spans into *per-shard* tracers (each
shard is logically its own process), so one request that is routed,
queued, retried, and re-routed leaves fragments in several disjoint span
trees.  :func:`merge_traces` reassembles them: every tracer becomes its
own process lane (``pid`` plus a ``process_name`` metadata event) on a
**shared time origin**, and every span carries its ``trace_id`` in
``args``, so the full causal path of any request can be followed across
lanes — in the Perfetto UI, click a span and search for its
``trace_id``, or run a query like::

    select * from args where string_value = 'req-000042'

:func:`trace_ids_by_lane` is the programmatic version the chaos smoke
test uses: which trace ids appear in which lane, e.g. to assert that a
request re-routed after a shard death shows up in two shards' lanes
under a single trace id.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import NullTracer, Tracer, span_event


def _finished(tracer: Tracer | NullTracer):
    return [s for s in tracer.spans if s.end_s is not None]


def merge_traces(lanes: dict[str, Tracer | NullTracer]) -> dict:
    """Merge named tracers into one Chrome trace-event JSON object.

    ``lanes`` maps a lane name (e.g. ``"frontend"``, ``"shard-0"``) to
    its tracer.  Lane order is preserved: lane *i* becomes ``pid = i``
    with ``process_name`` / ``process_sort_index`` metadata events so
    viewers render one labelled track per component.  All spans share
    the earliest start across every lane as the time origin, so
    cross-lane timing (a request leaving the frontend and arriving on a
    shard) reads directly off the timeline.
    """
    finished = {name: _finished(t) for name, t in lanes.items()}
    origin = min(
        (s.start_s for spans in finished.values() for s in spans),
        default=0.0,
    )
    events: list[dict] = []
    for pid, (name, spans) in enumerate(finished.items()):
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
             "args": {"sort_index": pid}}
        )
        events.extend(span_event(s, pid=pid, origin_s=origin) for s in spans)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_merged(lanes: dict[str, Tracer | NullTracer], path: str | Path) -> Path:
    """Serialize :func:`merge_traces` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(merge_traces(lanes), indent=1))
    return path


def trace_ids_by_lane(lanes: dict[str, Tracer | NullTracer]) -> dict[str, set[str]]:
    """``{lane: {trace_id, ...}}`` for every tagged span — the cross-lane
    linkage view (a trace id in two lanes means the request touched two
    components)."""
    return {
        name: {s.trace_id for s in _finished(t) if s.trace_id is not None}
        for name, t in lanes.items()
    }
