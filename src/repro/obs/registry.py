"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregate side of :mod:`repro.obs` (the tracer is
the per-event side).  Three instrument types, all thread-safe:

* :class:`Counter` — monotonically increasing total (optionally backed
  by a callback so existing scoreboards can expose their fields without
  changing their increment sites);
* :class:`Gauge` — a value that goes up and down (or a callback);
* :class:`Histogram` — fixed bucket boundaries with streaming count /
  sum / min / max, giving p50/p95/p99 by linear interpolation inside the
  winning bucket.  Memory is O(#buckets) regardless of traffic, unlike
  an append-only latency list.

:class:`MetricsRegistry` name-spaces instruments and renders them as a
Prometheus-style text exposition (:meth:`~MetricsRegistry.render_prometheus`)
or a JSON snapshot (:meth:`~MetricsRegistry.snapshot`).  A process-wide
default registry is available via :func:`get_registry`.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram boundaries for millisecond latencies (upper bounds;
#: a +Inf bucket is implicit).  Log-spaced from 10 us to 10 s.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10_000.0,
)

#: Percentiles every summary reports (mirrors serve.metrics.PERCENTILES).
SUMMARY_PERCENTILES = (50, 95, 99)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (must match {_NAME_RE.pattern})")
    return name


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", callback: Callable[[], float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        if self._callback is not None:
            raise RuntimeError(f"counter {self.name} is callback-backed; inc() is invalid")
        with self._lock:
            self._value += amount

    def bind(self, callback: Callable[[], float]) -> None:
        """Re-point a callback-backed counter at a new source."""
        self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", callback: Callable[[], float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed; set() is invalid")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed; inc() is invalid")
        with self._lock:
            self._value += amount

    def bind(self, callback: Callable[[], float]) -> None:
        self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Histogram:
    """Fixed-bucket histogram with streaming percentile estimates.

    Storage is one integer per bucket plus five scalars — constant in the
    number of observations.  ``percentile`` locates the bucket holding the
    requested rank and interpolates linearly between its bounds, clamped
    to the observed min/max so small series do not report bucket edges
    wildly beyond the data.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS_MS
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0-100) via in-bucket interpolation."""
        if self._count == 0:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        rank = p / 100.0 * self._count
        cumulative = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lower = self.bounds[i - 1] if i > 0 else self._min
                upper = self.bounds[i] if i < len(self.bounds) else self._max
                lower = max(lower, self._min)
                upper = min(upper, self._max)
                if upper <= lower:
                    return float(upper)
                frac = (rank - cumulative) / c
                return float(lower + frac * (upper - lower))
            cumulative += c
        return float(self._max)  # pragma: no cover - unreachable

    def summary(self) -> dict:
        """``{"p50", "p95", "p99", "mean", "max"}`` — the serving contract."""
        out = {f"p{p}": self.percentile(p) for p in SUMMARY_PERCENTILES}
        out["mean"] = self.mean
        out["max"] = self.max
        return out

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (Prometheus ``le`` style)."""
        out: dict[str, int] = {}
        cumulative = 0
        for bound, c in zip(self.bounds, self._counts):
            cumulative += c
            out[_format_bound(bound)] = cumulative
        out["+Inf"] = self._count
        return out


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


class MetricsRegistry:
    """Named collection of instruments with text / JSON exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                callback = kwargs.get("callback")
                if callback is not None:
                    existing.bind(callback)
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", callback: Callable[[], float] | None = None
    ) -> Counter:
        """Get or create a counter (re-binding the callback if given)."""
        return self._get_or_create(Counter, name, help, callback=callback)

    def gauge(
        self, name: str, help: str = "", callback: Callable[[], float] | None = None
    ) -> Gauge:
        """Get or create a gauge (re-binding the callback if given)."""
        return self._get_or_create(Gauge, name, help, callback=callback)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create a histogram (bucket bounds fixed at creation)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Forget every instrument (used between CLI runs and tests)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly view: scalars for counters/gauges, dicts for
        histograms (count, sum, mean, max, percentiles, buckets)."""
        out: dict[str, object] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {
                    "count": m.count,
                    "sum": m.sum,
                    **m.summary(),
                    "buckets": m.bucket_counts(),
                }
            else:
                out[name] = m.value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                for le, c in m.bucket_counts().items():
                    lines.append(f'{name}_bucket{{le="{le}"}} {c}')
                lines.append(f"{name}_sum {m.sum:g}")
                lines.append(f"{name}_count {m.count}")
            else:
                lines.append(f"{name} {m.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
#: Process-wide default registry (Prometheus-style global).
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry
