"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregate side of :mod:`repro.obs` (the tracer is
the per-event side).  Three instrument types, all thread-safe:

* :class:`Counter` — monotonically increasing total (optionally backed
  by a callback so existing scoreboards can expose their fields without
  changing their increment sites);
* :class:`Gauge` — a value that goes up and down (or a callback);
* :class:`Histogram` — fixed bucket boundaries with streaming count /
  sum / min / max, giving p50/p95/p99 by linear interpolation inside the
  winning bucket.  Memory is O(#buckets) regardless of traffic, unlike
  an append-only latency list.

Instruments may carry **labels** (``registry.counter("slo_alerts_total",
labels={"severity": "page"})``); each distinct label set is its own time
series, keyed ``name{k="v",...}``.  Histograms additionally accept an
**exemplar** per observation (``h.observe(42.0, exemplar=trace_id)``) —
the last exemplar per bucket is kept, linking tail buckets to concrete
traces the way OpenMetrics exemplars do.

:class:`MetricsRegistry` name-spaces instruments and renders them as a
Prometheus text exposition, format 0.0.4
(:meth:`~MetricsRegistry.render_prometheus`: cumulative ``le`` buckets
ending in ``+Inf``, ``_sum``/``_count`` series, escaped label values) or
a JSON snapshot (:meth:`~MetricsRegistry.snapshot`).
:func:`parse_prometheus` is the matching parser; rendering and parsing
round-trip.  A process-wide default registry is available via
:func:`get_registry`.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram boundaries for millisecond latencies (upper bounds;
#: a +Inf bucket is implicit).  Log-spaced from 10 us to 10 s.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10_000.0,
)

#: Percentiles every summary reports (mirrors serve.metrics.PERCENTILES).
SUMMARY_PERCENTILES = (50, 95, 99)


#: Prometheus label-name grammar (no colons, unlike metric names).
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (must match {_NAME_RE.pattern})")
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec (``\\``, ``"``, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ('"', "\\"):
            out.append(nxt)
        else:  # unknown escape: keep verbatim
            out.append("\\" + nxt)
    return "".join(out)


def _check_labels(labels: dict | None) -> dict[str, str]:
    if not labels:
        return {}
    out: dict[str, str] = {}
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        out[key] = str(labels[key])
    return out


def format_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` with escaped values; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _series_key(name: str, labels: dict[str, str]) -> str:
    return name + format_labels(labels)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
        labels: dict | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        if self._callback is not None:
            raise RuntimeError(f"counter {self.name} is callback-backed; inc() is invalid")
        with self._lock:
            self._value += amount

    def bind(self, callback: Callable[[], float]) -> None:
        """Re-point a callback-backed counter at a new source."""
        self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
        labels: dict | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed; set() is invalid")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed; inc() is invalid")
        with self._lock:
            self._value += amount

    def bind(self, callback: Callable[[], float]) -> None:
        self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Histogram:
    """Fixed-bucket histogram with streaming percentile estimates.

    Storage is one integer per bucket plus five scalars — constant in the
    number of observations.  ``percentile`` locates the bucket holding the
    requested rank and interpolates linearly between its bounds, clamped
    to the observed min/max so small series do not report bucket edges
    wildly beyond the data.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labels: dict | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS_MS
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._exemplars: dict[int, tuple[str, float]] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record ``value``; an optional ``exemplar`` (e.g. a trace id)
        is remembered for the bucket the value lands in (last one wins),
        linking that bucket's tail to a concrete trace."""
        value = float(value)
        idx = self._bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if exemplar is not None:
                self._exemplars[idx] = (str(exemplar), value)

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0-100) via in-bucket interpolation."""
        if self._count == 0:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        rank = p / 100.0 * self._count
        cumulative = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lower = self.bounds[i - 1] if i > 0 else self._min
                upper = self.bounds[i] if i < len(self.bounds) else self._max
                lower = max(lower, self._min)
                upper = min(upper, self._max)
                if upper <= lower:
                    return float(upper)
                frac = (rank - cumulative) / c
                return float(lower + frac * (upper - lower))
            cumulative += c
        return float(self._max)  # pragma: no cover - unreachable

    def summary(self) -> dict:
        """``{"p50", "p95", "p99", "mean", "max"}`` — the serving contract."""
        out = {f"p{p}": self.percentile(p) for p in SUMMARY_PERCENTILES}
        out["mean"] = self.mean
        out["max"] = self.max
        return out

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (Prometheus ``le`` style)."""
        out: dict[str, int] = {}
        cumulative = 0
        for bound, c in zip(self.bounds, self._counts):
            cumulative += c
            out[_format_bound(bound)] = cumulative
        out["+Inf"] = self._count
        return out

    def exemplars(self) -> dict[str, dict]:
        """Per-bucket exemplars, keyed like :meth:`bucket_counts`:
        ``{"10": {"trace_id": "req-000042", "value": 7.3}, ...}``."""
        with self._lock:
            items = dict(self._exemplars)
        out: dict[str, dict] = {}
        for idx, (trace_id, value) in sorted(items.items()):
            le = self.bounds[idx] if idx < len(self.bounds) else None
            key = _format_bound(le) if le is not None else "+Inf"
            out[key] = {"trace_id": trace_id, "value": value}
        return out


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


class MetricsRegistry:
    """Named collection of instruments with text / JSON exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels=None, **kwargs):
        key = _series_key(_check_name(name), _check_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {key!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                callback = kwargs.get("callback")
                if callback is not None:
                    existing.bind(callback)
                return existing
            metric = cls(name, help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
        labels: dict | None = None,
    ) -> Counter:
        """Get or create a counter (re-binding the callback if given)."""
        return self._get_or_create(Counter, name, help, labels=labels, callback=callback)

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
        labels: dict | None = None,
    ) -> Gauge:
        """Get or create a gauge (re-binding the callback if given)."""
        return self._get_or_create(Gauge, name, help, labels=labels, callback=callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labels: dict | None = None,
    ) -> Histogram:
        """Get or create a histogram (bucket bounds fixed at creation)."""
        return self._get_or_create(Histogram, name, help, labels=labels, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up by series key — bare name, or ``name{k="v"}`` for a
        labeled series."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Forget every instrument (used between CLI runs and tests)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly view keyed by series key: scalars for
        counters/gauges, dicts for histograms (count, sum, mean, max,
        percentiles, buckets, exemplars when present)."""
        out: dict[str, object] = {}
        for key in self.names():
            m = self._metrics[key]
            if isinstance(m, Histogram):
                entry = {
                    "count": m.count,
                    "sum": m.sum,
                    **m.summary(),
                    "buckets": m.bucket_counts(),
                }
                exemplars = m.exemplars()
                if exemplars:
                    entry["exemplars"] = exemplars
                out[key] = entry
            else:
                out[key] = m.value
        return out

    def render_prometheus(self, include_exemplars: bool = False) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Conformance notes: histogram ``le`` buckets are cumulative and
        end with ``le="+Inf"``, every histogram emits ``_sum`` and
        ``_count``, and label values are escaped.  ``# HELP``/``# TYPE``
        headers appear once per metric family even when the family has
        many labeled series.  With ``include_exemplars=True``, bucket
        lines gain an OpenMetrics-style ``# {trace_id="..."} value``
        suffix (ignored by :func:`parse_prometheus`).
        """
        lines: list[str] = []
        headered: set[str] = set()
        for key in self.names():
            m = self._metrics[key]
            if m.name not in headered:
                headered.add(m.name)
                if m.help:
                    lines.append(f"# HELP {m.name} {m.help}")
                lines.append(f"# TYPE {m.name} {m.kind}")
            labels = dict(m.labels)
            if isinstance(m, Histogram):
                exemplars = m.exemplars() if include_exemplars else {}
                for le, c in m.bucket_counts().items():
                    line = f"{m.name}_bucket{format_labels({**labels, 'le': le})} {c}"
                    ex = exemplars.get(le)
                    if ex is not None:
                        tid = escape_label_value(ex["trace_id"])
                        line += f' # {{trace_id="{tid}"}} {ex["value"]:g}'
                    lines.append(line)
                lines.append(f"{m.name}_sum{format_labels(labels)} {m.sum:g}")
                lines.append(f"{m.name}_count{format_labels(labels)} {m.count}")
            else:
                lines.append(f"{m.name}{format_labels(labels)} {m.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Text-format parser (the round-trip counterpart of render_prometheus).

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    # Exact label grammar (not greedy `.*`): an exemplar suffix also
    # contains `{...}`, and must not be folded into the label set.
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s*#.*)?$"  # OpenMetrics-style exemplar suffix, ignored
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(text: str) -> dict[str, str]:
    return {
        key: unescape_label_value(raw)
        for key, raw in _LABEL_PAIR_RE.findall(text)
    }


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse a 0.0.4 text exposition back into families.

    Returns ``{family: {"type": ..., "help": ..., "samples": [...]}}``
    where each sample is ``(sample_name, labels_dict, value)`` —
    histogram families carry their ``_bucket``/``_sum``/``_count``
    samples.  Exemplar suffixes and unknown comments are ignored, so the
    output of :meth:`MetricsRegistry.render_prometheus` (with or without
    exemplars) round-trips.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str) -> dict:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name.removesuffix(suffix)
            if trimmed != sample_name and families.get(trimmed, {}).get("type") == "histogram":
                base = trimmed
                break
        return families.setdefault(
            base, {"type": None, "help": None, "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                fam = families.setdefault(
                    parts[2], {"type": None, "help": None, "samples": []}
                )
                fam["type"] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                fam = families.setdefault(
                    parts[2], {"type": None, "help": None, "samples": []}
                )
                fam["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = float(match.group("value"))
        family_for(name)["samples"].append((name, labels, value))
    return families


# ----------------------------------------------------------------------
#: Process-wide default registry (Prometheus-style global).
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry
