"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` states an objective over a request-level **signal**
(``availability``, ``latency`` with a threshold, or ``deadline`` hit
rate): "99% of attempts succeed", "95% of requests finish within 50 ms".
The :class:`SLOEngine` classifies every recorded request outcome into
good/bad events per SLO and evaluates **burn rate** — the rate at which
the error budget (``1 - target``) is being consumed, where burn rate 1
means the budget lasts exactly the evaluation horizon.

Alerting follows the Google SRE multi-window multi-burn-rate recipe: a
:class:`BurnRatePolicy` fires only when *both* a long and a short window
exceed the policy's burn-rate factor.  The long window provides evidence
that real budget was spent; the short window guarantees the condition is
*still* happening (fast reset, no alerting on stale history).  The
default pair mirrors the SRE workbook ratios — a fast-burn ``page``
(factor 14.4, short window 1/12 of the long) and a slow-burn ``ticket``
(factor 6, longer windows) — scaled down from hours to the virtual-time
milliseconds of a replay via :func:`default_policies`.

The point of burn-rate alerting over a plain threshold: a fault storm
(e.g. a shard death failing a burst of attempts) trips the fast-burn
page while the *cumulative* SLI is still above target — the alert leads
the breach instead of reporting it.  Fired alerts are recorded as
:class:`Alert` objects, as ``slo_alerts_total`` counters (labeled by SLO
and severity) on an optional registry, and as zero-length spans on an
optional tracer lane so they land in the merged trace next to the
requests that caused them.

Timestamps are caller-supplied milliseconds (the serving stack's virtual
clock), so evaluation is deterministic and replayable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer

#: Signals an SLO can be declared over.
SIGNALS = ("availability", "latency", "deadline")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective.

    ``signal`` selects what counts as *good*:

    * ``availability`` — the attempt succeeded;
    * ``latency`` — the attempt succeeded within ``threshold_ms``;
    * ``deadline`` — the request hit its scheduling deadline (outcomes
      with no deadline information are skipped for this SLO).
    """

    name: str
    signal: str
    target: float
    threshold_ms: float | None = None
    description: str = ""

    def __post_init__(self):
        if self.signal not in SIGNALS:
            raise ValueError(f"unknown SLO signal {self.signal!r} (want one of {SIGNALS})")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {self.target}")
        if self.signal == "latency" and self.threshold_ms is None:
            raise ValueError("latency SLO needs threshold_ms")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def classify(
        self, *, ok: bool, latency_ms: float | None, deadline_hit: bool | None
    ) -> bool | None:
        """Good (True), bad (False), or not-applicable (None)."""
        if self.signal == "availability":
            return ok
        if self.signal == "latency":
            if not ok:
                return False
            if latency_ms is None:
                return None
            return latency_ms <= self.threshold_ms
        if deadline_hit is None:  # deadline signal, no deadline set
            return None
        return bool(deadline_hit)


@dataclass(frozen=True)
class BurnRatePolicy:
    """Fire ``severity`` when both windows burn faster than ``factor``."""

    severity: str
    factor: float
    long_window_ms: float
    short_window_ms: float


def default_policies(scale_ms: float = 1000.0) -> tuple[BurnRatePolicy, ...]:
    """SRE-workbook pair scaled so the fast-burn long window is
    ``scale_ms`` (the workbook's 1h/5m and 6h/30m ratios preserved)."""
    return (
        BurnRatePolicy("page", 14.4, long_window_ms=scale_ms,
                       short_window_ms=scale_ms / 12.0),
        BurnRatePolicy("ticket", 6.0, long_window_ms=6.0 * scale_ms,
                       short_window_ms=scale_ms / 2.0),
    )


def default_slos(latency_threshold_ms: float = 50.0) -> tuple[SLOSpec, ...]:
    """The serving stack's stock objectives."""
    return (
        SLOSpec("availability", "availability", 0.99,
                description="99% of serve attempts succeed"),
        SLOSpec("latency_p99", "latency", 0.99, threshold_ms=latency_threshold_ms,
                description=f"99% of requests finish within {latency_threshold_ms:g} ms"),
        SLOSpec("deadline_hit", "deadline", 0.90,
                description="90% of deadline-bearing requests hit their deadline"),
    )


@dataclass(frozen=True)
class Alert:
    """One rising-edge burn-rate alert."""

    slo: str
    severity: str
    fired_at_ms: float
    burn_rate_long: float
    burn_rate_short: float
    factor: float
    #: SLI over *all* events so far at fire time — shows the alert led
    #: the cumulative breach rather than trailing it.
    cumulative_sli: float

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "fired_at_ms": self.fired_at_ms,
            "burn_rate_long": self.burn_rate_long,
            "burn_rate_short": self.burn_rate_short,
            "factor": self.factor,
            "cumulative_sli": self.cumulative_sli,
        }


@dataclass
class _Tracker:
    """Windowed good/bad events plus alert state for one SLO."""

    spec: SLOSpec
    events: deque = field(default_factory=deque)  # (t_ms, good)
    good_total: int = 0
    bad_total: int = 0
    #: severities currently above threshold (for rising-edge detection).
    active: set = field(default_factory=set)

    def record(self, t_ms: float, good: bool) -> None:
        self.events.append((t_ms, good))
        if good:
            self.good_total += 1
        else:
            self.bad_total += 1

    def prune(self, t_ms: float, horizon_ms: float) -> None:
        while self.events and self.events[0][0] < t_ms - horizon_ms:
            self.events.popleft()

    def bad_fraction(self, t_ms: float, window_ms: float) -> float:
        good = bad = 0
        for ts, is_good in reversed(self.events):
            if ts < t_ms - window_ms:
                break
            if is_good:
                good += 1
            else:
                bad += 1
        total = good + bad
        return bad / total if total else 0.0

    def burn_rate(self, t_ms: float, window_ms: float) -> float:
        return self.bad_fraction(t_ms, window_ms) / self.spec.error_budget

    def cumulative_sli(self) -> float:
        total = self.good_total + self.bad_total
        return self.good_total / total if total else 1.0


class SLOEngine:
    """Evaluates a set of SLOs over a stream of request outcomes."""

    def __init__(
        self,
        specs: tuple[SLOSpec, ...] | list[SLOSpec] | None = None,
        policies: tuple[BurnRatePolicy, ...] | list[BurnRatePolicy] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.specs = tuple(specs) if specs is not None else default_slos()
        self.policies = tuple(policies) if policies is not None else default_policies()
        self.registry = registry
        self.tracer = tracer
        self._trackers = {spec.name: _Tracker(spec) for spec in self.specs}
        self._alerts: list[Alert] = []
        self._horizon_ms = max(
            (p.long_window_ms for p in self.policies), default=0.0
        )

    # ------------------------------------------------------------------
    def record(
        self,
        t_ms: float,
        *,
        ok: bool,
        latency_ms: float | None = None,
        deadline_hit: bool | None = None,
    ) -> list[Alert]:
        """Classify one request outcome into every SLO and re-evaluate
        burn rates; returns alerts newly fired at this instant."""
        for tracker in self._trackers.values():
            good = tracker.spec.classify(
                ok=ok, latency_ms=latency_ms, deadline_hit=deadline_hit
            )
            if good is not None:
                tracker.record(t_ms, good)
        return self.evaluate(t_ms)

    def evaluate(self, t_ms: float) -> list[Alert]:
        """Rising-edge burn-rate check across every (SLO, policy) pair."""
        fired: list[Alert] = []
        for tracker in self._trackers.values():
            tracker.prune(t_ms, self._horizon_ms)
            for policy in self.policies:
                burn_long = tracker.burn_rate(t_ms, policy.long_window_ms)
                burn_short = tracker.burn_rate(t_ms, policy.short_window_ms)
                breaching = burn_long >= policy.factor and burn_short >= policy.factor
                if breaching and policy.severity not in tracker.active:
                    tracker.active.add(policy.severity)
                    alert = Alert(
                        slo=tracker.spec.name,
                        severity=policy.severity,
                        fired_at_ms=t_ms,
                        burn_rate_long=burn_long,
                        burn_rate_short=burn_short,
                        factor=policy.factor,
                        cumulative_sli=tracker.cumulative_sli(),
                    )
                    fired.append(alert)
                    self._alerts.append(alert)
                    self._emit(alert)
                elif not breaching:
                    tracker.active.discard(policy.severity)
        return fired

    def _emit(self, alert: Alert) -> None:
        if self.registry is not None:
            self.registry.counter(
                "slo_alerts_total",
                "Burn-rate alerts fired",
                labels={"slo": alert.slo, "severity": alert.severity},
            ).inc()
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(
                "slo_alert",
                slo=alert.slo,
                severity=alert.severity,
                burn_rate_long=round(alert.burn_rate_long, 3),
                burn_rate_short=round(alert.burn_rate_short, 3),
                cumulative_sli=round(alert.cumulative_sli, 6),
            ):
                pass

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> tuple[Alert, ...]:
        return tuple(self._alerts)

    def cumulative_sli(self, slo: str) -> float:
        return self._trackers[slo].cumulative_sli()

    def snapshot(self) -> dict:
        """JSON-friendly state: per-SLO SLI/budget plus fired alerts."""
        slos = {}
        for name, tracker in self._trackers.items():
            sli = tracker.cumulative_sli()
            spec = tracker.spec
            slos[name] = {
                "signal": spec.signal,
                "target": spec.target,
                "threshold_ms": spec.threshold_ms,
                "sli": sli,
                "met": sli >= spec.target,
                "good": tracker.good_total,
                "bad": tracker.bad_total,
                "budget_consumed": (
                    (1.0 - sli) / spec.error_budget if spec.error_budget else 0.0
                ),
            }
        return {
            "slos": slos,
            "alerts": [a.as_dict() for a in self._alerts],
        }

    def report(self) -> str:
        """Human-readable SLO/alert table."""
        snap = self.snapshot()
        lines = [
            f"{'slo':16s} {'signal':14s} {'target':>8s} {'sli':>8s} "
            f"{'budget%':>8s} {'met':>5s}"
        ]
        for name, row in snap["slos"].items():
            lines.append(
                f"{name:16s} {row['signal']:14s} {row['target']:8.4f} "
                f"{row['sli']:8.4f} {row['budget_consumed'] * 100:7.1f}% "
                f"{'yes' if row['met'] else 'NO':>5s}"
            )
        if self._alerts:
            lines.append("alerts:")
            for a in self._alerts:
                lines.append(
                    f"  [{a.severity}] {a.slo} @ {a.fired_at_ms:.1f} ms "
                    f"(burn {a.burn_rate_long:.1f}x/{a.burn_rate_short:.1f}x "
                    f"over {a.factor:.1f}x, sli-at-fire {a.cumulative_sli:.4f})"
                )
        else:
            lines.append("alerts: none")
        return "\n".join(lines)
