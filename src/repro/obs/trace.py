"""Nested-span tracing with Chrome trace-event export.

A :class:`Tracer` records wall-clock spans (monotonic ``perf_counter``
timestamps) arranged in a per-thread nesting stack::

    tracer = Tracer()
    with tracer.span("bucket_search", matrix=name) as s:
        ...
        s.set(buckets=len(result))

Spans can carry a **distributed trace context**: a :class:`TraceContext`
(trace id plus an optional causal parent span id) minted once at an
ingress point and threaded through every component that touches the same
logical request.  A span opened with ``tracer.span(name, ctx=ctx)``
records ``ctx.trace_id``; child spans opened below it on the same stack
inherit the trace id automatically, so one explicit ``ctx`` at the
request root tags the whole subtree — including spans recorded by a
*different* tracer in a different component (each serving shard owns a
private tracer; see :func:`repro.obs.merge.merge_traces` for stitching
the lanes back together by trace id).

Finished spans export to the Chrome trace-event JSON format (open
``chrome://tracing`` or https://ui.perfetto.dev and load the file) via
:meth:`Tracer.chrome_trace` / :meth:`Tracer.write`, and to a plain-text
flame summary via :meth:`Tracer.flame_summary`.

The module-level tracer defaults to a shared :class:`NullTracer` whose
``span`` is a no-op returning a reusable context manager, so
instrumented hot paths (``LiteForm.compose_csr``, ``SpMMServer.serve``,
``SimulatedDevice.measure``) pay only a function call and an empty
``with`` block when tracing is disabled — under 2% of a single compose
(asserted by ``tests/test_obs_integration.py``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

#: Monotonic clock used for every span timestamp.
CLOCK = time.perf_counter

#: Process-wide source of fresh trace ids (see :func:`mint_trace_id`).
_trace_ids = itertools.count(1)


def mint_trace_id(prefix: str = "trace") -> str:
    """A fresh process-unique trace id (``prefix-000001``, ...)."""
    return f"{prefix}-{next(_trace_ids):06d}"


@dataclass(frozen=True)
class TraceContext:
    """Propagated identity of one logical request across components.

    ``trace_id`` names the request; ``parent_span_id`` optionally points
    at the span (in the *originating* tracer) that caused the work, so a
    merged trace can reconstruct causality across tracer lanes.  The
    context is immutable — hand the same instance to every component the
    request flows through.
    """

    trace_id: str
    parent_span_id: int | None = None

    @classmethod
    def mint(cls, prefix: str = "trace") -> "TraceContext":
        """Mint a context with a fresh process-unique trace id."""
        return cls(trace_id=mint_trace_id(prefix))

    def child(self, span_id: int) -> "TraceContext":
        """The same trace, re-parented under ``span_id``."""
        return TraceContext(trace_id=self.trace_id, parent_span_id=span_id)


@dataclass
class Span:
    """One finished (or active) traced operation."""

    name: str
    span_id: int
    parent_id: int | None
    tid: int
    start_s: float
    end_s: float | None = None
    attributes: dict = field(default_factory=dict)
    #: Distributed trace id (inherited from the parent span or set by an
    #: explicit :class:`TraceContext`); None for untagged spans.
    trace_id: str | None = None

    def set(self, **attributes: object) -> "Span":
        """Attach attributes to the span mid-flight; returns ``self``."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3


class _NullSpan:
    """The do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: Single reusable no-op span: stateless, so safe to re-enter and share.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` returns the shared no-op context."""

    enabled = False

    def span(
        self, name: str, /, ctx: object = None, **attributes: object
    ) -> _NullSpan:  # noqa: ARG002
        return NULL_SPAN

    @property
    def spans(self) -> tuple[Span, ...]:
        return ()


#: The shared disabled tracer installed by default.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager pairing a live :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class Tracer:
    """Thread-safe recorder of nested wall-clock spans."""

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = name
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self, name: str, /, ctx: TraceContext | None = None, **attributes: object
    ) -> _SpanContext:
        """Open a span; use as ``with tracer.span("stage", key=val) as s:``.

        ``ctx`` tags the span (and, via stack inheritance, its whole
        subtree) with a distributed trace id.  Without ``ctx`` the span
        inherits the trace id of its parent on the nesting stack, so only
        request roots need an explicit context.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        attrs = dict(attributes) if attributes else {}
        if ctx is not None:
            trace_id = ctx.trace_id
            if parent is None and ctx.parent_span_id is not None:
                # Causal link into another tracer's lane (e.g. the
                # cluster frontend's ingress span).
                attrs["link_span_id"] = ctx.parent_span_id
        else:
            trace_id = parent.trace_id if parent is not None else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            tid=threading.get_ident(),
            start_s=CLOCK(),
            attributes=attrs,
            trace_id=trace_id,
        )
        return _SpanContext(self, sp)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end_s = CLOCK()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order exit)
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    def reset(self) -> None:
        """Drop all finished spans (active spans are unaffected)."""
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------------
    @property
    def spans(self) -> tuple[Span, ...]:
        """Finished spans in start order."""
        with self._lock:
            return tuple(sorted(self._finished, key=lambda s: s.start_s))

    def roots(self) -> tuple[Span, ...]:
        """Finished spans with no parent."""
        return tuple(s for s in self.spans if s.parent_id is None)

    def children_of(self, span: Span) -> tuple[Span, ...]:
        """Direct children of ``span``, in start order."""
        return tuple(s for s in self.spans if s.parent_id == span.span_id)

    def coverage(self) -> float:
        """Fraction of the traced wall-clock interval covered by root spans.

        The interval runs from the earliest span start to the latest span
        end; overlapping root spans (threads) are merged before summing.
        """
        roots = [s for s in self.spans if s.end_s is not None and s.parent_id is None]
        every = [s for s in self.spans if s.end_s is not None]
        if not every:
            return 0.0
        t0 = min(s.start_s for s in every)
        t1 = max(s.end_s for s in every)
        wall = t1 - t0
        if wall <= 0:
            return 1.0
        covered = 0.0
        cur_start = cur_end = None
        for s in sorted(roots, key=lambda s: s.start_s):
            if cur_end is None or s.start_s > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = s.start_s, s.end_s
            else:
                cur_end = max(cur_end, s.end_s)
        if cur_end is not None:
            covered += cur_end - cur_start
        return min(1.0, covered / wall)

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (complete ``"X"`` events).

        Loadable in ``chrome://tracing`` or Perfetto.  Timestamps are
        microseconds relative to the first span so the viewer timeline
        starts at zero.
        """
        spans = [s for s in self.spans if s.end_s is not None]
        origin = min((s.start_s for s in spans), default=0.0)
        pid = os.getpid()
        events = [span_event(s, pid=pid, origin_s=origin) for s in spans]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace(), indent=1))
        return path

    def flame_summary(self) -> str:
        """Plain-text aggregate: per span name, count / total / self time.

        *self* time excludes the time spent in a span's direct children,
        so the column sums to (roughly) the traced wall time.
        """
        spans = [s for s in self.spans if s.end_s is not None]
        if not spans:
            return "(no spans recorded)"
        child_s: dict[int, float] = {}
        for s in spans:
            if s.parent_id is not None:
                child_s[s.parent_id] = child_s.get(s.parent_id, 0.0) + s.duration_s
        agg: dict[str, list[float]] = {}
        for s in spans:
            row = agg.setdefault(s.name, [0.0, 0.0, 0.0])
            row[0] += 1
            row[1] += s.duration_s
            row[2] += s.duration_s - child_s.get(s.span_id, 0.0)
        wall = sum(s.duration_s for s in spans if s.parent_id is None)
        lines = [f"{'span':24s} {'count':>7s} {'total_ms':>10s} {'self_ms':>10s} {'self%':>7s}"]
        for name, (count, total, self_s) in sorted(
            agg.items(), key=lambda kv: -kv[1][2]
        ):
            pct = (self_s / wall * 100.0) if wall > 0 else 0.0
            lines.append(
                f"{name:24s} {int(count):7d} {total * 1e3:10.3f} "
                f"{self_s * 1e3:10.3f} {pct:6.1f}%"
            )
        return "\n".join(lines)


def span_event(span: Span, *, pid: int, origin_s: float) -> dict:
    """One finished span as a Chrome complete (``"X"``) trace event.

    Shared by :meth:`Tracer.chrome_trace` and the cross-tracer
    :func:`repro.obs.merge.merge_traces` exporter (which assigns each
    tracer its own ``pid`` lane).  ``trace_id`` travels in ``args`` so
    Perfetto queries can follow one request across lanes.
    """
    args = {k: _jsonable(v) for k, v in span.attributes.items()}
    if span.trace_id is not None:
        args["trace_id"] = span.trace_id
    return {
        "name": span.name,
        "ph": "X",
        "ts": (span.start_s - origin_s) * 1e6,
        "dur": span.duration_s * 1e6,
        "pid": pid,
        "tid": span.tid,
        "args": args,
    }


def _jsonable(value: object) -> object:
    """Coerce a span attribute to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        try:
            return value.item()
        except Exception:  # pragma: no cover - defensive
            return str(value)
    return str(value)


# ----------------------------------------------------------------------
# Global tracer: a process-wide default so instrumentation sites do not
# need plumbing.  Defaults to the no-op tracer.
_global_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently installed global tracer (NullTracer by default)."""
    return _global_tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally (``None`` = disable); returns the old one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scoped installation: ``with tracing() as t: ...`` then inspect ``t``."""
    tracer = tracer or Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
