"""Request serving on top of the LiteForm pipeline.

The paper's argument (Figures 8-9) is that composition is cheap enough to
amortize *online*; this package supplies the layer that does the
amortizing.  A :class:`~repro.serve.server.SpMMServer` accepts
:class:`~repro.serve.server.SpMMRequest` objects, keys composed plans by a
content fingerprint of the sparsity pattern (so repeated matrices hit a
byte-budgeted LRU :class:`~repro.serve.plan_cache.PlanCache` instead of
re-running the pipeline), applies deadline-driven admission control (a
request whose estimated composition overhead would blow its deadline is
served a plain CSR row-split plan immediately), and executes on a pool of
simulated devices.  Execution is resilient: transient faults are retried
with bounded exponential backoff (:class:`~repro.serve.resilience.RetryPolicy`)
across per-device circuit breakers
(:class:`~repro.serve.resilience.CircuitBreaker`), and a structural OOM
degrades the plan to CSR instead of failing the request.
:mod:`~repro.serve.workload` generates seeded Zipf-distributed request
traffic for replay — optionally timed with Poisson/burst ``arrival_ms``
stamps — and :mod:`~repro.serve.metrics` aggregates the serving counters
and latency percentiles.

The serving surface is async-style (``submit() / poll() / drain()``,
with ``serve(request)`` as the one-request wrapper), implemented both by
the server and by :class:`~repro.serve.scheduler.Scheduler`, the
open-loop batched scheduler: a
:class:`~repro.serve.scheduler.Batcher` coalesces queued requests that
share a ``(fingerprint, J)`` plan key into one fused launch (operands
stacked column-wise, results split back bit-identically), dispatches
earliest-deadline-first with queueing delay charged against deadlines,
and sheds arrivals to the degraded path when its bounded queue is full.

With ``SpMMServer(speculative=True)`` a cache miss is served the CSR
fallback immediately while the full plan composes on a background
executor and is swapped into the cache by the serving thread
(docs/COMPOSE.md).

With ``SpMMServer(bandit=FormatBandit(...))`` (CLI ``serve --adaptive``)
a per-fingerprint Thompson-sampling bandit over the CELL/CSR/BCSR format
families consumes each request's simulated latency as reward and, once a
key has enough evidence, overrides the static §5 selector — re-pinning
the cached plan when its decision flips the format (docs/ADAPTIVE.md).

Requests are op-typed (:class:`~repro.serve.server.OpRequest`,
``op ∈ {spmm, sddmm, spmv}``; ``SpMMRequest``/``SpMMResponse`` remain as
aliases) and plans are cached per ``(fingerprint, op, J)``.
:mod:`~repro.serve.graph` chains ops into DAG requests
(:class:`~repro.serve.graph.GraphRequest`) — a GNN layer's
SDDMM → normalize → SpMM → dense-update pipeline served end to end with
one composed geometry reused across every stage sharing the adjacency's
sparsity pattern (docs/GNN.md).

See docs/SERVING.md for cache keying, eviction, deadline, batching, and
resilience semantics.
"""

from repro.serve.adaptive import (
    ARMS,
    BANDIT_MAGIC,
    ArmStats,
    FormatBandit,
    FormatDriftDevice,
    build_arm_plan,
    plan_arm,
)
from repro.serve.cluster import (
    ClusterFrontend,
    ClusterMetrics,
    MembershipChange,
    ShardRing,
    WindowedFrequencySketch,
    remigration_fraction,
)
from repro.serve.fingerprint import (
    OP_KINDS,
    MatrixFingerprint,
    fingerprint_csr,
    plan_key,
    plan_op,
)
from repro.serve.graph import (
    GraphEngine,
    GraphRequest,
    GraphResponse,
    OpStage,
)
from repro.serve.metrics import LatencySeries, ServerMetrics
from repro.serve.plan_cache import CACHE_MAGIC, CacheEntry, PlanCache
from repro.serve.resilience import CircuitBreaker, RetryPolicy
from repro.serve.scheduler import Batcher, Scheduler, SchedulerMetrics
from repro.serve.server import (
    OpRequest,
    OpResponse,
    ResponseStatus,
    SpMMRequest,
    SpMMResponse,
    SpMMServer,
)
from repro.serve.workload import WorkloadSpec, generate_workload, zipf_weights

__all__ = [
    "ARMS",
    "BANDIT_MAGIC",
    "ArmStats",
    "FormatBandit",
    "FormatDriftDevice",
    "build_arm_plan",
    "plan_arm",
    "CircuitBreaker",
    "RetryPolicy",
    "ClusterFrontend",
    "ClusterMetrics",
    "MembershipChange",
    "ShardRing",
    "WindowedFrequencySketch",
    "remigration_fraction",
    "MatrixFingerprint",
    "fingerprint_csr",
    "plan_key",
    "plan_op",
    "OP_KINDS",
    "GraphEngine",
    "GraphRequest",
    "GraphResponse",
    "OpStage",
    "PlanCache",
    "CacheEntry",
    "CACHE_MAGIC",
    "LatencySeries",
    "ServerMetrics",
    "SchedulerMetrics",
    "Batcher",
    "Scheduler",
    "ResponseStatus",
    "OpRequest",
    "OpResponse",
    "SpMMRequest",
    "SpMMResponse",
    "SpMMServer",
    "WorkloadSpec",
    "generate_workload",
    "zipf_weights",
]
