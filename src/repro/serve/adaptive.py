"""Online adaptive format selection from serving telemetry.

The Section 5 selector is trained *offline* on a static collection, but
serving traffic drifts: a kernel regression, a thermal event, or a shift
in the request mix can silently invert the CELL-vs-fixed decision the
Random Forest froze at training time.  :class:`FormatBandit` closes the
loop with a per-fingerprint contextual bandit:

* **arms** — the three format families the pipeline can produce
  (:data:`ARMS`): composed CELL (``force_cell``), plain CSR row-split,
  and 8x8 BCSR;
* **context** — the same seven Table 2 features the static selector
  uses, cached per plan key so accumulated rewards can later be turned
  back into :class:`~repro.core.training.FormatSelectionSample` rows and
  refit the offline model on matrices actually served;
* **reward** — the *simulated kernel latency* of every successful
  request (the same per-request ``exec_ms`` that feeds
  :class:`~repro.serve.metrics.ServerMetrics`), tracked per arm as
  exponentially discounted statistics so a mid-trace drift moves the
  posterior within a handful of observations;
* **selection** — seeded Gaussian Thompson sampling: each decision draws
  one latency sample per arm from ``N(mean, std / sqrt(weight))`` and
  plays the smallest draw.  Unobserved arms draw from an optimistic
  near-zero prior, so every arm is forced once before the posterior can
  converge.  The bandit stays silent (defers to the static selector)
  until some arm for the key has :attr:`~FormatBandit.min_obs`
  observations — the static model seeds the bandit's first arm, then
  hands over.

The server consults the bandit on every request (hit or miss); a
decision that differs from the arm of the cached plan *re-pins* the
cache entry to the newly chosen arm's plan.  State is pickled with a
magic tag (:data:`BANDIT_MAGIC`) mirroring the plan-cache spill
convention, and per-key state rides the cluster's spill-bundle transport
on shard migration (see ``docs/ADAPTIVE.md``).

:class:`FormatDriftDevice` is the companion chaos tool: a
:class:`~repro.gpu.device.SimulatedDevice` whose latency drifts against
one kernel family mid-trace, making the statically chosen format
persistently wrong — the scenario ``benchmarks/test_ext_adaptive.py``
uses to show the bandit recovering oracle throughput.
"""

from __future__ import annotations

import math
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import ComposePlan, LiteForm, OverheadBreakdown
from repro.core.training import FormatSelectionSample, TrainingData
from repro.formats.bcsr import BCSRFormat
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.gpu.stats import KernelStats, Measurement
from repro.kernels.bcsr_spmm import BCSRSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM
from repro.matrices.features import format_selection_features

#: The bandit's arms — the format families the pipeline can produce.
ARMS: tuple[str, ...] = ("cell", "csr", "bcsr")

#: Format tag checked on load, bumped on incompatible changes (the same
#: convention as :data:`repro.serve.plan_cache.CACHE_MAGIC`).
BANDIT_MAGIC = "repro-banditstate-v1"

#: Observations some arm of a key needs before the bandit overrides the
#: static selector for that key.
DEFAULT_MIN_OBS = 3

#: Probability of playing a uniformly random arm *before* the handoff
#: threshold is reached (forced early exploration; 0 = pure handoff).
DEFAULT_EXPLORE = 0.05

#: Per-observation discount of older reward statistics.  The effective
#: window is ``1 / (1 - decay)`` observations, so a drifted arm's
#: posterior mean crosses over within a few samples.
DEFAULT_DECAY = 0.7


def plan_arm(plan: ComposePlan) -> str:
    """The bandit arm a composed plan corresponds to."""
    if plan.use_cell:
        return "cell"
    if isinstance(plan.fmt, BCSRFormat):
        return "bcsr"
    return "csr"


def build_arm_plan(liteform: LiteForm, A: sp.csr_matrix, J: int, arm: str) -> ComposePlan:
    """Build the plan of one bandit arm directly (no ML selection).

    The ``cell`` arm runs the full composition pipeline with the
    selector forced (``force_cell=True``); the fixed arms build their
    format in one pass, charged to the plan's build time like the
    server's CSR fallback.
    """
    if arm == "cell":
        return liteform.compose_csr(A, max(1, J), force_cell=True)
    tb = time.perf_counter()
    if arm == "csr":
        fmt, kernel = CSRFormat.from_csr(A), RowSplitCSRSpMM()
    elif arm == "bcsr":
        fmt, kernel = BCSRFormat.from_csr(A, block_shape=(8, 8)), BCSRSpMM()
    else:
        raise ValueError(f"unknown arm {arm!r}; choose from {list(ARMS)}")
    build_s = time.perf_counter() - tb
    return ComposePlan(
        use_cell=False,
        fmt=fmt,
        kernel=kernel,
        num_partitions=1,
        overhead=OverheadBreakdown(0.0, 0.0, 0.0, build_s),
    )


@dataclass
class ArmStats:
    """Exponentially discounted latency statistics of one (key, arm).

    ``count`` is the raw observation count (drives the ``min_obs``
    handoff); ``weight`` is the discounted sample weight the posterior
    width uses, capped at ``1 / (1 - decay)`` so old evidence cannot
    pin a drifted arm forever.
    """

    count: int = 0
    weight: float = 0.0
    mean_ms: float = 0.0
    var_ms2: float = 0.0

    def observe(self, value_ms: float, decay: float) -> None:
        self.count += 1
        w = self.weight * decay
        total = w + 1.0
        delta = float(value_ms) - self.mean_ms
        self.mean_ms += delta / total
        self.var_ms2 = (w * self.var_ms2 + (float(value_ms) - self.mean_ms) * delta) / total
        self.var_ms2 = max(0.0, self.var_ms2)
        self.weight = total

    @property
    def std_ms(self) -> float:
        return math.sqrt(self.var_ms2)

    def as_tuple(self) -> tuple[int, float, float, float]:
        return (self.count, self.weight, self.mean_ms, self.var_ms2)

    @classmethod
    def from_tuple(cls, t) -> "ArmStats":
        count, weight, mean_ms, var_ms2 = t
        return cls(
            count=int(count),
            weight=float(weight),
            mean_ms=float(mean_ms),
            var_ms2=float(var_ms2),
        )


class FormatBandit:
    """Per-fingerprint Thompson-sampling bandit over :data:`ARMS`.

    Fully deterministic: the same request/latency sequence under the
    same ``seed`` produces the same arm choices (the RNG is consumed in
    a fixed order per :meth:`select` call).
    """

    arms = ARMS

    def __init__(
        self,
        min_obs: int = DEFAULT_MIN_OBS,
        explore: float = DEFAULT_EXPLORE,
        seed: int = 0,
        decay: float = DEFAULT_DECAY,
        prior_std_ms: float = 1e-3,
    ):
        if min_obs < 1:
            raise ValueError(f"min_obs must be >= 1, got {min_obs}")
        if not 0.0 <= explore <= 1.0:
            raise ValueError(f"explore must be in [0, 1], got {explore}")
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.min_obs = int(min_obs)
        self.explore = float(explore)
        self.seed = int(seed)
        self.decay = float(decay)
        self.prior_std_ms = float(prior_std_ms)
        self._rng = np.random.default_rng(seed)
        #: key -> arm -> discounted reward statistics.
        self._stats: dict[str, dict[str, ArmStats]] = {}
        #: key -> cached Table 2 feature vector (the bandit's context and
        #: the feature rows of :meth:`training_samples`).
        self._context: dict[str, np.ndarray] = {}
        # Lifetime counters, mirrored onto ServerMetrics by the server.
        self.observations = 0
        self.overrides = 0
        self.explorations = 0
        self.retrains = 0

    # -- reward ---------------------------------------------------------
    def observe(
        self,
        key: str,
        arm: str,
        exec_ms: float,
        A: sp.csr_matrix | None = None,
    ) -> None:
        """Record one successful request's simulated latency for ``arm``."""
        if arm not in self.arms:
            raise ValueError(f"unknown arm {arm!r}; choose from {list(self.arms)}")
        if A is not None and key not in self._context:
            self._context[key] = format_selection_features(A)
        stats = self._stats.setdefault(key, {a: ArmStats() for a in self.arms})
        stats[arm].observe(exec_ms, self.decay)
        self.observations += 1

    def key_observations(self, key: str) -> int:
        """Total observations recorded for ``key`` across all arms."""
        stats = self._stats.get(key)
        return sum(s.count for s in stats.values()) if stats else 0

    def key_observations_total(self) -> int:
        """Total observations across every tracked key (0 = no evidence)."""
        return sum(
            s.count for stats in self._stats.values() for s in stats.values()
        )

    def ready(self, key: str) -> bool:
        """True once some arm of ``key`` has ``min_obs`` observations —
        the static -> bandit handoff point."""
        stats = self._stats.get(key)
        if not stats:
            return False
        return max(s.count for s in stats.values()) >= self.min_obs

    # -- selection ------------------------------------------------------
    def select(self, key: str) -> str | None:
        """Choose an arm for ``key``, or None to defer to the static
        selector (before the handoff, modulo forced exploration)."""
        if not self.ready(key):
            if self.explore > 0.0 and float(self._rng.random()) < self.explore:
                self.explorations += 1
                return str(self.arms[int(self._rng.integers(len(self.arms)))])
            return None
        stats = self._stats[key]
        best, best_draw = None, math.inf
        for arm in self.arms:
            s = stats[arm]
            if s.count == 0:
                # Optimistic prior near zero latency: an untried arm
                # always wins its first post-handoff draw.
                draw = float(self._rng.normal(0.0, self.prior_std_ms))
            else:
                scale = max(s.std_ms, self.prior_std_ms) / math.sqrt(s.weight)
                draw = float(self._rng.normal(s.mean_ms, scale))
            if draw < best_draw:
                best, best_draw = arm, draw
        self.overrides += 1
        return best

    def expected_best(self, key: str) -> str | None:
        """The arm with the lowest posterior mean among observed arms."""
        stats = self._stats.get(key)
        if not stats:
            return None
        observed = {a: s for a, s in stats.items() if s.count}
        if not observed:
            return None
        return min(observed, key=lambda a: observed[a].mean_ms)

    # -- persistence and migration --------------------------------------
    def state_dict(self, keys=None) -> dict:
        """Picklable per-key state (all keys, or a migration subset)."""
        if keys is None:
            selected = list(self._stats)
        else:
            selected = [k for k in keys if k in self._stats]
        return {
            "magic": BANDIT_MAGIC,
            "min_obs": self.min_obs,
            "explore": self.explore,
            "seed": self.seed,
            "decay": self.decay,
            "stats": {
                k: {a: s.as_tuple() for a, s in self._stats[k].items()}
                for k in selected
            },
            "context": {
                k: np.asarray(self._context[k])
                for k in selected
                if k in self._context
            },
        }

    def merge_state(self, state: dict) -> int:
        """Adopt per-key state for keys this bandit has not seen yet
        (migration warm start; locally observed keys keep local stats).
        Returns the number of keys adopted."""
        if not isinstance(state, dict) or state.get("magic") != BANDIT_MAGIC:
            raise ValueError(
                f"not a bandit state bundle (expected magic {BANDIT_MAGIC!r})"
            )
        adopted = 0
        for key, arms in state["stats"].items():
            if key in self._stats:
                continue
            self._stats[key] = {
                a: ArmStats.from_tuple(arms.get(a, (0, 0.0, 0.0, 0.0)))
                for a in self.arms
            }
            context = state.get("context", {}).get(key)
            if context is not None:
                self._context[key] = np.asarray(context)
            adopted += 1
        return adopted

    def save(self, path: str | Path) -> None:
        """Spill the full bandit state to ``path`` (magic-tagged pickle,
        the same convention as :meth:`repro.serve.plan_cache.PlanCache.save`)."""
        with Path(path).open("wb") as fh:
            pickle.dump(self.state_dict(), fh)

    @classmethod
    def load(cls, path: str | Path, **overrides) -> "FormatBandit":
        """Rebuild a bandit from a :meth:`save` bundle.  Keyword
        overrides replace the saved hyperparameters (e.g. a different
        ``explore`` for the restored instance)."""
        with Path(path).open("rb") as fh:
            state = pickle.load(fh)
        if not isinstance(state, dict) or state.get("magic") != BANDIT_MAGIC:
            raise ValueError(f"{path} is not a saved bandit-state bundle")
        params = {
            "min_obs": state["min_obs"],
            "explore": state["explore"],
            "seed": state["seed"],
            "decay": state["decay"],
        }
        params.update(overrides)
        bandit = cls(**params)
        bandit.merge_state(state)
        return bandit

    # -- feedback into the offline model --------------------------------
    def training_samples(self) -> list[FormatSelectionSample]:
        """Turn accumulated rewards into Table 2 training rows.

        A key contributes once it has context features, at least one
        CELL observation, and at least one fixed-arm observation — the
        same label rule as offline training
        (:func:`repro.core.training.serving_format_sample`).
        """
        from repro.core.training import serving_format_sample

        samples = []
        for key, stats in self._stats.items():
            features = self._context.get(key)
            if features is None:
                continue
            cell = stats["cell"]
            fixed = [s.mean_ms for a, s in stats.items() if a != "cell" and s.count]
            if not cell.count or not fixed or cell.mean_ms <= 0.0:
                continue
            samples.append(
                serving_format_sample(
                    name=key,
                    features=features,
                    cell_time_s=cell.mean_ms / 1e3,
                    fixed_time_s=min(fixed) / 1e3,
                )
            )
        return samples

    def retrain(
        self,
        liteform: LiteForm,
        source: TrainingData | None = None,
        target_weight: int = 4,
    ) -> int:
        """Refit the static format selector on matrices actually served.

        Returns the number of serving-derived samples used (0 = nothing
        to learn from yet; the selector is left untouched).
        """
        from repro.core.transfer import refit_format_selector

        samples = self.training_samples()
        if not samples:
            return 0
        refit_format_selector(
            liteform,
            TrainingData(format_samples=samples),
            source=source,
            target_weight=target_weight,
        )
        self.retrains += 1
        return len(samples)


@dataclass
class FormatDriftDevice(SimulatedDevice):
    """A device whose latency drifts against one kernel family.

    Launches whose :attr:`~repro.gpu.stats.KernelStats.label` starts
    with any of ``slow_prefixes`` run ``slowdown`` times slower once the
    drift is active.  The drift activates when :attr:`drifted` is set
    directly (the benchmark's two-phase replay), or automatically after
    ``shift_after_launches`` launches (the CLI's ``--drift-after``),
    modelling e.g. a thermal event or a driver regression that hits one
    kernel family mid-trace.

    Default prefixes target the CELL kernel (labels ``cell`` /
    ``cell[w=N]``); use ``("cusparse",)`` for CSR row-split or
    ``("triton",)`` for BCSR.
    """

    slow_prefixes: tuple[str, ...] = ("cell",)
    slowdown: float = 4.0
    #: Launches before the drift activates on its own (None = only via
    #: :attr:`drifted`).
    shift_after_launches: int | None = None
    drifted: bool = False

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        self.launches = 0

    def measure(self, stats: KernelStats) -> Measurement:
        measurement = super().measure(stats)
        self.launches += 1
        if (
            not self.drifted
            and self.shift_after_launches is not None
            and self.launches > self.shift_after_launches
        ):
            self.drifted = True
        label = stats.label or ""
        if self.drifted and label.startswith(self.slow_prefixes):
            f = self.slowdown
            measurement = Measurement(
                time_s=measurement.time_s * f,
                breakdown=measurement.breakdown.scaled_to(measurement.time_s * f),
                stats=measurement.stats,
                compute_throughput=measurement.compute_throughput / f,
            )
        return measurement
