"""Sharded serving fleet: consistent-hash routing over many servers.

One :class:`~repro.serve.server.SpMMServer` amortizes composition
through its plan cache; a *fleet* of them only keeps doing so if every
request for a fingerprint lands on the shard holding its plan.  This
package supplies that layer:

* :mod:`~repro.serve.cluster.ring` — the consistent-hash
  :class:`ShardRing` (virtual nodes, ~1/N remigration on membership
  changes, measurable via :func:`remigration_fraction`);
* :mod:`~repro.serve.cluster.hotkeys` — sliding-window
  :class:`WindowedFrequencySketch` detecting Zipf-dominant fingerprints;
* :mod:`~repro.serve.cluster.metrics` — the :class:`ClusterMetrics`
  scoreboard published on the obs registry;
* :mod:`~repro.serve.cluster.frontend` — :class:`ClusterFrontend`, the
  router owning per-shard server/scheduler instances, hot-key
  replication, failure re-routing, and elastic membership
  (:class:`MembershipChange` reports each add/remove/kill).

See docs/CLUSTER.md for the design rationale and knobs.
"""

from repro.serve.cluster.frontend import ClusterFrontend, MembershipChange
from repro.serve.cluster.hotkeys import DEFAULT_WINDOW, WindowedFrequencySketch
from repro.serve.cluster.metrics import ClusterMetrics
from repro.serve.cluster.ring import (
    DEFAULT_VIRTUAL_NODES,
    ShardRing,
    remigration_fraction,
)

__all__ = [
    "ClusterFrontend",
    "ClusterMetrics",
    "MembershipChange",
    "ShardRing",
    "WindowedFrequencySketch",
    "remigration_fraction",
    "DEFAULT_VIRTUAL_NODES",
    "DEFAULT_WINDOW",
]
