"""`ClusterFrontend` — the sharded serving fleet.

Everything below the frontend already exists: each shard is a full
:class:`~repro.serve.server.SpMMServer` (plan cache, admission control,
retries, breakers, OOM degradation) — optionally wrapped in a
:class:`~repro.serve.scheduler.Scheduler` for fingerprint-coalesced
micro-batching — over its own partition of the simulated device pool
(per-shard :class:`~repro.gpu.multi.MultiGPUSpec`).  The frontend adds
the fleet layer on top:

* **cache-aware routing** — requests are fingerprinted once and routed
  through a :class:`~repro.serve.cluster.ring.ShardRing`, so every
  request for the same matrix lands on the shard already holding its
  composed plan;
* **hot-key replication** — a
  :class:`~repro.serve.cluster.hotkeys.WindowedFrequencySketch` watches
  the recent stream; once one fingerprint dominates (a Zipf head), its
  cached plan is copied to the next ``replication`` shards on the ring
  and traffic is spread among the replicas with power-of-two-choices
  routing (pick two seeded-random replicas, send to the less loaded);
* **elastic membership** — :meth:`add_shard` / :meth:`remove_shard`
  re-balance only the ~1/N of the key space the ring reassigns, moving
  the affected cached plans between shards with the existing
  :meth:`~repro.serve.plan_cache.PlanCache.save` /
  :meth:`~repro.serve.plan_cache.PlanCache.load` spill bundles as the
  migration transport (cross-shard warm start: the receiving shard's
  first request for a migrated key is a cache hit, not a recompose);
* **rebalance-safe chaos** — :meth:`kill_shard` models abrupt shard
  death: the ring is repaired, the dead shard's queued requests are
  re-routed to the survivors, and its cache is simply lost (survivors
  recompose on miss).  A request failed by a shard (e.g. its whole
  device pool died) is re-routed to the next live shard on the ring
  instead of being surfaced as a failure, so cluster availability is at
  least the single-node availability PR 3 established.

The serving surface mirrors the server/scheduler contract:
``submit() / poll() / drain()`` with ``serve()`` and ``replay()`` as
wrappers.  Because every shard composes with the same deterministic
pipeline and executes on the same analytical device model, responses are
bit-identical to single-node serving no matter which shard (or replica)
serves a request — the cluster benchmark asserts exactly this.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import LiteForm
from repro.gpu.device import SimulatedDevice
from repro.gpu.multi import MultiGPUSpec
from repro.obs import (
    SLOEngine,
    TraceContext,
    Tracer,
    get_tracer,
    merge_traces,
    set_tracer,
    write_merged,
)
from repro.serve.adaptive import DEFAULT_EXPLORE, DEFAULT_MIN_OBS, FormatBandit
from repro.serve.cluster.hotkeys import DEFAULT_WINDOW, WindowedFrequencySketch
from repro.serve.cluster.metrics import ClusterMetrics
from repro.serve.cluster.ring import DEFAULT_VIRTUAL_NODES, ShardRing
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.plan_cache import DEFAULT_MAX_BYTES, CacheEntry, PlanCache
from repro.serve.resilience import RetryPolicy
from repro.serve.scheduler import Scheduler
from repro.serve.server import SpMMRequest, SpMMResponse, SpMMServer


@dataclass
class _Pending:
    """One routed-but-not-yet-served request, fingerprinted at submit."""

    ticket: int
    request: SpMMRequest
    A: sp.csr_matrix
    key: str
    #: Shards that already failed this request (reroutes avoid them).
    excluded: set[str] = field(default_factory=set)
    #: Latency already burned on shards that failed this request —
    #: charged to the "migration" stage of the final attribution.
    migration_ms: float = 0.0


@dataclass
class _Shard:
    """One fleet member: a server (plus optional scheduler) and its queue."""

    shard_id: str
    server: SpMMServer
    scheduler: Scheduler | None
    num_devices: int
    pending: list[_Pending] = field(default_factory=list)
    alive: bool = True
    #: Routing decisions that chose this shard.
    routed: int = 0
    #: Requests whose final response this shard produced.
    completed: int = 0
    #: Simulated kernel milliseconds charged to this shard's pool.
    exec_busy_ms: float = 0.0

    @property
    def busy_ms(self) -> float:
        """Simulated busy time normalized by the shard's pool width."""
        return self.exec_busy_ms / max(1, self.num_devices)


@dataclass(frozen=True)
class MembershipChange:
    """Outcome report of one elastic-membership operation."""

    kind: str  # "add" | "remove" | "kill"
    shard_id: str
    #: Cached plans resident cluster-wide when the change started.
    cached_keys: int
    #: Cached plans whose owning shard changed.
    keys_moved: int
    #: Cached plans actually migrated through a spill bundle (killed
    #: shards lose theirs instead).
    plans_migrated: int
    #: Queued requests re-routed off the departing shard.
    requeued: int

    @property
    def fraction(self) -> float:
        """``keys_moved / cached_keys`` — the measured remigration cost."""
        return self.keys_moved / self.cached_keys if self.cached_keys else 0.0


class ClusterFrontend:
    """Sharded serving fleet with cache-aware consistent-hash routing."""

    def __init__(
        self,
        liteform: LiteForm,
        num_shards: int = 4,
        *,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        replication: int = 1,
        hot_window: int = DEFAULT_WINDOW,
        hot_fraction: float = 0.1,
        hot_min_count: int = 4,
        multi_spec: MultiGPUSpec | None = None,
        device_factory=None,
        cache_bytes_per_shard: int = DEFAULT_MAX_BYTES,
        batch: int = 0,
        max_wait_ms: float = 2.0,
        max_queue: int | None = None,
        retry: RetryPolicy | None = None,
        degrade_on_oom: bool = True,
        speculative: bool = False,
        adaptive: bool = False,
        bandit_min_obs: int = DEFAULT_MIN_OBS,
        bandit_explore: float = DEFAULT_EXPLORE,
        reroute_on_failure: bool = True,
        spill_dir: str | Path | None = None,
        seed: int = 0,
        metrics: ClusterMetrics | None = None,
        slo: SLOEngine | bool | None = None,
    ):
        """``num_shards`` initial shards, each with its own plan cache and
        a device pool described by ``multi_spec`` (``num_gpus`` devices of
        ``multi_spec.gpu`` per shard; default one V100-class device).

        ``device_factory(shard_index, device_index) -> SimulatedDevice``
        overrides device construction — the hook fault injection uses to
        hand each shard :class:`~repro.gpu.faults.FaultyDevice` instances
        with independent seeds.  ``replication`` > 1 enables hot-key
        replication (a fingerprint above ``hot_fraction`` of the last
        ``hot_window`` requests is replicated to that many shards);
        ``batch`` > 0 puts a coalescing :class:`Scheduler` in front of
        every shard.  ``spill_dir`` holds the migration bundles (a fresh
        temp directory by default).

        ``slo`` attaches a burn-rate alerting engine
        (:class:`repro.obs.SLOEngine`; ``True`` = the stock objectives)
        fed with *attempt-level* outcomes on the replay's virtual
        timeline: a shard-level failure counts against availability even
        when the reroute ultimately serves the request, so a fault storm
        pages before request-level availability breaches.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        self.liteform = liteform
        self.replication = int(replication)
        self.hot_fraction = float(hot_fraction)
        self.hot_min_count = int(hot_min_count)
        self.multi_spec = multi_spec or MultiGPUSpec(num_gpus=1)
        self.device_factory = device_factory
        self.cache_bytes_per_shard = int(cache_bytes_per_shard)
        self.batch = int(batch)
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.retry = retry or RetryPolicy()
        self.degrade_on_oom = degrade_on_oom
        self.speculative = speculative
        self.adaptive = adaptive
        self.bandit_min_obs = int(bandit_min_obs)
        self.bandit_explore = float(bandit_explore)
        #: Base seed of per-shard bandit RNGs (offset by shard index so
        #: shards explore independently but deterministically).
        self._bandit_seed = int(seed)
        self.reroute_on_failure = reroute_on_failure
        self.metrics = metrics or ClusterMetrics()
        if slo is True:
            slo = SLOEngine(registry=self.metrics.registry)
        elif isinstance(slo, SLOEngine) and slo.registry is None:
            slo.registry = self.metrics.registry
        self.slo: SLOEngine | None = slo or None
        #: Per-shard tracer lanes, created lazily once tracing is on.
        self._shard_tracers: dict[str, Tracer] = {}
        #: Ingress tracer remembered from the last traced submit, so the
        #: merged trace keeps its frontend lane even after the caller
        #: uninstalls the global tracer.
        self._frontend_tracer: Tracer | None = None
        #: Virtual time of the replay (feeds SLO evaluation windows).
        self._clock_ms = 0.0
        self.ring = ShardRing(virtual_nodes=virtual_nodes)
        self._sketch = WindowedFrequencySketch(window=hot_window)
        self._rng = np.random.default_rng(seed)
        self._shards: dict[str, _Shard] = {}
        self._next_shard_index = 0
        self._next_ticket = 0
        self._completed: dict[int, SpMMResponse] = {}
        #: Ring version at which each hot key was last replicated.
        self._replicated: dict[str, int] = {}
        self._ring_version = 0
        self._hot_seen: set[str] = set()
        if spill_dir is None:
            self._spill_tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            self._spill_dir = Path(self._spill_tmp.name)
        else:
            self._spill_tmp = None
            self._spill_dir = Path(spill_dir)
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._spill_seq = 0
        for _ in range(num_shards):
            shard = self._new_shard()
            self._shards[shard.shard_id] = shard
            self.ring.add_shard(shard.shard_id)
        r = self.metrics.registry
        r.gauge("cluster_shards_live", "Live shards on the ring",
                callback=lambda self=self: len(self.ring))
        r.gauge("cluster_routing_skew",
                "Max over mean per-shard routed share (1.0 = balanced)",
                callback=lambda self=self: self.routing_skew)
        r.gauge("cluster_throughput_rps",
                "Served requests per simulated second of fleet busy time",
                callback=lambda self=self: self.aggregate_throughput_rps)

    # -- fleet construction --------------------------------------------
    def _new_shard(self) -> _Shard:
        index = self._next_shard_index
        self._next_shard_index += 1
        shard_id = f"shard-{index}"
        if self.device_factory is not None:
            devices = [
                self.device_factory(index, d)
                for d in range(self.multi_spec.num_gpus)
            ]
        else:
            devices = [
                SimulatedDevice(spec=self.multi_spec.gpu)
                for _ in range(self.multi_spec.num_gpus)
            ]
        bandit = None
        if self.adaptive:
            bandit = FormatBandit(
                min_obs=self.bandit_min_obs,
                explore=self.bandit_explore,
                seed=self._bandit_seed + index,
            )
        server = SpMMServer(
            liteform=self.liteform,
            cache=PlanCache(max_bytes=self.cache_bytes_per_shard),
            devices=devices,
            retry=self.retry,
            degrade_on_oom=self.degrade_on_oom,
            speculative=self.speculative,
            bandit=bandit,
        )
        scheduler = None
        if self.batch:
            scheduler = Scheduler(
                server=server,
                max_batch=self.batch,
                max_wait_ms=self.max_wait_ms,
                max_queue=self.max_queue,
            )
        return _Shard(
            shard_id=shard_id,
            server=server,
            scheduler=scheduler,
            num_devices=len(devices),
        )

    def _live(self) -> list[_Shard]:
        """Live shards in ring (sorted-id) order."""
        return [self._shards[sid] for sid in self.ring.shards]

    @property
    def shards(self) -> tuple[str, ...]:
        """Live shard ids."""
        return self.ring.shards

    # -- tracing lanes -------------------------------------------------
    def _shard_lane(self, shard_id: str) -> Tracer | None:
        """The shard's private tracer lane; None while tracing is off.

        Lanes are created lazily on first traced use (the frontend is
        usually constructed before the CLI installs a tracer) and kept
        after shard death, so a killed shard's spans stay in the merged
        trace.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        if isinstance(tracer, Tracer):
            self._frontend_tracer = tracer
        lane = self._shard_tracers.get(shard_id)
        if lane is None:
            lane = self._shard_tracers[shard_id] = Tracer(name=shard_id)
        return lane

    def _mark_enqueued(
        self, shard: _Shard, item: _Pending, kind: str
    ) -> None:
        """Drop a zero-length ``enqueue`` span on the shard's lane —
        the cross-lane breadcrumb that shows which shards a request
        visited even before (or without) being served there."""
        lane = self._shard_lane(shard.shard_id)
        ctx = item.request.ctx
        if lane is None or ctx is None:
            return
        with lane.span("enqueue", ctx=ctx, kind=kind, key=item.key[:16]):
            pass

    def lanes(self) -> dict[str, Tracer]:
        """Every tracer lane for :func:`repro.obs.merge_traces`: the
        frontend (the installed global tracer, or the one remembered
        from the last traced submit — its ingress, route, and migrate
        spans) plus each shard that ever served traced work."""
        out: dict[str, Tracer] = {}
        tracer = get_tracer()
        if tracer.enabled and isinstance(tracer, Tracer):
            out["frontend"] = tracer
        elif self._frontend_tracer is not None:
            out["frontend"] = self._frontend_tracer
        for shard_id in sorted(self._shard_tracers):
            out[shard_id] = self._shard_tracers[shard_id]
        return out

    def merged_trace(self) -> dict:
        """One Chrome/Perfetto trace object across all lanes."""
        return merge_traces(self.lanes())

    def write_trace(self, path: str | Path) -> Path:
        """Write the merged multi-lane trace to ``path``."""
        return write_merged(self.lanes(), path)

    # -- routing -------------------------------------------------------
    def _route(self, key: str, *, observe: bool = True) -> _Shard:
        """Pick the shard for ``key``: ring owner, or power-of-two-choices
        among the replica set once the key is hot."""
        if observe:
            self._sketch.observe(key)
        tracer = get_tracer()
        with tracer.span("route", key=key[:16]) as span:
            # The absolute floor keeps a nearly-empty window from calling
            # its very first key "hot" (frequency would be 1.0 after one
            # observation).
            hot = (
                self.replication > 1
                and len(self.ring) > 1
                and self._sketch.count(key) >= self.hot_min_count
                and self._sketch.frequency(key) >= self.hot_fraction
            )
            if hot:
                if key not in self._hot_seen:
                    self._hot_seen.add(key)
                    self.metrics.hot_keys += 1
                # Spreading traffic only makes sense once the replicas
                # hold the plan; until then (primary hasn't composed yet)
                # keep routing to the primary so the plan exists to copy.
                hot = self._ensure_replicated(key)
            if hot:
                replicas = self.ring.route_replicas(key, self.replication)
                if len(replicas) > 1:
                    # Power of two choices: sample two replicas, take the
                    # one with the shorter queue (ties keep ring order).
                    i, j = self._rng.choice(len(replicas), size=2, replace=False)
                    a, b = self._shards[replicas[i]], self._shards[replicas[j]]
                    if len(b.pending) < len(a.pending):
                        a = b
                    self.metrics.replica_routes += 1
                    span.set(hot=True, shard=a.shard_id)
                    return a
            shard = self._shards[self.ring.route(key)]
            span.set(hot=hot, shard=shard.shard_id)
            return shard

    @property
    def routing_skew(self) -> float:
        """Max over mean routed count across live shards (1.0 = balanced)."""
        counts = [s.routed for s in self._live()]
        total = sum(counts)
        if not counts or not total:
            return 1.0
        return max(counts) / (total / len(counts))

    # -- plan movement (spill-bundle transport) ------------------------
    def _spill(self, entries: list[CacheEntry]) -> Path:
        """Write ``entries`` as a :meth:`PlanCache.save` bundle on disk."""
        budget = max(1, sum(e.size_bytes for e in entries)) * 2
        carrier = PlanCache(max_bytes=budget)
        for e in entries:
            carrier.put(e.key, e.plan, compose_overhead_s=e.compose_overhead_s)
        path = self._spill_dir / f"migrate-{self._spill_seq:06d}.pkl"
        self._spill_seq += 1
        carrier.save(path)
        return path

    def _absorb(self, shard: _Shard, path: Path) -> int:
        """Warm-start ``shard`` from a spill bundle; returns plans added."""
        added = 0
        for e in PlanCache.load(path).entries():
            if shard.server.cache.peek(e.key) is None:
                if shard.server.cache.put(
                    e.key, e.plan, compose_overhead_s=e.compose_overhead_s
                ):
                    added += 1
        return added

    def _spill_bandit_state(
        self, keys: list[str], target: _Shard, path: Path
    ) -> Path | None:
        """Write the donors' bandit state for ``keys`` as a sidecar next
        to the plan spill bundle (None when no donor has evidence)."""
        carrier = FormatBandit(
            min_obs=self.bandit_min_obs,
            explore=self.bandit_explore,
            seed=self._bandit_seed,
        )
        for donor in self._live():
            if donor is target or donor.server.bandit is None:
                continue
            carrier.merge_state(donor.server.bandit.state_dict(keys))
        if not carrier.key_observations_total():
            return None
        bandit_path = path.with_name(path.name + ".bandit")
        carrier.save(bandit_path)
        return bandit_path

    def _transfer(self, entries: list[CacheEntry], shard: _Shard) -> int:
        """Move entries to ``shard`` through one save/load spill bundle.

        With adaptive serving on, the donors' bandit state for the moved
        keys travels as a ``.bandit`` sidecar of the spill bundle, so the
        receiving shard's bandit starts from the fleet's accumulated
        reward instead of re-exploring from scratch.
        """
        if not entries:
            return 0
        path = self._spill(entries)
        bandit_path = None
        if self.adaptive and shard.server.bandit is not None:
            bandit_path = self._spill_bandit_state(
                [e.key for e in entries], shard, path
            )
        try:
            added = self._absorb(shard, path)
            if bandit_path is not None:
                shard.server.bandit.merge_state(
                    FormatBandit.load(bandit_path).state_dict()
                )
            return added
        finally:
            path.unlink(missing_ok=True)
            if bandit_path is not None:
                bandit_path.unlink(missing_ok=True)

    def _ensure_replicated(self, key: str) -> bool:
        """Copy a hot key's cached plan to its replica shards (once per
        ring version — membership changes re-derive the replica set).
        Returns True once the replica set holds the plan; False while the
        primary has not composed it yet (nothing to copy)."""
        if self._replicated.get(key) == self._ring_version:
            return True
        primary = self._shards[self.ring.route(key)]
        entry = primary.server.cache.peek(key)
        if entry is None:
            # Nothing composed yet — retry on a later request once the
            # primary has the plan (the hot signal persists while the
            # traffic does).
            return False
        targets = [
            sid
            for sid in self.ring.route_replicas(key, self.replication)
            if sid != primary.shard_id
        ]
        if targets:
            with get_tracer().span(
                "migrate", kind="replicate", key=key[:16], replicas=len(targets)
            ):
                for sid in targets:
                    self.metrics.plans_replicated += self._transfer(
                        [entry], self._shards[sid]
                    )
        self._replicated[key] = self._ring_version
        return True

    # -- serving surface -----------------------------------------------
    def submit(self, request: SpMMRequest) -> int:
        """Fingerprint, route, and enqueue a request; returns a ticket.

        This is the cluster's trace ingress: with tracing on, a
        :class:`~repro.obs.TraceContext` is minted here (unless the
        caller already attached one) and rides on the request through
        routing, shard queueing, batching, serving, and any reroute — so
        every span the request touches, on every lane, shares one trace
        id.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        tracer = get_tracer()
        if request.ctx is None and tracer.enabled:
            request.ctx = TraceContext.mint("req")
        with tracer.span("ingress", ctx=request.ctx, ticket=ticket) as span:
            A = SpMMServer._canonical(request.matrix)
            key = plan_key(fingerprint_csr(A), request.J, request.op)
            shard = self._route(key)
            span.set(key=key[:16], shard=shard.shard_id)
            item = _Pending(ticket=ticket, request=request, A=A, key=key)
            shard.pending.append(item)
            shard.routed += 1
            self.metrics.routed += 1
            self._mark_enqueued(shard, item, kind="submit")
        return ticket

    def poll(self, ticket: int) -> SpMMResponse | None:
        """Claim one completed response (serving anything pending first)."""
        self._process_all()
        return self._completed.pop(ticket, None)

    def drain(self) -> list[SpMMResponse]:
        """Serve everything pending on every shard; returns all unclaimed
        responses in submission (ticket) order."""
        self._process_all()
        return [self._completed.pop(t) for t in sorted(self._completed)]

    def serve(self, request: SpMMRequest) -> SpMMResponse:
        """Serve one request now — thin wrapper over submit/poll."""
        response = self.poll(self.submit(request))
        assert response is not None  # in-process poll always completes
        return response

    def serve_graph(self, graph):
        """Serve one :class:`repro.serve.graph.GraphRequest` on the shard
        owning its anchor key.

        The anchor is the graph's first device stage with a literal
        matrix: every stage of a GNN chain shares that adjacency's
        pattern, so routing the whole graph by one key keeps the chain's
        compose/reuse locality on a single shard (hot-key replication and
        membership moves apply to it like any other key).  The graph runs
        under the shard's tracer lane; stage outcomes land on the shard
        server's ``serve_graph_*`` counters and the graph outcome on the
        cluster's ``completed``/``failed`` scoreboard.
        """
        from repro.serve.graph import GraphEngine, plan_key_for_graph

        tracer = get_tracer()
        if graph.ctx is None and tracer.enabled:
            graph.ctx = TraceContext.mint("graph")
        with tracer.span(
            "ingress", ctx=graph.ctx, graph=graph.name or "anonymous"
        ) as span:
            key = plan_key_for_graph(graph)
            shard = self._route(key)
            span.set(key=key[:16], shard=shard.shard_id)
            shard.routed += 1
            self.metrics.routed += 1
            self.metrics.graphs += 1
        lane = self._shard_lane(shard.shard_id)
        previous = set_tracer(lane) if lane is not None else None
        try:
            response = GraphEngine(shard.server).run(graph)
        finally:
            if previous is not None:
                set_tracer(previous)
        shard.completed += 1
        self.metrics.completed += 1
        self.metrics.graph_stages += response.device_stages
        if response.failed:
            self.metrics.failed += 1
        return response

    def _process_all(self) -> None:
        # Rerouting a failed request enqueues it on another shard, so
        # loop until every queue is empty.
        while True:
            busy = [s for s in self._live() if s.pending]
            if not busy:
                return
            for shard in busy:
                items, shard.pending = shard.pending, []
                for item, response in zip(items, self._serve_on(shard, items)):
                    self._finish(shard, item, response)

    def _serve_on(self, shard: _Shard, items: list[_Pending]) -> list[SpMMResponse]:
        # Each shard records onto its own tracer lane (swapped in around
        # the serve call), so the merged trace renders one process track
        # per shard; the request's TraceContext links the lanes.
        lane = self._shard_lane(shard.shard_id)
        previous = set_tracer(lane) if lane is not None else None
        try:
            if shard.scheduler is not None:
                for item in items:
                    shard.scheduler.submit(item.request)
                # Scheduler tickets are monotone, and drain returns unclaimed
                # responses in ticket order — i.e. our submission order.
                return shard.scheduler.drain()
            return [
                shard.server._serve_one(item.request, A=item.A, key=item.key)
                for item in items
            ]
        finally:
            if previous is not None:
                set_tracer(previous)

    def _finish(self, shard: _Shard, item: _Pending, response: SpMMResponse) -> None:
        if self.slo is not None:
            # Attempt-level feed: a shard-level failure burns budget even
            # when the reroute below ultimately serves the request — the
            # leading indicator that makes the burn-rate alert fire
            # before request-level availability breaches.
            self.slo.tracer = get_tracer()
            self.slo.record(
                self._clock_ms,
                ok=not response.failed,
                latency_ms=response.latency_ms + item.migration_ms,
                deadline_hit=(
                    None
                    if item.request.deadline_ms is None
                    else not response.deadline_missed
                ),
            )
        if response.failed and self.reroute_on_failure:
            item.excluded.add(shard.shard_id)
            target = next(
                (
                    sid
                    for sid in self.ring.route_replicas(item.key, len(self.ring))
                    if sid not in item.excluded
                ),
                None,
            )
            if target is not None:
                self.metrics.rerouted += 1
                self.metrics.routed += 1
                # The latency burned on the failing shard is this
                # request's migration cost, attributed when it completes.
                item.migration_ms += response.latency_ms
                dest = self._shards[target]
                dest.pending.append(item)
                dest.routed += 1
                self._mark_enqueued(dest, item, kind="reroute")
                return
        shard.completed += 1
        if response.measurement is not None:
            shard.exec_busy_ms += (
                response.measurement.time_ms / max(1, response.batch_size)
            )
        self.metrics.completed += 1
        if response.failed:
            self.metrics.failed += 1
        self._attribute(shard, item, response)
        self._completed[item.ticket] = response

    def _attribute(
        self, shard: _Shard, item: _Pending, response: SpMMResponse
    ) -> None:
        """Record the finished request's stage breakdown (cluster view)."""
        compose_ms = response.compose_overhead_s * 1e3
        launch_ms = max(
            0.0,
            response.latency_ms
            - response.queue_wait_ms
            - compose_ms
            - response.backoff_ms,
        )
        self.metrics.attribution.record(
            response.trace_id,
            {
                "queue_wait": response.queue_wait_ms,
                "compose": compose_ms,
                "launch": launch_ms,
                "retry_backoff": response.backoff_ms,
                "migration": item.migration_ms,
            },
            total_ms=response.latency_ms + item.migration_ms,
            shard=shard.shard_id,
        )

    # -- elastic membership --------------------------------------------
    def _primary_owned(self) -> dict[str, _Shard]:
        """``{key: shard}`` for every cached plan resident on its ring
        owner.  Replica copies (hot-key replication leaves duplicates on
        successor shards) are excluded: for remigration accounting only
        the *primary* placement is the ring's promise — duplicates are
        disposable and never migrated."""
        owned: dict[str, _Shard] = {}
        for shard in self._live():
            for key in shard.server.cache.keys():
                if self.ring.route(key) == shard.shard_id:
                    owned[key] = shard
        return owned

    def add_shard(self) -> MembershipChange:
        """Grow the fleet by one shard, migrating the ~1/N of cached plans
        the ring reassigns to it (spill-bundle warm start)."""
        shard = self._new_shard()
        with get_tracer().span("migrate", kind="add", shard=shard.shard_id):
            owned = self._primary_owned()
            self._shards[shard.shard_id] = shard
            self.ring.add_shard(shard.shard_id)
            self._ring_version += 1
            # Only arcs captured by the new shard's points change owner —
            # exactly the keys now routing somewhere other than their old
            # primary.  Their entries move through one spill bundle.
            moving = [
                (key, donor)
                for key, donor in owned.items()
                if self.ring.route(key) != donor.shard_id
            ]
            entries = [donor.server.cache.pop(key) for key, donor in moving]
            migrated = self._transfer([e for e in entries if e], shard)
        self.metrics.shards_added += 1
        self.metrics.plans_migrated += migrated
        change = MembershipChange(
            kind="add",
            shard_id=shard.shard_id,
            cached_keys=len(owned),
            keys_moved=len(moving),
            plans_migrated=migrated,
            requeued=0,
        )
        self.metrics.last_remigration_fraction = change.fraction
        return change

    def remove_shard(self, shard_id: str) -> MembershipChange:
        """Gracefully retire a shard: repair the ring, re-route its queue,
        and migrate its primary-owned cached plans to their new owners
        (replica copies it held are duplicates and die with it)."""
        shard = self._departing(shard_id)
        with get_tracer().span("migrate", kind="remove", shard=shard_id):
            owned = self._primary_owned()
            departing = [
                e
                for e in shard.server.cache.entries()
                if owned.get(e.key) is shard
            ]
            self.ring.remove_shard(shard_id)
            self._ring_version += 1
            shard.alive = False
            requeued = self._requeue(shard)
            migrated = 0
            by_dest: dict[str, list[CacheEntry]] = {}
            for e in departing:
                by_dest.setdefault(self.ring.route(e.key), []).append(e)
            for dest, batch in sorted(by_dest.items()):
                migrated += self._transfer(batch, self._shards[dest])
            shard.server.cache.clear()
        self.metrics.shards_removed += 1
        self.metrics.plans_migrated += migrated
        change = MembershipChange(
            kind="remove",
            shard_id=shard_id,
            cached_keys=len(owned),
            keys_moved=len(departing),
            plans_migrated=migrated,
            requeued=requeued,
        )
        self.metrics.last_remigration_fraction = change.fraction
        return change

    def kill_shard(self, shard_id: str) -> MembershipChange:
        """Chaos: the shard dies *now*.  The ring is repaired and its
        queued requests re-routed, but its cached plans are lost — the
        survivors recompose on miss (no warm start)."""
        shard = self._departing(shard_id)
        with get_tracer().span("migrate", kind="kill", shard=shard_id):
            owned = self._primary_owned()
            lost = sum(1 for donor in owned.values() if donor is shard)
            self.ring.remove_shard(shard_id)
            self._ring_version += 1
            shard.alive = False
            requeued = self._requeue(shard)
            shard.server.cache.clear()
        self.metrics.shards_killed += 1
        change = MembershipChange(
            kind="kill",
            shard_id=shard_id,
            cached_keys=len(owned),
            keys_moved=lost,
            plans_migrated=0,
            requeued=requeued,
        )
        self.metrics.last_remigration_fraction = change.fraction
        return change

    def _departing(self, shard_id: str) -> _Shard:
        shard = self._shards.get(shard_id)
        if shard is None or not shard.alive:
            raise KeyError(f"no live shard {shard_id!r}")
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last live shard")
        return shard

    def _requeue(self, departed: _Shard) -> int:
        """Re-route a departed shard's queued requests (no request loss)."""
        items, departed.pending = departed.pending, []
        for item in items:
            target = self._route(item.key, observe=False)
            target.pending.append(item)
            target.routed += 1
            self.metrics.routed += 1
            self._mark_enqueued(target, item, kind="requeue")
        return len(items)

    # -- replay --------------------------------------------------------
    #: Requests submitted between drains during :meth:`replay`.  Small
    #: enough that hot-key replication reacts within a trace (a replica
    #: can only receive a plan the primary has already composed), large
    #: enough that per-shard schedulers still coalesce micro-batches.
    REPLAY_CHUNK = 8

    def replay(
        self,
        requests: list[SpMMRequest],
        *,
        kill_shard_at_ms: float | None = None,
        kill_shard: str | None = None,
    ) -> ClusterMetrics:
        """Serve a whole trace in order, optionally killing a shard
        mid-stream (``kill_shard_at_ms`` on the trace's virtual timeline;
        untimed traces use the request index as milliseconds).  Requests
        submitted before the kill are drained first, so they exercise the
        pre-kill topology; everything after re-routes around the corpse.
        The victim defaults to the busiest shard — worst-case chaos."""
        timed = any(r.arrival_ms > 0 for r in requests)
        killed = False
        with get_tracer().span("cluster_replay", requests=len(requests)):
            for index, request in enumerate(requests):
                now = request.arrival_ms if timed else float(index)
                self._clock_ms = max(self._clock_ms, now)
                if (
                    kill_shard_at_ms is not None
                    and not killed
                    and now >= kill_shard_at_ms
                    and len(self.ring) > 1
                ):
                    self.drain()
                    victim = kill_shard or max(
                        self._live(), key=lambda s: (s.routed, s.shard_id)
                    ).shard_id
                    self.kill_shard(victim)
                    killed = True
                self.submit(request)
                if (index + 1) % self.REPLAY_CHUNK == 0:
                    self.drain()
            self.drain()
            if self.speculative:
                self.wait_for_speculation()
        return self.metrics

    def wait_for_speculation(self, timeout: float | None = None) -> int:
        """Settle every live shard's in-flight background composes and
        apply their swaps (see :meth:`SpMMServer.wait_for_speculation`);
        returns the total swaps applied across the fleet.  Called once at
        the end of :meth:`replay` — never per drain, which would serialize
        the composes the speculation exists to overlap."""
        return sum(
            s.server.wait_for_speculation(timeout=timeout) for s in self._live()
        )

    # -- fleet accounting ----------------------------------------------
    @property
    def makespan_ms(self) -> float:
        """Longest per-shard simulated busy time — the fleet's critical
        path under saturation (dead shards' past work still counts)."""
        return max((s.busy_ms for s in self._shards.values()), default=0.0)

    @property
    def aggregate_throughput_rps(self) -> float:
        """Served requests per simulated second of the busiest shard."""
        served = self.metrics.completed - self.metrics.failed
        makespan = self.makespan_ms
        if not served or makespan <= 0:
            return 0.0
        return served / (makespan / 1e3)

    @property
    def scaling_efficiency(self) -> float:
        """Fraction of linear scaling achieved: total simulated work over
        (live shards x critical path).  1.0 = perfectly balanced fleet."""
        shards = [s for s in self._shards.values() if s.busy_ms > 0 or s.alive]
        makespan = self.makespan_ms
        if not shards or makespan <= 0:
            return 1.0
        total = sum(s.busy_ms for s in shards)
        return total / (len(shards) * makespan)

    def snapshot(self) -> dict:
        """Cluster scoreboard plus a per-shard breakdown (JSON-friendly)."""
        fleet = [s.server.metrics for s in self._shards.values()]
        out = {
            "cluster": {
                **self.metrics.snapshot(),
                "shards_live": len(self.ring),
                "routing_skew": self.routing_skew,
                "makespan_ms": self.makespan_ms,
                "throughput_rps": self.aggregate_throughput_rps,
                "scaling_efficiency": self.scaling_efficiency,
                "speculative_misses": sum(m.speculative_misses for m in fleet),
                "speculative_swaps": sum(m.speculative_swaps for m in fleet),
                "speculative_skipped": sum(m.speculative_skipped for m in fleet),
                "plan_reuses": sum(m.plan_reuses for m in fleet),
                "bandit_observations": sum(m.bandit_observations for m in fleet),
                "bandit_overrides": sum(m.bandit_overrides for m in fleet),
                "bandit_explorations": sum(m.bandit_explorations for m in fleet),
                "bandit_flips": sum(m.bandit_flips for m in fleet),
                "bandit_retrains": sum(m.bandit_retrains for m in fleet),
            },
            "slo": self.slo.snapshot() if self.slo is not None else None,
            "shards": [],
        }
        for shard_id in sorted(self._shards):
            s = self._shards[shard_id]
            m = s.server.metrics
            out["shards"].append(
                {
                    "shard_id": shard_id,
                    "alive": s.alive,
                    "devices": s.num_devices,
                    "routed": s.routed,
                    "completed": s.completed,
                    "busy_ms": s.busy_ms,
                    "qps": (
                        s.completed / (s.busy_ms / 1e3) if s.busy_ms > 0 else 0.0
                    ),
                    "requests": m.requests,
                    "hit_rate": m.hit_rate,
                    "availability": m.availability,
                    "plan_reuses": m.plan_reuses,
                    "graph_stages": m.graph_stages,
                    "cache": s.server.cache.stats(),
                }
            )
        return out

    def report(self) -> str:
        """Plain-text fleet report for terminal output."""
        m = self.metrics
        lines = [
            f"shards              {len(self.ring)} live "
            f"(+{m.shards_added} added, -{m.shards_removed} removed, "
            f"x{m.shards_killed} killed)",
            f"routed              {m.routed} "
            f"({m.replica_routes} via replicas, {m.rerouted} rerouted)",
            f"completed/failed    {m.completed}/{m.failed} "
            f"(availability {m.availability:.2%})",
            f"hot keys            {m.hot_keys} "
            f"({m.plans_replicated} plans replicated)",
            f"migrated plans      {m.plans_migrated} "
            f"(last remigration {m.last_remigration_fraction:.1%})",
            f"routing skew        {self.routing_skew:.2f}x",
            f"fleet makespan      {self.makespan_ms:.3f} simulated ms "
            f"({self.aggregate_throughput_rps:.1f} req/s, "
            f"{self.scaling_efficiency:.0%} of linear)",
        ]
        for shard_id in sorted(self._shards):
            s = self._shards[shard_id]
            state = "" if s.alive else " [DEAD]"
            lines.append(
                f"{shard_id:20s}{s.routed} routed, {s.completed} served, "
                f"{s.server.metrics.hit_rate:.0%} hits, "
                f"{s.busy_ms:.3f} ms busy{state}"
            )
        if self.metrics.attribution.count:
            lines.append(self.metrics.report())
        if self.slo is not None:
            lines.append(self.slo.report())
        return "\n".join(lines)
