"""Hot-fingerprint detection over a sliding request window.

Zipf traffic (the serving workload's model, and what GNN/recommender
fleets actually see) concentrates a large share of requests on one or a
few matrices.  Consistent hashing pins each fingerprint to one shard, so
a dominant fingerprint turns its shard into the fleet's bottleneck no
matter how many shards exist.  The cluster's answer is replication: once
a key's share of the *recent* request stream crosses a threshold, its
cached plan is copied to the next shards on the ring and traffic is
spread among the replicas with power-of-two-choices routing.

:class:`WindowedFrequencySketch` supplies the detection signal: exact
per-key counts over the last ``window`` observations, held in a ring
buffer so memory is O(``window``) no matter how many distinct keys pass
through — the bounded-memory guarantee of a frequency sketch, with zero
approximation error at serving-window scale.  The window slides, so a
key that *was* hot decays back to cold as traffic moves on, which is
what lets replication track a drifting workload.
"""

from __future__ import annotations

from collections import Counter, deque

#: Default sliding-window length (requests).
DEFAULT_WINDOW = 512


class WindowedFrequencySketch:
    """Exact key frequencies over the last ``window`` observations.

    ``observe`` is O(1): append to the ring buffer, bump the counter,
    and decrement the evicted key's count.  ``frequency`` is the key's
    share of the *current* window (not of all traffic ever), which is
    the right signal for replication — yesterday's hot matrix should not
    stay pinned to extra shards forever.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._recent: deque[str] = deque()
        self._counts: Counter[str] = Counter()

    def __len__(self) -> int:
        """Observations currently inside the window."""
        return len(self._recent)

    def observe(self, key: str) -> None:
        """Record one request for ``key``, evicting the oldest if full."""
        self._recent.append(key)
        self._counts[key] += 1
        if len(self._recent) > self.window:
            evicted = self._recent.popleft()
            remaining = self._counts[evicted] - 1
            if remaining:
                self._counts[evicted] = remaining
            else:
                del self._counts[evicted]

    def count(self, key: str) -> int:
        """Occurrences of ``key`` inside the current window."""
        return self._counts.get(key, 0)

    def frequency(self, key: str) -> float:
        """``key``'s share of the current window (0.0 when empty)."""
        seen = len(self._recent)
        if not seen:
            return 0.0
        return self._counts.get(key, 0) / seen

    def hot_keys(self, min_fraction: float) -> list[str]:
        """Keys at or above ``min_fraction`` of the window, hottest first."""
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
        seen = len(self._recent)
        if not seen:
            return []
        threshold = min_fraction * seen
        hot = [(c, k) for k, c in self._counts.items() if c >= threshold]
        return [k for _, k in sorted(hot, key=lambda ck: (-ck[0], ck[1]))]
