"""Cluster-level scoreboard: routing, replication, and membership.

Complements the per-shard :class:`~repro.serve.metrics.ServerMetrics`
(each shard's server keeps counting requests/hits/failures underneath):
this scoreboard tracks what the *fleet* layer did — where the router
sent traffic, how often hot-key replicas absorbed it, how many plans
crossed shards during membership changes, and whether any request was
lost at cluster level.  Every counter is published onto
:attr:`registry`; the frontend additionally binds live gauges (shard
count, routing skew, aggregate throughput) whose values depend on its
own state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import AttributionCollector, MetricsRegistry


@dataclass
class ClusterMetrics:
    """Scoreboard updated by :class:`repro.serve.cluster.ClusterFrontend`."""

    #: Routing decisions made (original submits + reroutes after failure).
    routed: int = 0
    #: Routes resolved by power-of-two-choices among a hot key's replicas.
    replica_routes: int = 0
    #: Requests re-routed to another shard after their shard failed them.
    rerouted: int = 0
    #: Requests with a final response (served or failed, after reroutes).
    completed: int = 0
    #: Requests that failed on every shard the router was willing to try.
    failed: int = 0
    #: Graph (DAG) requests routed and served end to end.
    graphs: int = 0
    #: Device op stages executed inside graph requests, fleet-wide.
    graph_stages: int = 0
    #: Distinct fingerprints that ever crossed the hot threshold.
    hot_keys: int = 0
    #: Cached plans copied to replica shards (hot-key replication).
    plans_replicated: int = 0
    #: Cached plans moved between shards by membership changes.
    plans_migrated: int = 0
    shards_added: int = 0
    shards_removed: int = 0
    shards_killed: int = 0
    #: Cached-key remigration fraction of the latest membership change.
    last_remigration_fraction: float = 0.0
    #: Registry this scoreboard publishes onto.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Cluster-level per-request stage breakdown (queue_wait / compose /
    #: launch / retry_backoff / migration) for tail-latency attribution;
    #: publishes ``cluster_stage_ms{stage="..."}`` histograms (with trace
    #: exemplars) onto :attr:`registry`.
    attribution: AttributionCollector | None = None

    def __post_init__(self) -> None:
        if self.attribution is None:
            self.attribution = AttributionCollector(
                self.registry, prefix="cluster_stage"
            )
        r = self.registry
        for name, help_text, attr in (
            ("cluster_routed_total", "Routing decisions made", "routed"),
            ("cluster_replica_routes_total",
             "Routes resolved among hot-key replicas", "replica_routes"),
            ("cluster_rerouted_total",
             "Requests re-routed after a shard-level failure", "rerouted"),
            ("cluster_completed_total",
             "Requests with a final cluster-level response", "completed"),
            ("cluster_failed_total",
             "Requests failed on every shard tried", "failed"),
            ("cluster_graphs_total",
             "Graph (DAG) requests served end to end", "graphs"),
            ("cluster_graph_stages_total",
             "Device op stages executed inside graph requests",
             "graph_stages"),
            ("cluster_hot_keys_total",
             "Distinct fingerprints that crossed the hot threshold",
             "hot_keys"),
            ("cluster_plans_replicated_total",
             "Cached plans copied to replica shards", "plans_replicated"),
            ("cluster_plans_migrated_total",
             "Cached plans moved by membership changes", "plans_migrated"),
            ("cluster_shards_added_total", "Shards added", "shards_added"),
            ("cluster_shards_removed_total",
             "Shards removed gracefully", "shards_removed"),
            ("cluster_shards_killed_total",
             "Shards killed by chaos", "shards_killed"),
        ):
            r.counter(name, help_text,
                      callback=lambda self=self, a=attr: getattr(self, a))
        r.gauge("cluster_availability",
                "Fraction of completed requests served",
                callback=lambda self=self: self.availability)
        r.gauge("cluster_remigration_fraction",
                "Cached-key remigration fraction of the last membership change",
                callback=lambda self=self: self.last_remigration_fraction)

    @property
    def availability(self) -> float:
        """Fraction of completed requests served (1.0 with no traffic)."""
        if not self.completed:
            return 1.0
        return 1.0 - self.failed / self.completed

    def snapshot(self) -> dict:
        """Flat, JSON-friendly view of the cluster scoreboard."""
        return {
            "routed": self.routed,
            "replica_routes": self.replica_routes,
            "rerouted": self.rerouted,
            "completed": self.completed,
            "failed": self.failed,
            "availability": self.availability,
            "graphs": self.graphs,
            "graph_stages": self.graph_stages,
            "hot_keys": self.hot_keys,
            "plans_replicated": self.plans_replicated,
            "plans_migrated": self.plans_migrated,
            "shards_added": self.shards_added,
            "shards_removed": self.shards_removed,
            "shards_killed": self.shards_killed,
            "last_remigration_fraction": self.last_remigration_fraction,
            "attribution": self.attribution.snapshot(),
        }

    def report(self) -> str:
        """Plain-text tail-latency attribution over the fleet's requests
        (the cluster counters render through the frontend's report)."""
        return self.attribution.report()
