"""Consistent-hash ring mapping plan fingerprints to serving shards.

Sharding a plan cache is a *routing* problem: LiteForm's amortization
argument (Figures 8-9) only survives fleet scale if requests for the
same matrix fingerprint land on the shard that already holds its
composed plan.  A modulo hash would remap almost every key whenever the
fleet grows or a shard dies; a consistent-hash ring with virtual nodes
remaps only the slice of the key space the changed shard owns —
``~1/N`` of all keys for a membership change in an ``N``-shard fleet.

Mechanics (classic Karger-style ring):

* every shard owns ``virtual_nodes`` points on a 64-bit ring, placed by
  hashing ``"{shard}#{vnode}"`` with BLAKE2b — deterministic, so two
  rings built from the same membership always agree;
* a key routes to the owner of the first ring point at or clockwise
  after its own hash;
* adding a shard only captures arcs for the new shard's points;
  removing one only releases its arcs to their successors.  Keys whose
  owner did not change are untouched *by construction*.

The remigration cost of a membership change is measurable:
:meth:`ShardRing.assignment` snapshots the key→shard mapping for any key
set and :func:`remigration_fraction` compares two snapshots, which is
what the cluster benchmark's ``≤ ~1.5/N`` bound checks.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

#: Default virtual nodes per shard.  Arc-length imbalance shrinks like
#: ``1/sqrt(virtual_nodes)``; 64 keeps the max/mean shard share within
#: ~1.3x while membership changes stay cheap to apply.
DEFAULT_VIRTUAL_NODES = 64

#: Domain-separation prefix mixed into every ring hash.
_RING_SALT = b"repro-ring-v1:"


def _hash64(token: str) -> int:
    """Deterministic 64-bit ring position of ``token``."""
    digest = hashlib.blake2b(_RING_SALT + token.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """Consistent-hash router over a set of named shards.

    Routing is a pure function of the live membership: the same shards
    (regardless of insertion order) produce the same ring, so a restarted
    frontend routes exactly like its predecessor — and an ``add_shard``
    followed by ``remove_shard`` of the same name restores the original
    assignment bit for bit.
    """

    def __init__(
        self,
        shards: Iterable[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = int(virtual_nodes)
        self._shards: set[str] = set()
        #: Sorted ring positions and their owners (parallel lists).
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    @property
    def shards(self) -> tuple[str, ...]:
        """Live shard ids, sorted (stable across insertion orders)."""
        return tuple(sorted(self._shards))

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        pairs = sorted(
            (_hash64(f"{shard}#{v}"), shard)
            for shard in self._shards
            for v in range(self.virtual_nodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [s for _, s in pairs]

    def add_shard(self, shard_id: str) -> None:
        """Join ``shard_id``; its virtual nodes capture ~1/N of the ring."""
        if not shard_id:
            raise ValueError("shard_id must be a non-empty string")
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.add(shard_id)
        self._rebuild()

    def remove_shard(self, shard_id: str) -> None:
        """Leave the ring; the shard's arcs fall to their successors."""
        if shard_id not in self._shards:
            raise KeyError(f"shard {shard_id!r} not on the ring")
        self._shards.remove(shard_id)
        self._rebuild()

    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise of its hash)."""
        if not self._shards:
            raise RuntimeError("cannot route on an empty ring")
        idx = bisect_right(self._points, _hash64(key)) % len(self._points)
        return self._owners[idx]

    def route_replicas(self, key: str, k: int) -> list[str]:
        """The ``k`` distinct shards walking clockwise from ``key``.

        The first entry is :meth:`route`'s owner (the primary); the rest
        are the natural replica set — successors on the ring — so replica
        placement is as stable under membership changes as primary
        placement.  Capped at the number of live shards.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self._shards:
            raise RuntimeError("cannot route on an empty ring")
        k = min(k, len(self._shards))
        start = bisect_right(self._points, _hash64(key))
        out: list[str] = []
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == k:
                    break
        return out

    # ------------------------------------------------------------------
    def assignment(self, keys: Iterable[str]) -> dict[str, str]:
        """Snapshot ``{key: shard}`` for a key set (remigration probes)."""
        return {key: self.route(key) for key in keys}

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys owned per shard (every live shard present, possibly 0)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts


def remigration_fraction(before: dict[str, str], after: dict[str, str]) -> float:
    """Fraction of commonly-routed keys whose owner changed.

    Feed it two :meth:`ShardRing.assignment` snapshots taken around a
    membership change; consistent hashing promises the result stays near
    ``1/N`` (only the changed shard's arcs move), against which the
    cluster acceptance bound of ``≤ ~1.5/N`` is asserted.
    """
    common = before.keys() & after.keys()
    if not common:
        return 0.0
    moved = sum(1 for key in common if before[key] != after[key])
    return moved / len(common)
