"""Content fingerprints for CSR matrices — the plan-cache key.

A composed plan is a pure function of the sparsity structure (and the
matrix values stored inside the built format), so two requests carrying
the same matrix can share one plan.  The fingerprint must therefore be

* **deterministic** — the same CSR arrays always hash the same;
* **cheap** — fingerprinting a request must cost far less than composing
  it (the whole point of the cache), so very large index arrays are
  sampled in evenly spaced chunks rather than hashed end to end;
* **discriminating** — permuting rows, moving a non-zero, or changing a
  stored value must change the key (values are included by default
  because the cached plan's format embeds them; a value-blind key could
  serve stale numerics).

Chunk sampling trades a vanishing collision probability for speed: two
matrices that agree on shape, nnz, and every sampled byte of
``indptr``/``indices``/``data`` are treated as identical.  Arrays at or
below ``sample_budget_bytes`` (default 1 MiB each, covering everything in
this repo's simulated scale) are hashed in full.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

#: Number of evenly spaced chunks hashed from an over-budget array.
NUM_SAMPLE_CHUNKS = 16


def _hash_array(h: "hashlib._Hash", arr: np.ndarray, budget: int) -> None:
    """Feed ``arr`` (or evenly spaced chunks of it) into digest ``h``."""
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(arr.size.to_bytes(8, "little"))
    if arr.nbytes <= budget:
        h.update(arr.tobytes())
        return
    itemsize = max(1, arr.itemsize)
    chunk_elems = max(1, budget // (NUM_SAMPLE_CHUNKS * itemsize))
    starts = np.linspace(0, arr.size - chunk_elems, NUM_SAMPLE_CHUNKS).astype(np.int64)
    for s in starts:
        h.update(arr[s : s + chunk_elems].tobytes())


@dataclass(frozen=True)
class MatrixFingerprint:
    """Identity of one CSR matrix as seen by the plan cache."""

    rows: int
    cols: int
    nnz: int
    digest: str

    @property
    def key(self) -> str:
        """Stable string form: ``<digest>-<rows>x<cols>-<nnz>``."""
        return f"{self.digest}-{self.rows}x{self.cols}-{self.nnz}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key


def fingerprint_csr(
    A: sp.csr_matrix,
    include_values: bool = True,
    sample_budget_bytes: int = 1 << 20,
) -> MatrixFingerprint:
    """Fingerprint a canonical CSR matrix (sorted indices, no duplicates).

    ``include_values=False`` keys on the sparsity pattern alone — useful
    when the caller guarantees values travel with the pattern (e.g. a
    normalized adjacency matrix regenerated per request) and wants hits
    across value-perturbed copies.  The server default keeps values in.
    """
    if not sp.issparse(A) or A.format != "csr":
        raise TypeError(f"fingerprint_csr requires a CSR matrix, got {type(A).__name__}")
    if sample_budget_bytes < 64:
        raise ValueError(f"sample_budget_bytes too small: {sample_budget_bytes}")
    h = hashlib.blake2b(digest_size=16)
    h.update(b"repro-fp-v1")
    h.update(int(A.shape[0]).to_bytes(8, "little"))
    h.update(int(A.shape[1]).to_bytes(8, "little"))
    h.update(int(A.nnz).to_bytes(8, "little"))
    _hash_array(h, A.indptr, sample_budget_bytes)
    _hash_array(h, A.indices, sample_budget_bytes)
    if include_values:
        _hash_array(h, A.data, sample_budget_bytes)
    return MatrixFingerprint(
        rows=int(A.shape[0]),
        cols=int(A.shape[1]),
        nnz=int(A.nnz),
        digest=h.hexdigest(),
    )


#: Op kinds the serving stack can plan and dispatch.  The plan key carries
#: the op because a composed format is shared across ops but the *kernel*
#: bound to it is op-specific (SpMM, SDDMM, and SpMV traverse the same
#: structure with different operand shapes and cost profiles).
OP_KINDS: tuple[str, ...] = ("spmm", "sddmm", "spmv")


def plan_key(fp: MatrixFingerprint, J: int, op: str = "spmm") -> str:
    """Cache key for one ``(matrix, op, J)`` triple — plans are J-specific
    because the bucket-width search optimizes for the operand width, and
    op-specific because the bound kernel differs per op."""
    if J < 1:
        raise ValueError(f"J must be >= 1, got {J}")
    if op not in OP_KINDS:
        raise ValueError(f"unknown op {op!r}; choose from {list(OP_KINDS)}")
    return f"{fp.key}/{op}/J{J}"


def plan_op(key: str) -> str:
    """Recover the op segment from a plan key (legacy keys imply spmm)."""
    head = key.rsplit("/J", 1)[0]
    op = head.rsplit("/", 1)[-1]
    return op if op in OP_KINDS else "spmm"
