"""DAG requests — GNN layer chains over the op-level serving API.

A GNN inference layer is not one SpMM: a GAT-style layer is the chain
``SDDMM (edge scores) → softmax-normalize → SpMM (aggregate) → dense
update``, and a GCN layer is the same shape with a degree-based
normalization.  Every device stage of the chain traverses the *same*
sparse adjacency structure, which is exactly the amortization the paper
measures in Fig. 8: compose once per (A, op-set), launch many.

:class:`GraphRequest` expresses one such chain as an ordered list of
:class:`OpStage` nodes with dataflow edges (``"@<stage>"`` references to
earlier stage outputs).  :class:`GraphEngine` executes it through an
:class:`~repro.serve.server.SpMMServer`:

* **device stages** (``spmm`` / ``sddmm`` / ``spmv``) become op-typed
  :class:`~repro.serve.server.OpRequest` traffic — each goes through the
  plan cache keyed on ``(fingerprint, op, J)``, and with
  ``reuse_structure`` (the default for graphs) a same-pattern miss
  refills the recorded composed geometry instead of re-running the
  pipeline, so stage outputs carrying fresh values (a normalized
  adjacency is a new value-fingerprint every layer) still cost only a
  format rebuild;
* **local stages** (``normalize`` / ``dense``) run inline on the host —
  deterministic vectorized NumPy, so a chain replays bit-identically.

:meth:`GraphEngine.run_wave` replays many graphs in stage-index lockstep
and coalesces same-wave SpMM stages that share a plan key into one fused
:meth:`~repro.serve.server.SpMMServer.serve_batch` launch — the DAG
equivalent of the scheduler's fingerprint coalescing.

Each stage emits a ``stage`` span under the graph's root span, and the
server's ``serve_graph_*`` counters make chains visible to the obs
stack.  See docs/GNN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE
from repro.obs import TraceContext, get_tracer
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.server import (
    OpRequest,
    OpResponse,
    ResponseStatus,
    SpMMServer,
)

#: Stage kinds executed on the device pool (as op-typed requests).
DEVICE_OPS = ("spmm", "sddmm", "spmv")

#: Stage kinds computed inline on the host.
LOCAL_OPS = ("normalize", "dense")


@dataclass
class OpStage:
    """One node of a graph request.

    ``matrix`` (device ops) is a literal sparse matrix or an
    ``"@<stage>"`` reference to an earlier stage's sparse output;
    ``inputs`` are dense (or sparse, for ``normalize``) operand
    references — literals or ``"@<stage>"`` strings.  Per op kind:

    * ``spmm`` — ``matrix @ inputs[0]`` (dense ``(K, J)`` operand);
    * ``spmv`` — ``matrix @ inputs[0]`` with the operand reshaped to one
      column;
    * ``sddmm`` — ``matrix .* (inputs[0] @ inputs[1].T)``;
    * ``normalize`` — row-normalize the sparse ``inputs[0]``
      (``kind="softmax"`` or ``kind="sum"``);
    * ``dense`` — ``inputs[0] @ weight`` with optional ``activation``
      (``"relu"``).
    """

    name: str
    op: str
    matrix: sp.spmatrix | str | None = None
    inputs: tuple = ()
    weight: np.ndarray | None = None
    activation: str | None = None
    kind: str = "softmax"


@dataclass
class GraphRequest:
    """A DAG of op stages served as one unit of traffic.

    Stages execute in list order; references must point backwards.
    ``reuse_structure`` (default on) lets every device stage sharing A's
    sparsity pattern reuse the one composed geometry — the graph-serving
    contract that makes compose cost per (A, op-set), not per stage.
    """

    stages: list[OpStage]
    name: str = ""
    deadline_ms: float | None = None
    arrival_ms: float = 0.0
    ctx: TraceContext | None = None
    reuse_structure: bool = True


@dataclass
class GraphResponse:
    """Outcome of one served graph request."""

    name: str
    #: stage name -> stage output (ndarray, or CSR for sparse outputs).
    outputs: dict = field(default_factory=dict)
    #: device stage name -> the stage's :class:`OpResponse`.
    responses: dict = field(default_factory=dict)
    status: ResponseStatus = ResponseStatus.OK
    #: Sum of device-stage latencies plus host-side stage wall time.
    latency_ms: float = 0.0
    stages_total: int = 0
    device_stages: int = 0
    cache_hits: int = 0
    #: Device stages served by the structural-reuse rebuild path.
    plan_reuses: int = 0
    #: Composition overhead actually paid across the chain (wall clock).
    compose_overhead_s: float = 0.0
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK

    @property
    def failed(self) -> bool:
        return self.status is ResponseStatus.FAILED

    @property
    def output(self):
        """The final stage's output (the chain's result)."""
        if not self.outputs:
            return None
        return next(reversed(self.outputs.values()))


# ----------------------------------------------------------------------
def plan_key_for_graph(graph: GraphRequest) -> str:
    """Routing key for a whole graph: the plan key of its first device
    stage carrying a literal matrix (a GNN chain's anchor adjacency).
    Falls back to a name-derived key for graphs with no literal matrix.
    """
    for stage in graph.stages:
        if stage.op in DEVICE_OPS and sp.issparse(stage.matrix):
            A = SpMMServer._canonical(stage.matrix)
            J = 1
            first = stage.inputs[0] if stage.inputs else None
            if isinstance(first, np.ndarray) and first.ndim == 2:
                J = int(first.shape[1])
            return plan_key(fingerprint_csr(A), max(1, J), stage.op)
    return f"graph:{graph.name or 'anonymous'}"


def row_softmax(S: sp.csr_matrix) -> sp.csr_matrix:
    """Row-wise softmax over the stored values (pattern preserved).

    Vectorized with ``reduceat`` over the CSR row pointer — deterministic,
    max-shifted for stability, float32 result like every kernel output.
    """
    S = S.tocsr().copy()
    lens = np.diff(S.indptr)
    nz = lens > 0
    if not nz.any():
        return S.astype(VALUE_DTYPE)
    starts = S.indptr[:-1][nz]
    data = S.data.astype(np.float64)
    row_max = np.maximum.reduceat(data, starts)
    shifted = np.exp(data - np.repeat(row_max, lens[nz]))
    sums = np.add.reduceat(shifted, starts)
    S.data = (shifted / np.repeat(sums, lens[nz])).astype(VALUE_DTYPE)
    return S


def row_sum_normalize(S: sp.csr_matrix) -> sp.csr_matrix:
    """Divide each row by its value sum (GCN-style mean aggregation)."""
    S = S.tocsr().copy()
    lens = np.diff(S.indptr)
    nz = lens > 0
    if not nz.any():
        return S.astype(VALUE_DTYPE)
    starts = S.indptr[:-1][nz]
    data = S.data.astype(np.float64)
    sums = np.add.reduceat(data, starts)
    sums[sums == 0.0] = 1.0
    S.data = (data / np.repeat(sums, lens[nz])).astype(VALUE_DTYPE)
    return S


_NORMALIZE_KINDS = {"softmax": row_softmax, "sum": row_sum_normalize}


class GraphEngine:
    """Execute graph requests against one :class:`SpMMServer`."""

    def __init__(self, server: SpMMServer):
        self.server = server

    # -- validation / resolution ---------------------------------------
    @staticmethod
    def _validate(graph: GraphRequest) -> None:
        seen: set[str] = set()
        if not graph.stages:
            raise ValueError("graph request has no stages")
        for stage in graph.stages:
            if not stage.name:
                raise ValueError("every stage needs a name")
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            if stage.op not in DEVICE_OPS + LOCAL_OPS:
                raise ValueError(
                    f"unknown stage op {stage.op!r}; choose from "
                    f"{list(DEVICE_OPS + LOCAL_OPS)}"
                )
            for ref in list(stage.inputs) + [stage.matrix]:
                if isinstance(ref, str):
                    if not ref.startswith("@"):
                        raise ValueError(
                            f"stage {stage.name!r}: string operand {ref!r} "
                            f"must be an '@<stage>' reference"
                        )
                    if ref[1:] not in seen:
                        raise ValueError(
                            f"stage {stage.name!r}: reference {ref!r} does "
                            f"not name an earlier stage"
                        )
            n_inputs = {"spmm": 1, "spmv": 1, "sddmm": 2,
                        "normalize": 1, "dense": 1}[stage.op]
            if len(stage.inputs) != n_inputs:
                raise ValueError(
                    f"stage {stage.name!r} ({stage.op}) takes {n_inputs} "
                    f"input(s), got {len(stage.inputs)}"
                )
            if stage.op in DEVICE_OPS and stage.matrix is None:
                raise ValueError(f"stage {stage.name!r} ({stage.op}) needs a matrix")
            if stage.op == "dense" and stage.weight is None:
                raise ValueError(f"dense stage {stage.name!r} needs a weight")
            if stage.op == "normalize" and stage.kind not in _NORMALIZE_KINDS:
                raise ValueError(
                    f"unknown normalize kind {stage.kind!r}; choose from "
                    f"{list(_NORMALIZE_KINDS)}"
                )
            seen.add(stage.name)

    @staticmethod
    def _resolve(ref, outputs: dict):
        if isinstance(ref, str):
            return outputs[ref[1:]]
        return ref

    def _stage_request(
        self, graph: GraphRequest, stage: OpStage, outputs: dict,
        ctx: TraceContext | None,
    ) -> OpRequest:
        A = self._resolve(stage.matrix, outputs)
        name = f"{graph.name}/{stage.name}" if graph.name else stage.name
        common = dict(
            matrix=A,
            name=name,
            ctx=ctx,
            op=stage.op,
            reuse_structure=graph.reuse_structure,
        )
        if stage.op == "sddmm":
            U = np.asarray(self._resolve(stage.inputs[0], outputs))
            V = np.asarray(self._resolve(stage.inputs[1], outputs))
            return OpRequest(B=None, J=int(U.shape[1]), operands=(U, V), **common)
        B = np.asarray(self._resolve(stage.inputs[0], outputs))
        if stage.op == "spmv":
            B = B.reshape(-1, 1)
            return OpRequest(B=B, J=1, **common)
        return OpRequest(B=B, J=int(B.shape[1]), **common)

    @staticmethod
    def _local_stage(stage: OpStage, outputs: dict):
        x = GraphEngine._resolve(stage.inputs[0], outputs)
        if stage.op == "normalize":
            return _NORMALIZE_KINDS[stage.kind](x)
        H = np.asarray(x, dtype=VALUE_DTYPE)
        out = (H @ np.asarray(stage.weight, dtype=VALUE_DTYPE)).astype(VALUE_DTYPE)
        if stage.activation == "relu":
            out = np.maximum(out, np.float32(0.0))
        elif stage.activation is not None:
            raise ValueError(f"unknown activation {stage.activation!r}")
        return out

    # -- single-graph execution ----------------------------------------
    def run(self, graph: GraphRequest) -> GraphResponse:
        """Serve one graph, stages in dataflow order, each device stage
        an op-typed request under the graph's trace context."""
        self._validate(graph)
        server = self.server
        m = server.metrics
        tracer = get_tracer()
        ctx = graph.ctx
        if ctx is None and tracer.enabled:
            ctx = TraceContext.mint("graph")
        resp = GraphResponse(
            name=graph.name,
            stages_total=len(graph.stages),
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        m.graphs += 1
        with tracer.span(
            "graph", ctx=ctx, name=graph.name or "anonymous",
            stages=len(graph.stages),
        ) as g_span:
            for stage in graph.stages:
                with tracer.span("stage", name=stage.name, op=stage.op):
                    if stage.op in DEVICE_OPS:
                        request = self._stage_request(graph, stage, resp.outputs, ctx)
                        if graph.deadline_ms is not None:
                            request.deadline_ms = graph.deadline_ms
                        r = server._serve_one(request)
                        m.graph_stages += 1
                        self._fold_device_stage(resp, stage, r)
                        if r.failed:
                            break
                    else:
                        t0 = time.perf_counter()
                        resp.outputs[stage.name] = self._local_stage(
                            stage, resp.outputs
                        )
                        resp.latency_ms += (time.perf_counter() - t0) * 1e3
            g_span.set(
                status=resp.status.value,
                device_stages=resp.device_stages,
                plan_reuses=resp.plan_reuses,
            )
        return resp

    @staticmethod
    def _fold_device_stage(
        resp: GraphResponse, stage: OpStage, r: OpResponse
    ) -> None:
        resp.responses[stage.name] = r
        resp.outputs[stage.name] = r.C
        resp.device_stages += 1
        resp.latency_ms += r.latency_ms
        resp.compose_overhead_s += r.compose_overhead_s
        resp.cache_hits += int(r.cache_hit)
        resp.plan_reuses += int(r.plan_reused)
        if r.failed:
            resp.status = ResponseStatus.FAILED
        elif r.status is ResponseStatus.DEGRADED and resp.ok:
            resp.status = ResponseStatus.DEGRADED

    # -- cross-graph wave replay ----------------------------------------
    def run_wave(self, graphs: list[GraphRequest]) -> list[GraphResponse]:
        """Replay many graphs in stage-index lockstep.

        At each wave (stage position), SpMM stages sharing one
        ``(fingerprint, op, J)`` plan key are fused into a single
        :meth:`SpMMServer.serve_batch` launch; every other stage is
        served singly.  Stage dataflow only points backwards, so wave
        order preserves every graph's sequential semantics — per-graph
        results are bit-identical to :meth:`run`.
        """
        if not graphs:
            return []
        server = self.server
        m = server.metrics
        tracer = get_tracer()
        for g in graphs:
            self._validate(g)
        ctxs = [
            g.ctx if g.ctx is not None
            else (TraceContext.mint("graph") if tracer.enabled else None)
            for g in graphs
        ]
        out = [
            GraphResponse(
                name=g.name,
                stages_total=len(g.stages),
                trace_id=c.trace_id if c is not None else None,
            )
            for g, c in zip(graphs, ctxs)
        ]
        m.graphs += len(graphs)
        depth = max(len(g.stages) for g in graphs)
        with tracer.span("graph_wave_replay", graphs=len(graphs), waves=depth):
            for i in range(depth):
                wave = [
                    (gi, g.stages[i])
                    for gi, g in enumerate(graphs)
                    if i < len(g.stages) and not out[gi].failed
                ]
                fusable: dict[str, list] = {}
                for gi, stage in wave:
                    if stage.op not in DEVICE_OPS:
                        t0 = time.perf_counter()
                        out[gi].outputs[stage.name] = self._local_stage(
                            stage, out[gi].outputs
                        )
                        out[gi].latency_ms += (time.perf_counter() - t0) * 1e3
                        continue
                    request = self._stage_request(
                        graphs[gi], stage, out[gi].outputs, ctxs[gi]
                    )
                    m.graph_stages += 1
                    if stage.op != "spmm" or request.B is None:
                        self._fold_device_stage(
                            out[gi], stage, server._serve_one(request)
                        )
                        continue
                    A = server._canonical(request.matrix)
                    key = plan_key(fingerprint_csr(A), request.J, "spmm")
                    fusable.setdefault(key, []).append((gi, stage, request, A))
                for key, members in fusable.items():
                    requests = [r for _, _, r, _ in members]
                    prepared = [(A, key) for _, _, _, A in members]
                    responses = server.serve_batch(requests, prepared=prepared)
                    for (gi, stage, _, _), r in zip(members, responses):
                        self._fold_device_stage(out[gi], stage, r)
        return out
