"""Serving counters and latency aggregates.

:class:`ServerMetrics` is the server-side scoreboard: request and
degradation counters, composition time spent vs. saved (the quantity the
plan cache exists to recover — Figures 8-9 measure exactly this overhead
per compose), and latency percentiles over the simulated execution times.
``snapshot()`` returns a flat JSON-friendly dict; ``report()`` renders a
plain-text summary for the CLI.

Memory is bounded under sustained traffic: :class:`LatencySeries` keeps a
fixed-size reservoir sample (Vitter's Algorithm R) instead of an
append-only list, with exact running count/mean/max, and every scoreboard
field is published onto a :class:`repro.obs.MetricsRegistry` (callback
instruments for the counters, fixed-bucket streaming histograms for the
latencies) so ``cli stats`` can render a Prometheus-style exposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import AttributionCollector, MetricsRegistry

#: Percentiles reported by every latency summary.
PERCENTILES = (50, 95, 99)

#: Default reservoir capacity of a :class:`LatencySeries` — exact
#: percentiles up to this many observations, a uniform sample beyond.
DEFAULT_MAX_SAMPLES = 4096


class LatencySeries:
    """Latency aggregate with bounded memory and percentile summaries.

    Up to ``max_samples`` observations are stored verbatim (percentiles
    are exact); past that, reservoir sampling keeps a uniform sample of
    everything seen, so memory stays O(``max_samples``) under sustained
    traffic while ``count``, ``mean``, and ``max`` remain exact.  The
    reservoir's RNG is seeded, keeping replays deterministic.
    """

    def __init__(self, unit: str = "ms", max_samples: int = DEFAULT_MAX_SAMPLES,
                 seed: int = 0):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.unit = unit
        self.max_samples = int(max_samples)
        self._rng = np.random.default_rng(seed)
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if len(self._values) < self.max_samples:
            self._values.append(value)
        else:
            # Algorithm R: keep each of the _count observations with
            # probability max_samples / _count.
            j = int(self._rng.integers(0, self._count))
            if j < self.max_samples:
                self._values[j] = value

    def __len__(self) -> int:
        """Total observations seen (not the retained sample size)."""
        return self._count

    @property
    def values(self) -> np.ndarray:
        """The retained sample (all values while under ``max_samples``)."""
        return np.asarray(self._values, dtype=np.float64)

    def percentile(self, p: float) -> float:
        if not self._values:
            return 0.0
        return float(np.percentile(self.values, p))

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def summary(self) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ..., "mean": ..., "max": ...}``."""
        out = {f"p{p}": self.percentile(p) for p in PERCENTILES}
        out["mean"] = self.mean
        out["max"] = self.max
        return out


@dataclass
class ServerMetrics:
    """Scoreboard updated by :class:`repro.serve.server.SpMMServer`.

    Every field is mirrored onto :attr:`registry` (a per-instance
    :class:`~repro.obs.MetricsRegistry` by default; pass
    ``repro.obs.get_registry()`` to publish onto the process-wide one).
    """

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Requests served the CSR fallback plan by admission control.
    degraded: int = 0
    #: Requests whose composition overhead exceeded their deadline anyway.
    deadline_misses: int = 0
    #: Requests that exhausted every recovery path and were not served.
    failed: int = 0
    #: Extra execution attempts beyond each request's first.
    retries: int = 0
    #: Requests that failed at least one attempt but were ultimately served.
    recovered: int = 0
    #: Plans rebuilt as CSR after a structural OOM (graceful degradation).
    oom_degraded: int = 0
    #: Device-lost errors observed across the pool.
    device_lost: int = 0
    #: Circuit-breaker trips (closed/half-open -> open) across the pool.
    breaker_open: int = 0
    #: Cache misses served the immediate CSR plan while a background
    #: compose ran (speculative recompose).
    speculative_misses: int = 0
    #: Background composes swapped into the plan cache when ready.
    speculative_swaps: int = 0
    #: Background composes discarded instead of swapped (the key's entry
    #: was pinned by a structural-OOM degrade, or the compose errored).
    speculative_skipped: int = 0
    #: Graph (DAG) requests served end to end.
    graphs: int = 0
    #: Device op stages (spmm/sddmm/spmv) executed inside graph requests.
    graph_stages: int = 0
    #: Cache misses served by rebuilding a recorded composed geometry for
    #: a same-pattern matrix instead of re-running the pipeline.
    plan_reuses: int = 0
    #: Successful requests whose simulated latency was fed to the format
    #: bandit as reward (adaptive serving; docs/ADAPTIVE.md).
    bandit_observations: int = 0
    #: Requests whose format was chosen by the bandit instead of the
    #: static selector (post-handoff Thompson decisions).
    bandit_overrides: int = 0
    #: Pre-handoff decisions where the bandit played a random arm.
    bandit_explorations: int = 0
    #: Plan-cache entries re-pinned because the bandit flipped a key to a
    #: different format arm than the cached plan's.
    bandit_flips: int = 0
    #: Periodic refits of the static format selector on serving-derived
    #: training samples.
    bandit_retrains: int = 0
    #: Wall-clock seconds spent on those geometry rebuilds (the cheap
    #: "re-value" path; compare against :attr:`compose_spent_s`).
    revalue_s: float = 0.0
    #: Wall-clock seconds spent composing (cache misses).
    compose_spent_s: float = 0.0
    #: Wall-clock seconds a compose-per-request server would have spent on
    #: the hits (credited from each cached entry's recorded overhead).
    compose_saved_s: float = 0.0
    #: Simulated kernel execution time per request.
    exec_ms: LatencySeries = field(default_factory=LatencySeries)
    #: End-to-end request latency: composition overhead + simulated execution.
    total_ms: LatencySeries = field(default_factory=LatencySeries)
    #: End-to-end latency of *failed* requests (overhead + retry backoff),
    #: kept out of the success series so they cannot skew p50/p95.
    failed_ms: LatencySeries = field(default_factory=LatencySeries)
    #: Registry this scoreboard publishes onto.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Per-request stage breakdown (queue_wait / compose / launch /
    #: retry_backoff) for tail-latency attribution; publishes
    #: ``serve_stage_ms{stage="..."}`` histograms onto :attr:`registry`.
    attribution: AttributionCollector | None = None

    def __post_init__(self) -> None:
        if self.attribution is None:
            self.attribution = AttributionCollector(
                self.registry, prefix="serve_stage"
            )
        r = self.registry
        for name, help_text, attr in (
            ("serve_requests_total", "Requests served", "requests"),
            ("serve_cache_hits_total", "Plan-cache hits", "cache_hits"),
            ("serve_cache_misses_total", "Plan-cache misses", "cache_misses"),
            ("serve_degraded_total", "Requests degraded to the CSR fallback",
             "degraded"),
            ("serve_deadline_misses_total", "Requests missing their deadline",
             "deadline_misses"),
            ("serve_failed_total",
             "Requests failing after exhausting retries and degradation",
             "failed"),
            ("serve_retries_total",
             "Execution attempts beyond each request's first", "retries"),
            ("serve_recovered_total",
             "Requests served despite at least one failed attempt",
             "recovered"),
            ("serve_oom_degraded_total",
             "Plans rebuilt as CSR after a structural OOM", "oom_degraded"),
            ("serve_device_lost_total",
             "Device-lost errors observed across the pool", "device_lost"),
            ("serve_breaker_open_total",
             "Circuit-breaker trips across the device pool", "breaker_open"),
            ("serve_speculative_misses_total",
             "Misses served the immediate CSR plan during a speculative "
             "recompose window", "speculative_misses"),
            ("serve_speculative_swaps_total",
             "Background composes swapped into the plan cache",
             "speculative_swaps"),
            ("serve_speculative_skipped_total",
             "Background composes discarded (OOM-pinned key or compose "
             "error)", "speculative_skipped"),
            ("serve_graph_requests_total", "Graph (DAG) requests served",
             "graphs"),
            ("serve_graph_stages_total",
             "Device op stages executed inside graph requests",
             "graph_stages"),
            ("serve_graph_plan_reuses_total",
             "Misses served by rebuilding a recorded composed geometry",
             "plan_reuses"),
            ("serve_bandit_observations_total",
             "Successful requests fed to the format bandit as reward",
             "bandit_observations"),
            ("serve_bandit_overrides_total",
             "Requests whose format the bandit chose over the static "
             "selector", "bandit_overrides"),
            ("serve_bandit_explorations_total",
             "Pre-handoff random-arm explorations by the format bandit",
             "bandit_explorations"),
            ("serve_bandit_flips_total",
             "Plan-cache entries re-pinned on a bandit format flip",
             "bandit_flips"),
            ("serve_bandit_retrains_total",
             "Static-selector refits on serving-derived samples",
             "bandit_retrains"),
            ("serve_graph_revalue_seconds",
             "Wall-clock seconds spent rebuilding recorded geometries",
             "revalue_s"),
            ("serve_compose_spent_seconds", "Wall-clock seconds spent composing",
             "compose_spent_s"),
            ("serve_compose_saved_seconds",
             "Composition seconds saved by cache hits", "compose_saved_s"),
        ):
            r.counter(name, help_text,
                      callback=lambda self=self, a=attr: getattr(self, a))
        r.gauge("serve_cache_hit_rate", "Plan-cache hit rate",
                callback=lambda self=self: self.hit_rate)
        self._exec_hist = r.histogram(
            "serve_exec_latency_ms", "Simulated kernel time per request (ms)"
        )
        self._total_hist = r.histogram(
            "serve_request_latency_ms",
            "End-to-end latency per request: compose overhead + execution (ms)",
        )
        self._failed_hist = r.histogram(
            "serve_failed_latency_ms",
            "End-to-end latency of failed requests: overhead + retry backoff (ms)",
        )

    def observe_latency(self, exec_ms: float, total_ms: float) -> None:
        """Record one *served* request's latencies (series + histograms).

        Failed requests must go through :meth:`observe_failed_latency`
        instead; mixing them in here would skew the success percentiles.
        """
        self.exec_ms.add(exec_ms)
        self.total_ms.add(total_ms)
        self._exec_hist.observe(exec_ms)
        self._total_hist.observe(total_ms)

    def observe_failed_latency(self, total_ms: float) -> None:
        """Record the latency a failed request paid before giving up."""
        self.failed_ms.add(total_ms)
        self._failed_hist.observe(total_ms)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests served (1.0 with no traffic yet)."""
        if not self.requests:
            return 1.0
        return 1.0 - self.failed / self.requests

    def snapshot(self) -> dict:
        """Flat, JSON-friendly view of the scoreboard."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "degraded": self.degraded,
            "deadline_misses": self.deadline_misses,
            "failed": self.failed,
            "retries": self.retries,
            "recovered": self.recovered,
            "oom_degraded": self.oom_degraded,
            "device_lost": self.device_lost,
            "breaker_open": self.breaker_open,
            "speculative_misses": self.speculative_misses,
            "speculative_swaps": self.speculative_swaps,
            "speculative_skipped": self.speculative_skipped,
            "bandit_observations": self.bandit_observations,
            "bandit_overrides": self.bandit_overrides,
            "bandit_explorations": self.bandit_explorations,
            "bandit_flips": self.bandit_flips,
            "bandit_retrains": self.bandit_retrains,
            "availability": self.availability,
            "graphs": self.graphs,
            "graph_stages": self.graph_stages,
            "plan_reuses": self.plan_reuses,
            "revalue_s": self.revalue_s,
            "compose_spent_s": self.compose_spent_s,
            "compose_saved_s": self.compose_saved_s,
            "exec_ms": self.exec_ms.summary(),
            "total_ms": self.total_ms.summary(),
            "failed_ms": self.failed_ms.summary(),
            "attribution": self.attribution.snapshot(),
        }

    def report(self) -> str:
        """Plain-text summary for terminal output."""
        e, t = self.exec_ms.summary(), self.total_ms.summary()
        lines = [
            f"requests            {self.requests}",
            f"cache hits/misses   {self.cache_hits}/{self.cache_misses} "
            f"(hit rate {self.hit_rate:.1%})",
            f"degraded requests   {self.degraded}",
            f"deadline misses     {self.deadline_misses}",
            f"failed requests     {self.failed} "
            f"(availability {self.availability:.2%})",
            f"retries/recovered   {self.retries}/{self.recovered}",
            f"oom degraded        {self.oom_degraded}",
            f"device lost/trips   {self.device_lost}/{self.breaker_open}",
            f"compose spent       {self.compose_spent_s * 1e3:.1f} ms",
            f"compose saved       {self.compose_saved_s * 1e3:.1f} ms",
            "simulated exec ms   "
            f"p50={e['p50']:.3f} p95={e['p95']:.3f} p99={e['p99']:.3f} max={e['max']:.3f}",
            "request latency ms  "
            f"p50={t['p50']:.3f} p95={t['p95']:.3f} p99={t['p99']:.3f} max={t['max']:.3f}",
        ]
        if self.graphs:
            lines.append(
                f"graphs              {self.graphs} "
                f"({self.graph_stages} device stages, "
                f"{self.plan_reuses} plan reuses, "
                f"revalue {self.revalue_s * 1e3:.1f} ms)"
            )
        if self.speculative_misses or self.speculative_swaps or self.speculative_skipped:
            lines.append(
                f"speculative         {self.speculative_misses} misses, "
                f"{self.speculative_swaps} swaps, "
                f"{self.speculative_skipped} skipped"
            )
        if self.bandit_observations:
            lines.append(
                f"bandit              {self.bandit_observations} observations, "
                f"{self.bandit_overrides} overrides, "
                f"{self.bandit_explorations} explorations, "
                f"{self.bandit_flips} flips, "
                f"{self.bandit_retrains} retrains"
            )
        if self.failed:
            f = self.failed_ms.summary()
            lines.append(
                "failed latency ms   "
                f"p50={f['p50']:.3f} p95={f['p95']:.3f} p99={f['p99']:.3f} "
                f"max={f['max']:.3f}"
            )
        return "\n".join(lines)
