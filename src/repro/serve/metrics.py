"""Serving counters and latency aggregates.

:class:`ServerMetrics` is the server-side scoreboard: request and
degradation counters, composition time spent vs. saved (the quantity the
plan cache exists to recover — Figures 8-9 measure exactly this overhead
per compose), and latency percentiles over the simulated execution times.
``snapshot()`` returns a flat JSON-friendly dict; ``report()`` renders a
plain-text summary for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Percentiles reported by every latency summary.
PERCENTILES = (50, 95, 99)


class LatencySeries:
    """An append-only series of latencies with percentile summaries."""

    def __init__(self, unit: str = "ms"):
        self.unit = unit
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def percentile(self, p: float) -> float:
        if not self._values:
            return 0.0
        return float(np.percentile(self.values, p))

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self._values else 0.0

    @property
    def max(self) -> float:
        return float(self.values.max()) if self._values else 0.0

    def summary(self) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ..., "mean": ..., "max": ...}``."""
        out = {f"p{p}": self.percentile(p) for p in PERCENTILES}
        out["mean"] = self.mean
        out["max"] = self.max
        return out


@dataclass
class ServerMetrics:
    """Scoreboard updated by :class:`repro.serve.server.SpMMServer`."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Requests served the CSR fallback plan by admission control.
    degraded: int = 0
    #: Requests whose composition overhead exceeded their deadline anyway.
    deadline_misses: int = 0
    #: Requests that hit a simulated OOM during execution.
    failed: int = 0
    #: Wall-clock seconds spent composing (cache misses).
    compose_spent_s: float = 0.0
    #: Wall-clock seconds a compose-per-request server would have spent on
    #: the hits (credited from each cached entry's recorded overhead).
    compose_saved_s: float = 0.0
    #: Simulated kernel execution time per request.
    exec_ms: LatencySeries = field(default_factory=LatencySeries)
    #: End-to-end request latency: composition overhead + simulated execution.
    total_ms: LatencySeries = field(default_factory=LatencySeries)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """Flat, JSON-friendly view of the scoreboard."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "degraded": self.degraded,
            "deadline_misses": self.deadline_misses,
            "failed": self.failed,
            "compose_spent_s": self.compose_spent_s,
            "compose_saved_s": self.compose_saved_s,
            "exec_ms": self.exec_ms.summary(),
            "total_ms": self.total_ms.summary(),
        }

    def report(self) -> str:
        """Plain-text summary for terminal output."""
        e, t = self.exec_ms.summary(), self.total_ms.summary()
        lines = [
            f"requests            {self.requests}",
            f"cache hits/misses   {self.cache_hits}/{self.cache_misses} "
            f"(hit rate {self.hit_rate:.1%})",
            f"degraded requests   {self.degraded}",
            f"deadline misses     {self.deadline_misses}",
            f"failed (OOM)        {self.failed}",
            f"compose spent       {self.compose_spent_s * 1e3:.1f} ms",
            f"compose saved       {self.compose_saved_s * 1e3:.1f} ms",
            "simulated exec ms   "
            f"p50={e['p50']:.3f} p95={e['p95']:.3f} p99={e['p99']:.3f} max={e['max']:.3f}",
            "request latency ms  "
            f"p50={t['p50']:.3f} p95={t['p95']:.3f} p99={t['p99']:.3f} max={t['max']:.3f}",
        ]
        return "\n".join(lines)
