"""Byte-budgeted LRU cache of composed plans.

The unit of accounting is the plan's *device footprint*
(``fmt.footprint_bytes``): a cached plan pins its format arrays, so the
budget models keeping hot formats resident.  Eviction is strict LRU; a
plan larger than the whole budget is rejected outright (counted in
``rejected``) rather than thrashing the cache.

Caches can be spilled to disk and warm-started, reusing the pickle-bundle
convention of :mod:`repro.core.persistence` (a ``magic`` tag checked on
load, bumped on incompatible changes).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import ComposePlan
from repro.serve.fingerprint import OP_KINDS

#: Format tag checked on load, bumped on incompatible changes.  v2 keys
#: carry an op segment (``<fp>/<op>/J<J>``); v1 keys were SpMM-only.
CACHE_MAGIC = "repro-plancache-v2"

#: The pre-op-key spill format.  Loading one is not an error: every v1
#: plan was an SpMM plan, so its entries warm-start under the ``spmm``
#: op segment instead of raising.
_LEGACY_MAGIC = "repro-plancache-v1"


def _migrate_v1_key(key: str) -> str:
    """Rewrite a v1 ``<fp>/J<J>`` key as a v2 ``<fp>/spmm/J<J>`` key."""
    head, _, width = key.rpartition("/J")
    if not head or head.rsplit("/", 1)[-1] in OP_KINDS:
        return key  # already op-keyed (or not a plan key at all)
    return f"{head}/spmm/J{width}"

#: Default budget: 256 MiB of resident format arrays.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class CacheEntry:
    """One resident plan with its accounting metadata."""

    key: str
    plan: ComposePlan
    size_bytes: int
    #: Wall-clock cost of the compose that produced the plan; every later
    #: hit credits this amount to "composition time saved".
    compose_overhead_s: float
    hits: int = 0


class PlanCache:
    """LRU plan cache with a byte budget and hit/miss/eviction counters."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> list[str]:
        """Keys in LRU order (least recently used first)."""
        return list(self._entries)

    def entries(self) -> list[CacheEntry]:
        """Resident entries in LRU order (migration/inspection view)."""
        return list(self._entries.values())

    def peek(self, key: str) -> CacheEntry | None:
        """Look up without touching traffic counters or LRU recency.

        The cluster's replication/migration machinery uses this: moving a
        plan between shards is fleet plumbing, not a request, and must not
        perturb the hit-rate accounting or the eviction order.
        """
        return self._entries.get(key)

    def pop(self, key: str) -> CacheEntry | None:
        """Remove and return an entry (None if absent) without counting an
        eviction — the entry is being migrated, not discarded."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.total_bytes -= entry.size_bytes
        return entry

    # ------------------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """Look up a plan; a hit refreshes its LRU position."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        entry.hits += 1
        return entry

    def put(self, key: str, plan: ComposePlan, compose_overhead_s: float = 0.0) -> bool:
        """Insert (or refresh) a plan; returns False if it cannot fit."""
        size = int(plan.fmt.footprint_bytes)
        if size > self.max_bytes:
            self.rejected += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= old.size_bytes
        # Evict *before* inserting: the fresh entry is never an eviction
        # candidate (it fits alone, per the budget check above), so the
        # loop needs no invariant assertion and stays correct under -O.
        while self._entries and self.total_bytes + size > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.total_bytes -= evicted.size_bytes
            self.evictions += 1
        self._entries[key] = CacheEntry(
            key=key, plan=plan, size_bytes=size, compose_overhead_s=compose_overhead_s
        )
        self.total_bytes += size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.total_bytes = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters snapshot (JSON-friendly)."""
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "hit_rate": self.hit_rate,
        }

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Spill the resident entries (not the counters) to ``path``."""
        payload = {
            "magic": CACHE_MAGIC,
            "max_bytes": self.max_bytes,
            "entries": [
                (e.key, e.plan, e.compose_overhead_s) for e in self._entries.values()
            ],
        }
        with Path(path).open("wb") as fh:
            pickle.dump(payload, fh)

    @classmethod
    def load(cls, path: str | Path, max_bytes: int | None = None) -> "PlanCache":
        """Warm-start a cache from a :meth:`save` bundle."""
        with Path(path).open("rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict) or "magic" not in payload:
            raise ValueError(f"{path} is not a saved plan-cache bundle")
        legacy = payload["magic"] == _LEGACY_MAGIC
        if payload["magic"] != CACHE_MAGIC and not legacy:
            raise ValueError(
                f"{path} has incompatible cache tag {payload['magic']!r} "
                f"(expected {CACHE_MAGIC!r})"
            )
        # "No override" is spelled None, not falsy: an explicit
        # ``max_bytes=0`` must reach the constructor and raise the same
        # ValueError it would anywhere else, not silently fall back to
        # the saved budget.
        if max_bytes is None:
            max_bytes = payload["max_bytes"]
        cache = cls(max_bytes=max_bytes)
        for key, plan, overhead_s in payload["entries"]:
            if legacy:
                key = _migrate_v1_key(key)
            cache.put(key, plan, compose_overhead_s=overhead_s)
        # Warm-starting is not traffic: reset *every* counter the loop
        # above may have bumped.  Loading into a smaller budget evicts or
        # rejects entries via put(), and leaving those counts in place
        # would inflate the traffic counters before the first request.
        cache.hits = cache.misses = cache.evictions = cache.rejected = 0
        return cache
