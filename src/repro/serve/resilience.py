"""Retry and circuit-breaker primitives for the serving layer.

The recovery model follows standard fleet practice:

* **Bounded retry with exponential backoff** (:class:`RetryPolicy`) —
  transient faults (injected OOMs, a device dying mid-request) are
  retried on the least-loaded healthy device, up to ``max_attempts``
  total executions.  Backoff is *accounted* into request latency rather
  than slept by default, keeping simulated replays fast while the
  latency histograms still show the tail cost.
* **Per-device circuit breaker** (:class:`CircuitBreaker`) — a device
  failing ``failure_threshold`` consecutive times (or once fatally) is
  ejected from placement; after ``cooldown_s`` it is probed again
  (half-open) and re-admitted on the first success.

Graceful degradation (rebuilding an OOMing CELL plan as CSR) lives in
:class:`repro.serve.server.SpMMServer`, which owns the plans; this module
is deliberately plan-agnostic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    ``max_attempts`` counts total executions (1 = no retries).  With
    ``real_sleep`` False (the default) the backoff is only accounted —
    :meth:`backoff_ms` feeds the request's latency — so chaos replays do
    not serialize on wall-clock sleeps.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_ms: float = 20.0
    real_sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff_ms(self, retry_number: int) -> float:
        """Backoff before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            raise ValueError(f"retry_number must be >= 1, got {retry_number}")
        raw = self.backoff_base_ms * self.backoff_factor ** (retry_number - 1)
        return min(self.backoff_max_ms, raw)

    def pause(self, retry_number: int) -> float:
        """Account (and optionally sleep) the backoff; returns the ms."""
        delay_ms = self.backoff_ms(retry_number)
        if self.real_sleep and delay_ms > 0:
            time.sleep(delay_ms * 1e-3)
        return delay_ms


@dataclass
class CircuitBreaker:
    """Three-state (closed / open / half-open) breaker for one device.

    ``allow()`` gates placement: closed always admits; open admits only
    after ``cooldown_s`` has elapsed, transitioning to half-open; half-open
    admits probes until a result is recorded (the server is sequential, so
    at most one probe is in flight).  A fatal failure (device lost) trips
    the breaker immediately regardless of the threshold.
    """

    failure_threshold: int = 3
    cooldown_s: float = 1.0
    clock: Callable[[], float] = field(default=time.monotonic)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        #: Times the breaker tripped closed/half-open -> open.
        self.trips = 0

    def allow(self) -> bool:
        """May the device take traffic right now?"""
        if self.state == CLOSED or self.state == HALF_OPEN:
            return True
        if self.opened_at is None or self.clock() - self.opened_at >= self.cooldown_s:
            self.state = HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self.opened_at = None

    def record_failure(self, fatal: bool = False) -> bool:
        """Record one failed launch; returns True when this trips open."""
        self.consecutive_failures += 1
        should_trip = (
            fatal
            or self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_trip and self.state != OPEN:
            self.state = OPEN
            self.opened_at = self.clock()
            self.trips += 1
            return True
        if should_trip:
            # already open (e.g. a straggling failure): refresh the cooldown
            self.opened_at = self.clock()
        return False
