"""Open-loop batched scheduling in front of :class:`SpMMServer`.

The paper's amortization argument (Figures 8-9) gets stronger the more
launches share one composed plan, and wider dense operands raise SpMM
arithmetic intensity (Yang et al., "Design Principles for Sparse Matrix
Multiplication on the GPU"), so a serving layer should not hand requests
to the pipeline one at a time.  This module adds the two missing pieces:

* :class:`Batcher` — per-``(fingerprint, J)`` queues.  Requests that
  share a plan-cache key are coalesced into one micro-batch: one cache
  lookup (or one compose) for the whole group, the dense operands
  stacked column-wise into a single wider simulated launch, and the
  result split back per request (bit-identical to serving them one by
  one; see :meth:`SpMMServer.serve_batch`).  A group dispatches when it
  reaches ``max_batch`` or its oldest member has waited ``max_wait_ms``;
  dispatch order across ready groups is earliest-deadline-first.

* :class:`Scheduler` — a discrete-event loop over *virtual* (simulated)
  milliseconds.  Requests arrive at their ``arrival_ms`` timestamps
  (:func:`repro.serve.workload.generate_workload` with
  ``arrival_rate_rps`` set), wait in the batcher — the wait is charged
  against their deadline, so admission control sees queueing delay —
  and dispatch onto per-device worker queues over the server's
  :class:`~repro.gpu.SimulatedDevice` pool.  Backpressure is explicit:
  when more than ``max_queue`` requests are waiting, new arrivals are
  *shed* — served immediately on the degraded CSR path — rather than
  growing the queue without bound.  Each dispatched batch reuses the
  server's retry/breaker/OOM-degradation machinery unchanged.

The scheduler exposes the same async-style ``submit() / poll() /
drain()`` surface as :class:`SpMMServer`; ``replay`` is the one-call
open-loop run.  Time is virtual throughout: the loop never sleeps, it
advances a clock across arrival/flush events and device-busy intervals,
so a multi-second trace replays in milliseconds of wall time and
throughput is reported in requests per *simulated* second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import scipy.sparse as sp

from repro.obs import MetricsRegistry, get_tracer
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.metrics import LatencySeries
from repro.serve.server import SpMMRequest, SpMMResponse, SpMMServer

#: Bucket bounds of the batch-size histogram (powers of two — batches are
#: capped by ``max_batch``, itself typically a power of two).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass
class SchedulerMetrics:
    """Scoreboard of the batched scheduler (queueing view of traffic).

    Complements :class:`~repro.serve.metrics.ServerMetrics` (which keeps
    counting per-request serving outcomes underneath): this one tracks
    what batching and the bounded queue did — how many launches the
    traffic collapsed into, how long requests waited, and how many were
    shed.  Every field is published onto :attr:`registry`.
    """

    #: Requests handed to :meth:`Scheduler.submit`.
    submitted: int = 0
    #: Requests dispatched through the batcher (excludes shed requests).
    dispatched: int = 0
    #: Micro-batches launched (each one plan lookup + one fused launch).
    batches: int = 0
    #: Requests that shared their launch with at least one other request.
    coalesced: int = 0
    #: Arrivals shed to the degraded CSR path by backpressure.
    shed: int = 0
    #: Virtual milliseconds spent queued before dispatch, per request.
    queue_wait_ms: LatencySeries = field(default_factory=LatencySeries)
    #: Requests per launched micro-batch.
    batch_size: LatencySeries = field(
        default_factory=lambda: LatencySeries(unit="requests")
    )
    #: Virtual timestamp at which the last dispatched work completed.
    makespan_ms: float = 0.0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        r = self.registry
        for name, help_text, attr in (
            ("sched_submitted_total", "Requests submitted to the scheduler",
             "submitted"),
            ("sched_dispatched_total", "Requests dispatched through batches",
             "dispatched"),
            ("sched_batches_total", "Micro-batches launched", "batches"),
            ("sched_coalesced_total",
             "Requests sharing a launch with at least one other", "coalesced"),
            ("sched_shed_total", "Arrivals shed by backpressure", "shed"),
        ):
            r.counter(name, help_text,
                      callback=lambda self=self, a=attr: getattr(self, a))
        r.gauge("sched_coalesce_rate",
                "Fraction of dispatched requests that shared a launch",
                callback=lambda self=self: self.coalesce_rate)
        r.gauge("sched_makespan_ms",
                "Virtual completion time of the last dispatched batch",
                callback=lambda self=self: self.makespan_ms)
        self._batch_hist = r.histogram(
            "sched_batch_size", "Requests per micro-batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._wait_hist = r.histogram(
            "sched_queue_wait_ms", "Virtual queueing delay before dispatch (ms)"
        )

    def observe_batch(self, size: int, waits_ms: list[float]) -> None:
        """Record one launched micro-batch and its members' queue waits."""
        self.batches += 1
        self.dispatched += size
        if size > 1:
            self.coalesced += size
        self.batch_size.add(size)
        self._batch_hist.observe(size)
        for w in waits_ms:
            self.queue_wait_ms.add(w)
            self._wait_hist.observe(w)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of dispatched requests that shared their launch."""
        return self.coalesced / self.dispatched if self.dispatched else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.dispatched / self.batches if self.batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per *simulated* second of the replay."""
        done = self.dispatched + self.shed
        if not done or self.makespan_ms <= 0:
            return 0.0
        return done / (self.makespan_ms / 1e3)

    def snapshot(self) -> dict:
        """Flat, JSON-friendly view of the scheduler scoreboard."""
        return {
            "submitted": self.submitted,
            "dispatched": self.dispatched,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "coalesce_rate": self.coalesce_rate,
            "mean_batch_size": self.mean_batch_size,
            "shed": self.shed,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "queue_wait_ms": self.queue_wait_ms.summary(),
            "batch_size": self.batch_size.summary(),
        }

    def report(self) -> str:
        """Plain-text summary for terminal output."""
        w = self.queue_wait_ms.summary()
        return "\n".join([
            f"submitted           {self.submitted}",
            f"dispatched/shed     {self.dispatched}/{self.shed}",
            f"batches             {self.batches} "
            f"(mean size {self.mean_batch_size:.2f}, "
            f"coalesce rate {self.coalesce_rate:.1%})",
            f"makespan            {self.makespan_ms:.3f} simulated ms "
            f"({self.throughput_rps:.1f} req/s simulated)",
            "queue wait ms       "
            f"p50={w['p50']:.3f} p95={w['p95']:.3f} p99={w['p99']:.3f} "
            f"max={w['max']:.3f}",
        ])


@dataclass
class _QueuedRequest:
    """One queued arrival: the request plus everything computed at
    admission so dispatch never re-fingerprints."""

    ticket: int
    request: SpMMRequest
    A: sp.csr_matrix
    key: str
    #: Virtual timestamp the request entered the queue.
    enqueued_ms: float

    @property
    def effective_deadline_ms(self) -> float:
        """Absolute virtual time by which composition must start; +inf
        for best-effort requests (sorts last under EDF)."""
        if self.request.deadline_ms is None:
            return math.inf
        return self.enqueued_ms + self.request.deadline_ms

    @property
    def group_key(self) -> str:
        """Coalescing key: the plan-cache key *plus* the operand kind —
        numeric and measure-only requests may share a plan but cannot
        share a launch (there is no operand to stack for the latter)."""
        kind = "numeric" if self.request.B is not None else "measure"
        return f"{self.key}|{kind}"


class Batcher:
    """Coalesce queued requests that share a plan-cache key.

    Pure queueing policy — no clock of its own and no execution: the
    scheduler pushes arrivals with virtual timestamps and asks which
    groups are ready at a given ``now``.  A group is ready when it holds
    ``max_batch`` members (no point waiting: the batch is full) or when
    its oldest member has waited ``max_wait_ms``.  Ready groups come
    back earliest-deadline-first, and requests within an oversize group
    are taken in EDF order too, so a tight-deadline request is never
    stuck behind best-effort ones that merely share its matrix.
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._groups: dict[str, list[_QueuedRequest]] = {}
        self._count = 0

    def __len__(self) -> int:
        """Queued requests across all groups."""
        return self._count

    def push(self, item: _QueuedRequest) -> None:
        self._groups.setdefault(item.group_key, []).append(item)
        self._count += 1

    def _oldest_ms(self, group: list[_QueuedRequest]) -> float:
        return min(item.enqueued_ms for item in group)

    def next_ready_ms(self) -> float | None:
        """Earliest virtual time at which a (non-full) group times out;
        None when nothing is queued.  Full groups are ready *now*."""
        if not self._groups:
            return None
        return min(
            self._oldest_ms(g) + self.max_wait_ms for g in self._groups.values()
        )

    def ready(self, now_ms: float, flush: bool = False) -> list[list[_QueuedRequest]]:
        """Pop the groups that should dispatch at ``now_ms``.

        ``flush`` forces everything out regardless of age — the scheduler
        uses it once the arrival stream is exhausted, when further waiting
        can only add queueing delay (nothing new can join a group).
        """
        out = []
        for key in list(self._groups):
            group = self._groups[key]
            while len(group) >= self.max_batch or (
                group
                and (flush or self._oldest_ms(group) + self.max_wait_ms <= now_ms)
            ):
                group.sort(key=lambda q: (q.effective_deadline_ms, q.enqueued_ms))
                take, rest = group[: self.max_batch], group[self.max_batch :]
                out.append(take)
                self._count -= len(take)
                self._groups[key] = group = rest
            if not group:
                del self._groups[key]
        out.sort(
            key=lambda g: (
                min(q.effective_deadline_ms for q in g),
                self._oldest_ms(g),
            )
        )
        return out


@dataclass
class Scheduler:
    """Open-loop batched scheduler over an :class:`SpMMServer`.

    Same ``submit() / poll() / drain()`` surface as the server, but
    :meth:`drain` runs a virtual-time event loop instead of serving in
    submission order: arrivals are admitted at their ``arrival_ms``,
    coalesced by the :class:`Batcher`, and dispatched batch-at-a-time
    onto the least-loaded simulated device.  All serving semantics
    (cache, admission control, retries, breakers, OOM degradation,
    per-request metrics) live in the server underneath; the scheduler
    adds queueing, batching, and backpressure on top.
    """

    server: SpMMServer
    #: Largest micro-batch (requests fused into one launch).
    max_batch: int = 8
    #: Longest virtual wait before a partial batch dispatches anyway.
    max_wait_ms: float = 2.0
    #: Queued-request bound; arrivals beyond it are shed to the degraded
    #: CSR path.  None = unbounded (no shedding).
    max_queue: int | None = None
    metrics: SchedulerMetrics = field(default_factory=SchedulerMetrics)

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        self._batcher = Batcher(self.max_batch, self.max_wait_ms)
        self._next_ticket = 0
        self._submitted: list[tuple[int, SpMMRequest]] = []
        self._completed: dict[int, SpMMResponse] = {}
        #: Virtual time at which each server device finishes its queue.
        self._free_at_ms = [0.0] * len(self.server.devices)

    # ------------------------------------------------------------------
    def submit(self, request: SpMMRequest) -> int:
        """Enqueue a request for the next :meth:`drain`; returns a ticket."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._submitted.append((ticket, request))
        self.metrics.submitted += 1
        return ticket

    def poll(self, ticket: int) -> SpMMResponse | None:
        """Claim one completed response; None until a :meth:`drain` has
        processed the ticket (the event loop needs the whole arrival
        stream to batch correctly, so poll never runs it early)."""
        return self._completed.pop(ticket, None)

    def drain(self) -> list[SpMMResponse]:
        """Replay every submitted request through the event loop; returns
        all unclaimed responses in submission order."""
        self._run()
        out = [self._completed.pop(t) for t in sorted(self._completed)]
        return out

    def replay(self, requests: list[SpMMRequest]) -> SchedulerMetrics:
        """Open-loop one-call run: submit the trace, drain it, return the
        scheduler scoreboard (server-side counters stay on
        ``scheduler.server.metrics``)."""
        for request in requests:
            self.submit(request)
        self.drain()
        if self.server.speculative:
            # Settle outstanding background composes once per replay (not
            # per drain — blocking inside the loop would serialize the
            # speculation the feature exists to overlap).
            self.server.wait_for_speculation()
        return self.metrics

    # -- DAG (graph) requests --------------------------------------------
    def serve_graph(self, graph):
        """Serve one :class:`repro.serve.graph.GraphRequest` on this
        scheduler's server (graphs carry their own stage ordering, so
        they bypass the arrival queue)."""
        return self.server.serve_graph(graph)

    def replay_graphs(self, graphs) -> list:
        """Replay graph requests in arrival order with cross-graph
        per-stage coalescing: same-wave SpMM stages sharing one plan key
        fuse into a single launch (:meth:`SpMMServer.serve_graphs`)."""
        ordered = sorted(graphs, key=lambda g: g.arrival_ms)
        return self.server.serve_graphs(ordered)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        """The discrete-event loop (virtual milliseconds).

        Events are arrival timestamps and batch timeouts; device busy
        intervals only extend the makespan.  The loop alternates: ingest
        arrivals due at ``now`` (shedding if the queue is full), dispatch
        groups that are ready at ``now``, then jump the clock to the next
        event.  Once the arrival stream is exhausted the batcher is
        flushed — nothing new can join a group, so waiting out
        ``max_wait_ms`` would be pure added latency.
        """
        arrivals = sorted(self._submitted, key=lambda tr: tr[1].arrival_ms)
        self._submitted = []
        i, n = 0, len(arrivals)
        now = 0.0
        while i < n or len(self._batcher):
            while i < n and arrivals[i][1].arrival_ms <= now:
                ticket, request = arrivals[i]
                i += 1
                self._admit(ticket, request, now)
            for group in self._batcher.ready(now, flush=i >= n):
                self._dispatch(group, now)
            if i < n or len(self._batcher):
                events = []
                if i < n:
                    events.append(arrivals[i][1].arrival_ms)
                timeout = self._batcher.next_ready_ms()
                if timeout is not None:
                    events.append(timeout)
                now = max(now, min(events))
        self.metrics.makespan_ms = max(
            [self.metrics.makespan_ms, *self._free_at_ms]
        )

    def _admit(self, ticket: int, request: SpMMRequest, now: float) -> None:
        at = max(now, request.arrival_ms)
        if self.max_queue is not None and len(self._batcher) >= self.max_queue:
            # Backpressure: the queue is full.  Shedding serves the
            # request immediately on the forced-degraded path (a cache
            # hit still uses the cached plan — only a miss skips the
            # pipeline), which bounds both queue memory and the latency
            # added to everything behind it.
            self.metrics.shed += 1
            response = self.server._serve_one(
                request, force_degrade=True, shed=True
            )
            self._occupy(response, at)
            self._completed[ticket] = response
            return
        A = self.server._canonical(request.matrix)
        key = plan_key(fingerprint_csr(A), request.J, request.op)
        self._batcher.push(
            _QueuedRequest(
                ticket=ticket, request=request, A=A, key=key, enqueued_ms=at
            )
        )

    def _dispatch(self, group: list[_QueuedRequest], now: float) -> None:
        waits = [now - item.enqueued_ms for item in group]
        member_ids = [
            item.request.ctx.trace_id
            for item in group
            if item.request.ctx is not None
        ]
        with get_tracer().span(
            "queue_wait",
            size=len(group),
            key=group[0].key,
            max_wait_ms=round(max(waits), 4),
            **({"trace_ids": ",".join(member_ids)} if member_ids else {}),
        ):
            responses = self.server.serve_batch(
                [item.request for item in group],
                queue_waits_ms=waits,
                prepared=[(item.A, item.key) for item in group],
            )
        self.metrics.observe_batch(len(group), waits)
        self._occupy(responses[0], now)
        for item, response in zip(group, responses):
            self._completed[item.ticket] = response

    def _occupy(self, response: SpMMResponse, start_ms: float) -> None:
        """Charge a launch's simulated cost to its device's worker queue."""
        cost_ms = response.backoff_ms
        if response.measurement is not None:
            cost_ms += response.measurement.time_ms
        device = response.device_index
        begin = max(start_ms, self._free_at_ms[device])
        self._free_at_ms[device] = begin + cost_ms

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Scheduler scoreboard plus the underlying server snapshot."""
        out = self.metrics.snapshot()
        out["server"] = self.server.snapshot()
        return out

    def report(self) -> str:
        """Plain-text report: scheduler scoreboard over the server's."""
        return "\n".join([self.metrics.report(), self.server.report()])
