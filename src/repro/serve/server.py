"""`SpMMServer` — the request loop between traffic and the pipeline.

Per request the server (1) canonicalizes and fingerprints the matrix,
(2) consults the plan cache keyed on ``(fingerprint, J)``, (3) on a miss
runs admission control — if the request carries a deadline and the
*estimated* composition overhead (an EWMA rate per non-zero learned from
this server's own ``OverheadBreakdown`` history) would blow it, the ML
pipeline is skipped and a plain CSR row-split plan is built immediately
(the degraded path) — otherwise composes via ``LiteForm.compose_csr``,
and (4) executes on the least-loaded device of a homogeneous pool (the
same shortest-queue idea :mod:`repro.gpu.multi` uses for shard
placement, applied across requests instead of within one).

Deadlines bound the *composition overhead* (time until the kernel can be
launched), not the simulated kernel time — execution cost is intrinsic
to the workload, while composition overhead is the part the paper (and
admission control) can do something about.  A degraded request can
therefore still "miss" only by the cost of building CSR itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import ComposePlan, LiteForm, OverheadBreakdown
from repro.formats.base import VALUE_DTYPE, as_csr
from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.gpu.stats import Measurement
from repro.kernels.csr_spmm import RowSplitCSRSpMM
from repro.obs import get_tracer
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.metrics import ServerMetrics
from repro.serve.plan_cache import PlanCache


@dataclass
class SpMMRequest:
    """One unit of traffic: multiply ``matrix @ B`` with ``J`` columns.

    ``B`` may be ``None`` for measure-only traffic (replay benchmarks that
    only need timing).  ``deadline_ms`` bounds the composition overhead;
    ``None`` means best-effort (always take the full pipeline).
    """

    matrix: sp.spmatrix
    B: np.ndarray | None
    J: int
    deadline_ms: float | None = None
    name: str = ""


@dataclass
class SpMMResponse:
    """Outcome of one served request."""

    C: np.ndarray | None
    measurement: Measurement | None
    plan: ComposePlan | None
    key: str
    cache_hit: bool
    degraded: bool
    deadline_missed: bool
    failed: bool
    device_index: int
    #: Composition overhead actually paid for this request (wall clock):
    #: fingerprint+lookup on a hit, full compose on a miss, CSR build on
    #: the degraded path.
    compose_overhead_s: float
    #: ``compose_overhead_s`` + simulated execution time.
    latency_ms: float


@dataclass
class _DeviceSlot:
    device: SimulatedDevice
    busy_s: float = 0.0
    requests: int = 0


@dataclass
class SpMMServer:
    """Serve SpMM requests with plan caching and admission control."""

    liteform: LiteForm
    cache: PlanCache = field(default_factory=PlanCache)
    devices: list[SimulatedDevice] | None = None
    num_devices: int = 1
    #: Smoothing factor of the per-nnz composition-cost estimate.
    overhead_ewma_alpha: float = 0.3
    metrics: ServerMetrics = field(default_factory=ServerMetrics)

    def __post_init__(self) -> None:
        if self.devices is None:
            if self.num_devices < 1:
                raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
            self.devices = [SimulatedDevice() for _ in range(self.num_devices)]
        if not self.devices:
            raise ValueError("device pool must not be empty")
        self._slots = [_DeviceSlot(device=d) for d in self.devices]
        #: EWMA of compose seconds per non-zero, None until the first compose.
        self._compose_s_per_nnz: float | None = None

    # ------------------------------------------------------------------
    def estimate_compose_s(self, nnz: int) -> float | None:
        """Predicted full-pipeline composition overhead for an ``nnz``-sized
        matrix, from this server's own compose history (None = no history
        yet; admission control then admits optimistically)."""
        if self._compose_s_per_nnz is None:
            return None
        return self._compose_s_per_nnz * max(1, nnz)

    def _observe_compose(self, nnz: int, overhead_s: float) -> None:
        rate = overhead_s / max(1, nnz)
        if self._compose_s_per_nnz is None:
            self._compose_s_per_nnz = rate
        else:
            a = self.overhead_ewma_alpha
            self._compose_s_per_nnz = a * rate + (1 - a) * self._compose_s_per_nnz

    @staticmethod
    def _canonical(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
        """Canonicalize once per request; already-canonical float32 CSR
        (everything the generators and workload produce) passes through."""
        if sp.issparse(matrix) and matrix.format == "csr" and matrix.dtype == VALUE_DTYPE:
            return matrix
        return as_csr(matrix)

    @staticmethod
    def _fallback_plan(A: sp.csr_matrix) -> ComposePlan:
        tb = time.perf_counter()
        fmt = CSRFormat.from_csr(A)
        build_s = time.perf_counter() - tb
        return ComposePlan(
            use_cell=False,
            fmt=fmt,
            kernel=RowSplitCSRSpMM(),
            num_partitions=1,
            overhead=OverheadBreakdown(0.0, 0.0, 0.0, build_s),
        )

    def _pick_device(self) -> int:
        return min(range(len(self._slots)), key=lambda i: self._slots[i].busy_s)

    # ------------------------------------------------------------------
    def serve(self, request: SpMMRequest) -> SpMMResponse:
        """Serve one request; every path updates :attr:`metrics`.

        With a tracer installed (:func:`repro.obs.get_tracer`), each
        request emits a ``request`` span with children ``cache_lookup``,
        ``admission`` / ``degraded_build`` / ``compose`` (the compose span
        nests the pipeline's per-stage spans), and ``execute`` (which
        nests the simulated ``kernel_launch`` spans).
        """
        m = self.metrics
        m.requests += 1
        tracer = get_tracer()
        with tracer.span(
            "request", J=request.J, matrix=request.name or "anonymous"
        ) as req_span:
            t0 = time.perf_counter()
            with tracer.span("cache_lookup"):
                A = self._canonical(request.matrix)
                key = plan_key(fingerprint_csr(A), request.J)
                entry = self.cache.get(key)

            degraded = False
            if entry is not None:
                m.cache_hits += 1
                m.compose_saved_s += entry.compose_overhead_s
                plan = entry.plan
                overhead_s = time.perf_counter() - t0
            else:
                m.cache_misses += 1
                with tracer.span("admission") as adm_span:
                    estimate = self.estimate_compose_s(A.nnz)
                    deadline = request.deadline_ms
                    degraded = (
                        deadline is not None
                        and estimate is not None
                        and estimate * 1e3 > deadline
                    )
                    adm_span.set(
                        admitted=not degraded,
                        estimate_ms=None if estimate is None else estimate * 1e3,
                    )
                if degraded:
                    with tracer.span("degraded_build"):
                        plan = self._fallback_plan(A)
                    m.degraded += 1
                    overhead_s = time.perf_counter() - t0
                    # degraded plans are intentionally NOT cached: a later
                    # best-effort request for the same matrix should get the
                    # full pipeline, not a pinned fallback.
                else:
                    with tracer.span("compose", nnz=A.nnz):
                        plan = self.liteform.compose_csr(A, request.J)
                    self._observe_compose(A.nnz, plan.overhead.total_s)
                    overhead_s = time.perf_counter() - t0
                    m.compose_spent_s += plan.overhead.total_s
                    self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)

            slot_index = self._pick_device()
            slot = self._slots[slot_index]
            C: np.ndarray | None = None
            measurement: Measurement | None = None
            failed = False
            with tracer.span("execute", device=slot_index):
                try:
                    if request.B is not None:
                        C, measurement = plan.kernel.run(plan.fmt, request.B, slot.device)
                    else:
                        measurement = plan.kernel.measure(plan.fmt, request.J, slot.device)
                except SimulatedOOMError:
                    failed = True
                    m.failed += 1
            exec_ms = measurement.time_ms if measurement is not None else 0.0
            slot.busy_s += exec_ms * 1e-3
            slot.requests += 1

            overhead_ms = overhead_s * 1e3
            deadline_missed = (
                request.deadline_ms is not None and overhead_ms > request.deadline_ms
            )
            if deadline_missed:
                m.deadline_misses += 1
            latency_ms = overhead_ms + exec_ms
            m.observe_latency(exec_ms, latency_ms)
            req_span.set(
                cache_hit=entry is not None,
                degraded=degraded,
                deadline_missed=deadline_missed,
                failed=failed,
                sim_exec_ms=exec_ms,
            )
        return SpMMResponse(
            C=C,
            measurement=measurement,
            plan=plan,
            key=key,
            cache_hit=entry is not None,
            degraded=degraded,
            deadline_missed=deadline_missed,
            failed=failed,
            device_index=slot_index,
            compose_overhead_s=overhead_s,
            latency_ms=latency_ms,
        )

    def replay(self, requests: list[SpMMRequest]) -> ServerMetrics:
        """Serve a whole workload in order and return the scoreboard.

        The whole replay runs under one root ``replay`` span so a traced
        run attributes (nearly) all wall time to spans.
        """
        with get_tracer().span("replay", requests=len(requests)):
            for request in requests:
                self.serve(request)
        return self.metrics

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Merged metrics + cache + device-pool view (JSON-friendly)."""
        out = self.metrics.snapshot()
        out["cache"] = self.cache.stats()
        out["devices"] = [
            {"index": i, "busy_s": s.busy_s, "requests": s.requests}
            for i, s in enumerate(self._slots)
        ]
        return out

    def report(self) -> str:
        """Plain-text report: metrics, cache, and device utilization."""
        c = self.cache.stats()
        lines = [
            self.metrics.report(),
            f"cache entries       {c['entries']} "
            f"({c['bytes'] / 2**20:.1f}/{c['max_bytes'] / 2**20:.1f} MiB, "
            f"{c['evictions']} evictions, {c['rejected']} rejected)",
        ]
        for i, s in enumerate(self._slots):
            lines.append(
                f"device[{i}]           {s.requests} requests, "
                f"{s.busy_s * 1e3:.3f} ms simulated busy"
            )
        return "\n".join(lines)
