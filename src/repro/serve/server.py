"""`SpMMServer` — the request loop between traffic and the pipeline.

Per request the server (1) canonicalizes and fingerprints the matrix,
(2) consults the plan cache keyed on ``(fingerprint, J)``, (3) on a miss
runs admission control — if the request carries a deadline and the
*estimated* composition overhead (an EWMA rate per non-zero learned from
this server's own ``OverheadBreakdown`` history) would blow it, the ML
pipeline is skipped and a plain CSR row-split plan is built immediately
(the degraded path) — otherwise composes via ``LiteForm.compose_csr``,
and (4) executes on the least-loaded device of a homogeneous pool (the
same shortest-queue idea :mod:`repro.gpu.multi` uses for shard
placement, applied across requests instead of within one).

The serving surface is async-style: :meth:`SpMMServer.submit` enqueues a
request and returns a ticket, :meth:`SpMMServer.poll` retrieves one
completed response, :meth:`SpMMServer.drain` completes everything
pending.  :meth:`SpMMServer.serve` is the one-request convenience
wrapper over that surface (submit + drain + claim), kept source
compatible with the original blocking API.  The same surface is
implemented by :class:`repro.serve.scheduler.Scheduler`, which adds
open-loop queueing and fingerprint-coalesced micro-batching on top.

:meth:`SpMMServer.serve_batch` serves a group of requests that share one
``(fingerprint, J)`` cache key with a *single* plan lookup/compose and a
single fused launch: the dense operands are stacked column-wise into one
``(K, n*J)`` operand, executed once, and split back per request.  Column
``j`` of the result depends only on column ``j`` of the operand, so the
per-request slices are bit-identical to individually served results.

Deadlines bound the *composition overhead* (time until the kernel can be
launched), not the simulated kernel time — execution cost is intrinsic
to the workload, while composition overhead is the part the paper (and
admission control) can do something about.  Queueing delay (reported by
the scheduler as ``queue_wait_ms``) also counts against the deadline: a
request that waited 3 ms of a 5 ms deadline has only 2 ms of composition
budget left.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from enum import Enum

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import ComposePlan, LiteForm, OverheadBreakdown
from repro.formats.base import VALUE_DTYPE, as_csr
from repro.formats.cell import CELLFormat
from repro.formats.csr import CSRFormat
from repro.gpu.device import DeviceLostError, SimulatedDevice, SimulatedOOMError
from repro.gpu.stats import Measurement
from repro.kernels.cell_spmm import CELLSpMM
from repro.kernels.csr_spmm import RowSplitCSRSpMM
from repro.kernels.registry import kernel_for_op
from repro.kernels.sddmm import CSRSDDMM
from repro.obs import TraceContext, get_tracer
from repro.serve.adaptive import FormatBandit, build_arm_plan, plan_arm
from repro.serve.fingerprint import OP_KINDS, fingerprint_csr, plan_key, plan_op
from repro.serve.metrics import ServerMetrics
from repro.serve.plan_cache import PlanCache
from repro.serve.resilience import CircuitBreaker, RetryPolicy

#: Most recent same-pattern composed geometries remembered per server for
#: the structural-reuse ("re-value") rebuild path.
_MAX_STRUCTURES = 512


class ResponseStatus(str, Enum):
    """Structured outcome of one served request.

    * ``OK`` — full-pipeline plan, executed successfully;
    * ``DEGRADED`` — served, but on the CSR fallback plan (admission
      control, backpressure shedding, or structural-OOM degradation);
    * ``FAILED`` — every recovery path exhausted, no result.

    The legacy boolean views (``response.failed``, ``response.degraded``)
    remain available as read-only properties derived from this enum.
    """

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class OpRequest:
    """One unit of traffic: an op over ``matrix`` with dense operand(s).

    ``op`` selects the sparse primitive: ``"spmm"`` multiplies
    ``matrix @ B`` with ``J`` columns; ``"spmv"`` is its ``J = 1`` corner
    (``B`` is a ``(K, 1)`` column); ``"sddmm"`` samples ``U @ V.T`` onto
    the matrix's pattern (pass ``operands=(U, V)``, with ``J`` carrying
    the shared feature width ``K``).

    ``B`` may be ``None`` for measure-only traffic (replay benchmarks that
    only need timing).  ``deadline_ms`` bounds the composition overhead;
    ``None`` means best-effort (always take the full pipeline).
    ``arrival_ms`` is the request's position on the workload's virtual
    timeline (0.0 for legacy closed-loop traces); the open-loop scheduler
    replays arrivals at these timestamps.

    ``SpMMRequest`` is the historical name and remains a module-level
    alias — existing SpMM-only callers construct it unchanged.
    """

    matrix: sp.spmatrix
    B: np.ndarray | None
    J: int
    deadline_ms: float | None = None
    name: str = ""
    arrival_ms: float = 0.0
    #: Distributed trace context minted at the ingress point (e.g. the
    #: cluster frontend); None = the server mints one itself when traced.
    ctx: TraceContext | None = None
    #: Op kind; see :data:`repro.serve.fingerprint.OP_KINDS`.
    op: str = "spmm"
    #: SDDMM dense pair ``(U, V)``; None for spmm/spmv.
    operands: tuple[np.ndarray, np.ndarray] | None = None
    #: On a cache miss, allow serving a *same-pattern* matrix by rebuilding
    #: the geometry recorded from an earlier full compose (selection,
    #: partitioning, and width search are skipped; only the format arrays
    #: are refilled).  This is what lets a GNN chain pay one compose per
    #: (A, op-set) even though stage outputs carry fresh values.
    reuse_structure: bool = False


@dataclass
class OpResponse:
    """Outcome of one served request.

    ``SpMMResponse`` remains a module-level alias of this class.
    ``C`` is dense for spmm/spmv and a CSR matrix for sddmm.
    """

    C: np.ndarray | sp.csr_matrix | None
    measurement: Measurement | None
    plan: ComposePlan | None
    key: str
    cache_hit: bool
    #: Structured outcome; see :class:`ResponseStatus`.
    status: ResponseStatus
    #: Admission control (or backpressure shedding) served the CSR
    #: fallback plan instead of running the pipeline.
    admission_degraded: bool
    deadline_missed: bool
    device_index: int
    #: Composition overhead actually paid for this request (wall clock):
    #: fingerprint+lookup on a hit, full compose on a miss, CSR build on
    #: the degraded path.
    compose_overhead_s: float
    #: ``queue_wait_ms`` + ``compose_overhead_s`` + retry backoff +
    #: simulated execution time.
    latency_ms: float
    #: Total executions tried (1 = no retries needed).
    attempts: int = 1
    #: At least one attempt failed but the request ultimately succeeded.
    recovered: bool = False
    #: Retry backoff accounted into :attr:`latency_ms`.
    backoff_ms: float = 0.0
    #: The plan was rebuilt as CSR after a structural OOM.
    degraded_oom: bool = False
    #: Requests coalesced into the launch that served this one (1 = no
    #: batching).  The shared :attr:`measurement` times the whole batch.
    batch_size: int = 1
    #: Virtual milliseconds spent queued before dispatch (scheduler only).
    queue_wait_ms: float = 0.0
    #: The scheduler's bounded queue was full; this request was shed to
    #: the degraded CSR path instead of queueing.
    shed: bool = False
    #: Served the immediate CSR plan of a speculative-recompose window: a
    #: background compose was (or already had been) kicked off for this
    #: key and will be swapped into the cache when ready.
    speculative: bool = False
    #: Trace id the request was served under (None when untraced).
    trace_id: str | None = None
    #: Op kind the request carried (spmm/sddmm/spmv).
    op: str = "spmm"
    #: A cache miss was served by refilling a recorded same-pattern
    #: geometry (the structural-reuse path) instead of composing.
    plan_reused: bool = False

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK

    @property
    def failed(self) -> bool:
        """Back-compat view of :attr:`status`."""
        return self.status is ResponseStatus.FAILED

    @property
    def degraded(self) -> bool:
        """Back-compat view: admission control took the fallback path."""
        return self.admission_degraded


#: Back-compat aliases: the serving API was SpMM-only before the op
#: generalization.  Kept as plain aliases (not subclasses) so isinstance
#: checks and dataclass identity are unaffected; see docs/API.md.
SpMMRequest = OpRequest
SpMMResponse = OpResponse


@dataclass
class _DeviceSlot:
    device: SimulatedDevice
    breaker: CircuitBreaker
    busy_s: float = 0.0
    #: Requests successfully served by this device.
    requests: int = 0
    #: Failed execution attempts on this device (transient OOMs, losses).
    failures: int = 0
    #: The device raised :class:`DeviceLostError` at least once.
    lost: bool = False


@dataclass
class SpMMServer:
    """Serve SpMM requests with plan caching and admission control."""

    liteform: LiteForm
    cache: PlanCache = field(default_factory=PlanCache)
    devices: list[SimulatedDevice] | None = None
    num_devices: int = 1
    #: Smoothing factor of the per-nnz composition-cost estimate.
    overhead_ewma_alpha: float = 0.3
    metrics: ServerMetrics = field(default_factory=ServerMetrics)
    #: Bounded-retry policy for transient execution faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Rebuild the plan as CSR (smaller footprint) on a structural OOM
    #: instead of failing the request.
    degrade_on_oom: bool = True
    #: Consecutive failures before a device's circuit breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before admitting a probe request.
    breaker_cooldown_s: float = 1.0
    #: Speculative recompose: a cache miss serves the CSR fallback plan
    #: immediately while a background thread composes the full plan, which
    #: is swapped into the cache (on the serving thread) when ready.
    speculative: bool = False
    #: Online adaptive format selection (docs/ADAPTIVE.md): a
    #: :class:`~repro.serve.adaptive.FormatBandit` consulted on every
    #: request once armed with enough per-key reward; a decision that
    #: differs from the cached plan's arm re-pins the cache entry.
    #: ``None`` serves statically.
    bandit: FormatBandit | None = None
    #: Refit the static format selector on serving-derived samples every
    #: N bandit observations (0 = never retrain online).
    bandit_retrain_every: int = 0

    def __post_init__(self) -> None:
        if self.devices is None:
            if self.num_devices < 1:
                raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
            self.devices = [SimulatedDevice() for _ in range(self.num_devices)]
        if not self.devices:
            raise ValueError("device pool must not be empty")
        self._slots = [
            _DeviceSlot(
                device=d,
                breaker=CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                ),
            )
            for d in self.devices
        ]
        #: EWMA of compose seconds per non-zero, None until the first compose.
        self._compose_s_per_nnz: float | None = None
        self._next_ticket = 0
        self._pending: deque[tuple[int, SpMMRequest]] = deque()
        self._completed: dict[int, SpMMResponse] = {}
        #: key -> (background compose future, matrix nnz, canonical CSR).
        self._inflight: dict[str, tuple[Future, int, sp.csr_matrix]] = {}
        #: pattern digest -> recorded composed geometry (the structural-
        #: reuse rebuild recipe); bounded FIFO of :data:`_MAX_STRUCTURES`.
        self._structures: "OrderedDict[str, dict]" = OrderedDict()
        #: Keys whose cache entry holds a structurally-OOM-degraded CSR
        #: plan (the PR 3 pin): background swaps must never overwrite it.
        self._oom_pinned: set[str] = set()
        self._spec_pool = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="speculate")
            if self.speculative
            else None
        )
        #: key -> arm -> op-bound plan, memoized so a bandit flip back to
        #: a previously built arm costs a dict lookup, not a rebuild.
        self._bandit_plans: dict[str, dict[str, ComposePlan]] = {}

    # ------------------------------------------------------------------
    def estimate_compose_s(self, nnz: int) -> float | None:
        """Predicted full-pipeline composition overhead for an ``nnz``-sized
        matrix, from this server's own compose history (None = no history
        yet; admission control then admits optimistically)."""
        if self._compose_s_per_nnz is None:
            return None
        return self._compose_s_per_nnz * max(1, nnz)

    def _observe_compose(self, nnz: int, overhead_s: float) -> None:
        rate = overhead_s / max(1, nnz)
        if self._compose_s_per_nnz is None:
            self._compose_s_per_nnz = rate
        else:
            a = self.overhead_ewma_alpha
            self._compose_s_per_nnz = a * rate + (1 - a) * self._compose_s_per_nnz

    @staticmethod
    def _canonical(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
        """Canonicalize once per request; already-canonical float32 CSR
        (everything the generators and workload produce) passes through.

        The fast path requires ``has_canonical_format`` (sorted indices,
        no duplicates): :func:`fingerprint_csr` and the kernels assume
        canonical CSR, and letting a user-supplied unsorted/duplicated
        matrix through would give the same logical matrix two cache keys.
        """
        if (
            sp.issparse(matrix)
            and matrix.format == "csr"
            and matrix.dtype == VALUE_DTYPE
            and matrix.has_canonical_format
        ):
            return matrix
        return as_csr(matrix)

    @staticmethod
    def _fallback_plan(A: sp.csr_matrix) -> ComposePlan:
        tb = time.perf_counter()
        fmt = CSRFormat.from_csr(A)
        build_s = time.perf_counter() - tb
        return ComposePlan(
            use_cell=False,
            fmt=fmt,
            kernel=RowSplitCSRSpMM(),
            num_partitions=1,
            overhead=OverheadBreakdown(0.0, 0.0, 0.0, build_s),
        )

    def _bind_op(self, plan: ComposePlan, A: sp.csr_matrix, op: str) -> ComposePlan:
        """Bind the kernel that executes ``op`` onto a composed plan.

        The pipeline composes formats with an SpMM kernel attached; the
        same built format serves SDDMM and SpMV through a different
        kernel (:func:`repro.kernels.registry.kernel_for_op`).  When no
        kernel of the op speaks the plan's format (SDDMM over a fixed
        block/ELL format), the format is rebuilt as CSR — cheap relative
        to composition, charged to the plan's build time.  SpMV over a
        non-CSR format keeps the plan's SpMM kernel: a ``(K, 1)`` operand
        is exact through any SpMM execution path.
        """
        if op == "spmm":
            return plan
        kernel = kernel_for_op(plan.fmt, op)
        if kernel is not None:
            return dataclasses.replace(plan, kernel=kernel)
        if op == "sddmm":
            tb = time.perf_counter()
            fmt = CSRFormat.from_csr(A)
            build_s = time.perf_counter() - tb
            overhead = dataclasses.replace(
                plan.overhead, build_s=plan.overhead.build_s + build_s
            )
            return dataclasses.replace(
                plan,
                use_cell=False,
                fmt=fmt,
                kernel=CSRSDDMM(),
                overhead=overhead,
                incremental=None,
            )
        return plan

    # -- structural reuse ("re-value") ----------------------------------
    def _record_structure(self, A: sp.csr_matrix, plan: ComposePlan) -> None:
        """Remember a full compose's geometry under the matrix's *pattern*
        digest so later same-pattern misses can rebuild it cheaply.

        Must be called with the raw composed plan (before op binding) so
        the recorded kernel is the plan's own SpMM kernel.
        """
        digest = fingerprint_csr(A, include_values=False).digest
        if plan.use_cell:
            inc = plan.incremental
            rec = {
                "use_cell": True,
                "num_partitions": plan.num_partitions,
                "max_widths": list(plan.max_widths),
                "block_multiple": inc.block_multiple if inc is not None else 2,
                "predicted_cost": plan.predicted_cost,
            }
        else:
            kwargs = {}
            block_shape = getattr(plan.fmt, "block_shape", None)
            if block_shape is not None:
                kwargs["block_shape"] = block_shape
            rec = {
                "use_cell": False,
                "fmt_cls": type(plan.fmt),
                "fmt_kwargs": kwargs,
                "kernel_cls": type(plan.kernel),
                "predicted_cost": plan.predicted_cost,
            }
        self._structures[digest] = rec
        self._structures.move_to_end(digest)
        while len(self._structures) > _MAX_STRUCTURES:
            self._structures.popitem(last=False)

    def _rebuild_structure(self, A: sp.csr_matrix, rec: dict) -> ComposePlan:
        """Refill a recorded geometry with ``A``'s values — the cheap
        "re-value" path that skips selection, partitioning, and the
        bucket-width search entirely (only the format arrays are built,
        exactly as the original compose built them)."""
        tb = time.perf_counter()
        if rec["use_cell"]:
            widths = rec["max_widths"]
            fmt = CELLFormat.from_csr(
                A,
                num_partitions=rec["num_partitions"],
                max_widths=widths if widths else None,
                block_multiple=rec["block_multiple"],
            )
            kernel: object = CELLSpMM()
        else:
            fmt = rec["fmt_cls"].from_csr(A, **rec["fmt_kwargs"])
            kernel = rec["kernel_cls"]()
        build_s = time.perf_counter() - tb
        return ComposePlan(
            use_cell=rec["use_cell"],
            fmt=fmt,
            kernel=kernel,
            num_partitions=rec.get("num_partitions", 1),
            max_widths=list(rec.get("max_widths", [])),
            overhead=OverheadBreakdown(0.0, 0.0, 0.0, build_s),
            predicted_cost=rec.get("predicted_cost"),
        )

    def _pick_device(self, exclude: set[int] | frozenset[int] = frozenset()) -> int:
        """Least-busy device whose breaker admits traffic.

        ``exclude`` holds devices that already failed this request (retries
        prefer somewhere else).  Degrades gracefully: if every breaker is
        open (or everything is excluded) the least-busy device overall is
        used — serving on a suspect device beats not serving at all.
        """
        allowed = [i for i, s in enumerate(self._slots) if s.breaker.allow()]
        candidates = [i for i in allowed if i not in exclude] or allowed
        if not candidates:
            candidates = list(range(len(self._slots)))
        return min(candidates, key=lambda i: self._slots[i].busy_s)

    # ------------------------------------------------------------------
    def _execute(
        self,
        A: sp.csr_matrix,
        plan: ComposePlan,
        B: np.ndarray | tuple | None,
        J: int,
        op: str = "spmm",
    ) -> dict:
        """Run ``plan`` against operand ``B`` (an ndarray, or the SDDMM
        ``(U, V)`` pair; measure-only at width ``J`` when None) with
        bounded retry, breaker updates, and OOM degradation; returns the
        execution outcome as a dict.

        Recovery rules, per failed attempt:

        * transient OOM (``not err.is_structural``) or device loss —
          record on the device's breaker, retry on the least-busy other
          device with exponential backoff, up to ``retry.max_attempts``
          total executions;
        * structural OOM — retrying cannot help; if :attr:`degrade_on_oom`
          and the plan is not already plain CSR, rebuild it as CSR (the
          smallest-footprint format) and execute that, otherwise fail.
        """
        m = self.metrics
        tracer = get_tracer()
        attempts = 0
        backoff_ms = 0.0
        degraded_oom = False
        had_failure = False
        failed_on: set[int] = set()
        C: np.ndarray | None = None
        measurement: Measurement | None = None
        slot_index = self._pick_device()
        with tracer.span("execute", device=slot_index) as ex_span:
            while True:
                attempts += 1
                slot = self._slots[slot_index]
                try:
                    with tracer.span("attempt", device=slot_index, attempt=attempts):
                        if B is not None:
                            C, measurement = plan.kernel.run(
                                plan.fmt, B, slot.device
                            )
                        else:
                            measurement = plan.kernel.measure(
                                plan.fmt, J, slot.device
                            )
                    slot.breaker.record_success()
                    slot.requests += 1
                    slot.busy_s += measurement.time_s
                    failed = False
                    break
                except SimulatedOOMError as err:
                    if err.is_structural:
                        # No device of the homogeneous pool can fit this
                        # working set; the only recovery is a smaller format.
                        if self.degrade_on_oom and not isinstance(
                            plan.fmt, CSRFormat
                        ):
                            with tracer.span("oom_degrade", nnz=A.nnz):
                                plan = self._bind_op(self._fallback_plan(A), A, op)
                            degraded_oom = True
                            m.oom_degraded += 1
                            continue  # fresh plan, not a retry
                        slot.failures += 1
                        failed = True
                        break
                    had_failure = True
                    slot.failures += 1
                    if slot.breaker.record_failure():
                        m.breaker_open += 1
                except DeviceLostError:
                    had_failure = True
                    slot.failures += 1
                    slot.lost = True
                    m.device_lost += 1
                    if slot.breaker.record_failure(fatal=True):
                        m.breaker_open += 1
                retries_used = attempts - 1
                if attempts >= self.retry.max_attempts:
                    failed = True
                    break
                m.retries += 1
                backoff_ms += self.retry.pause(retries_used + 1)
                failed_on.add(slot_index)
                slot_index = self._pick_device(exclude=failed_on)
            recovered = had_failure and not failed
            ex_span.set(
                attempts=attempts,
                failed=failed,
                recovered=recovered,
                degraded_oom=degraded_oom,
                backoff_ms=round(backoff_ms, 4),
            )
        return {
            "plan": plan,
            "C": C,
            "measurement": measurement,
            "slot_index": slot_index,
            "failed": failed,
            "attempts": attempts,
            "recovered": recovered,
            "backoff_ms": backoff_ms,
            "degraded_oom": degraded_oom,
        }

    # -- speculative recompose -----------------------------------------
    def _speculate(self, A: sp.csr_matrix, key: str) -> None:
        """Kick off a background compose for ``key`` (idempotent while one
        is already in flight)."""
        if key in self._inflight or self._spec_pool is None:
            return
        self._inflight[key] = (
            self._spec_pool.submit(
                self.liteform.compose_csr, A, max(1, self._plan_J(key))
            ),
            int(A.nnz),
            A,
        )

    def _apply_ready_swaps(self) -> int:
        """Swap completed background composes into the plan cache.

        Runs on the serving thread only — the :class:`PlanCache` is not
        thread-safe, and applying swaps here (instead of from the worker
        thread) serializes them against the structural-OOM degrade pin:
        a key whose entry was pinned to its CSR fallback after a
        structural OOM never gets the doomed CELL plan swapped back in
        (counted as ``speculative_skipped``).  Returns swaps applied.
        """
        if not self._inflight:
            return 0
        m = self.metrics
        tracer = get_tracer()
        applied = 0
        for key in [k for k, (f, *_rest) in self._inflight.items() if f.done()]:
            future, nnz, A = self._inflight.pop(key)
            try:
                plan = future.result()
            except Exception:
                m.speculative_skipped += 1
                continue
            if key in self._oom_pinned:
                with tracer.span("speculative_swap", key=key, skipped=True):
                    m.speculative_skipped += 1
                continue
            plan = self._bind_op(plan, A, plan_op(key))
            with tracer.span("speculative_swap", key=key, nnz=nnz):
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
            self._observe_compose(nnz, plan.overhead.total_s)
            m.compose_spent_s += plan.overhead.total_s
            m.speculative_swaps += 1
            applied += 1
        return applied

    def wait_for_speculation(self, timeout: float | None = None) -> int:
        """Block until in-flight background composes finish (bounded by
        ``timeout`` seconds) and apply their swaps; returns swaps applied.

        The serving path itself never blocks — it applies whatever is
        ready at each request.  Callers that need a settled cache (replay
        tails, tests, shutdown) call this explicitly.
        """
        futures = [f for f, *_rest in self._inflight.values()]
        if futures:
            futures_wait(futures, timeout=timeout)
        return self._apply_ready_swaps()

    # -- adaptive format selection (docs/ADAPTIVE.md) --------------------
    def _sync_bandit_metrics(self) -> None:
        """Mirror the bandit's lifetime counters onto the scoreboard
        (``bandit_flips`` is server-side and incremented directly)."""
        b, m = self.bandit, self.metrics
        m.bandit_observations = b.observations
        m.bandit_overrides = b.overrides
        m.bandit_explorations = b.explorations
        m.bandit_retrains = b.retrains

    def _arm_plan(self, A: sp.csr_matrix, key: str, arm: str, op: str) -> ComposePlan:
        """The op-bound plan of one bandit arm for ``key``, built once."""
        per_key = self._bandit_plans.setdefault(key, {})
        plan = per_key.get(arm)
        if plan is None:
            with get_tracer().span("bandit_build", arm=arm, nnz=A.nnz):
                plan = self._bind_op(
                    build_arm_plan(self.liteform, A, self._plan_J(key), arm), A, op
                )
            self.metrics.compose_spent_s += plan.overhead.total_s
            per_key[arm] = plan
        return plan

    def _bandit_decide(
        self, A: sp.csr_matrix, key: str, cached_plan: ComposePlan, op: str
    ) -> ComposePlan:
        """Hit-path bandit decision: keep the cached plan, or substitute
        the chosen arm's plan and re-pin the cache entry (a "flip")."""
        b = self.bandit
        if b is None or key in self._oom_pinned:
            return cached_plan
        arm = b.select(key)
        self._sync_bandit_metrics()
        if arm is None or arm == plan_arm(cached_plan):
            return cached_plan
        plan = self._arm_plan(A, key, arm, op)
        with get_tracer().span("bandit_repin", arm=arm, key=key):
            self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
        self.metrics.bandit_flips += 1
        return plan

    def _bandit_observe(
        self, A: sp.csr_matrix, key: str, plan: ComposePlan, exec_ms: float
    ) -> None:
        """Feed one successful request's simulated latency back as reward
        for the arm that actually executed."""
        b = self.bandit
        if b is None or key in self._oom_pinned:
            return
        b.observe(key, plan_arm(plan), exec_ms, A=A)
        if self.bandit_retrain_every and b.observations % self.bandit_retrain_every == 0:
            with get_tracer().span("bandit_retrain", observations=b.observations):
                b.retrain(self.liteform)
        self._sync_bandit_metrics()

    # ------------------------------------------------------------------
    def _prepare_plan(
        self,
        A: sp.csr_matrix,
        key: str,
        t0: float,
        effective_deadline_ms: float | None,
        force_degrade: bool,
        reuse_structure: bool = False,
    ) -> tuple[ComposePlan, bool, bool, bool, float]:
        """Cache lookup → admission → compose-or-fallback, shared by the
        single-request and batched paths.

        Returns ``(plan, cache_hit, admission_degraded, speculative,
        overhead_s)``.  ``effective_deadline_ms`` is the request's (or
        batch's tightest) deadline with queueing delay already subtracted;
        ``force_degrade`` (backpressure shedding) skips the pipeline on a
        miss outright.  With :attr:`speculative` enabled, a miss returns
        the CSR fallback immediately and composes in the background
        (unless the key is OOM-pinned, in which case the pin is restored).
        With ``reuse_structure``, a miss whose *pattern* matches a
        recorded compose is served by refilling that geometry (the
        "re-value" path) instead of re-running the pipeline.

        Every returned plan carries the kernel of the key's op segment.
        """
        m = self.metrics
        tracer = get_tracer()
        op = plan_op(key)
        if self._inflight:
            self._apply_ready_swaps()
        entry = self.cache.get(key)
        if entry is not None:
            m.cache_hits += 1
            m.compose_saved_s += entry.compose_overhead_s
            plan = self._bandit_decide(A, key, entry.plan, op)
            return plan, True, False, False, time.perf_counter() - t0

        m.cache_misses += 1
        if (
            self.bandit is not None
            and not force_degrade
            and key not in self._oom_pinned
        ):
            # Miss-path override: a bandit with enough reward for this key
            # (e.g. after an eviction) serves its chosen arm directly
            # instead of re-running the static pipeline.
            arm = self.bandit.select(key)
            self._sync_bandit_metrics()
            if arm is not None:
                plan = self._arm_plan(A, key, arm, op)
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
                return plan, False, False, False, time.perf_counter() - t0
        if reuse_structure and not force_degrade:
            rec = self._structures.get(
                fingerprint_csr(A, include_values=False).digest
            )
            if rec is not None:
                with tracer.span("revalue", op=op, nnz=A.nnz):
                    plan = self._bind_op(self._rebuild_structure(A, rec), A, op)
                m.plan_reuses += 1
                m.revalue_s += plan.overhead.total_s
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
                return plan, False, False, False, time.perf_counter() - t0
        if self.speculative and not force_degrade:
            pinned = key in self._oom_pinned
            with tracer.span("speculative_build", nnz=A.nnz, pinned=pinned):
                plan = self._bind_op(self._fallback_plan(A), A, op)
            if pinned:
                # A structural OOM already proved the full plan cannot fit
                # this working set; restore the degraded pin instead of
                # paying a background compose that would be discarded.
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
            else:
                self._speculate(A, key)
            return plan, False, False, True, time.perf_counter() - t0
        with tracer.span("admission") as adm_span:
            estimate = self.estimate_compose_s(A.nnz)
            degraded = force_degrade or (
                effective_deadline_ms is not None
                and estimate is not None
                and estimate * 1e3 > effective_deadline_ms
            )
            adm_span.set(
                admitted=not degraded,
                forced=force_degrade,
                estimate_ms=None if estimate is None else estimate * 1e3,
            )
        if degraded:
            with tracer.span("degraded_build"):
                plan = self._bind_op(self._fallback_plan(A), A, op)
            # degraded plans are intentionally NOT cached: a later
            # best-effort request for the same matrix should get the
            # full pipeline, not a pinned fallback.
            return plan, False, True, False, time.perf_counter() - t0
        with tracer.span("compose", nnz=A.nnz, op=op):
            plan = self.liteform.compose_csr(A, max(1, self._plan_J(key)))
        self._observe_compose(A.nnz, plan.overhead.total_s)
        m.compose_spent_s += plan.overhead.total_s
        if reuse_structure:
            # Record before op binding so the recipe holds the plan's own
            # SpMM kernel; later rebuilds re-bind per op.
            self._record_structure(A, plan)
        plan = self._bind_op(plan, A, op)
        self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
        return plan, False, False, False, time.perf_counter() - t0

    @staticmethod
    def _plan_J(key: str) -> int:
        """Recover ``J`` from a plan key (``.../J<width>``)."""
        return int(key.rsplit("/J", 1)[1])

    # ------------------------------------------------------------------
    def _serve_one(
        self,
        request: SpMMRequest,
        *,
        queue_wait_ms: float = 0.0,
        force_degrade: bool = False,
        shed: bool = False,
        A: sp.csr_matrix | None = None,
        key: str | None = None,
    ) -> SpMMResponse:
        """Serve one request; every path updates :attr:`metrics`.

        With a tracer installed (:func:`repro.obs.get_tracer`), each
        request emits a ``request`` span with children ``cache_lookup``,
        ``admission`` / ``degraded_build`` / ``compose`` (the compose span
        nests the pipeline's per-stage spans), and ``execute`` (which
        nests the simulated ``kernel_launch`` spans).
        """
        m = self.metrics
        m.requests += 1
        tracer = get_tracer()
        ctx = request.ctx
        if ctx is None and tracer.enabled:
            # Standalone server = its own ingress point: mint here so the
            # whole request subtree (compose, kernel launches) is linked.
            ctx = TraceContext.mint("req")
        trace_id = ctx.trace_id if ctx is not None else None
        with tracer.span(
            "request",
            ctx=ctx,
            J=request.J,
            op=request.op,
            matrix=request.name or "anonymous",
        ) as req_span:
            t0 = time.perf_counter()
            with tracer.span("cache_lookup"):
                if A is None:
                    A = self._canonical(request.matrix)
                if key is None:
                    key = plan_key(fingerprint_csr(A), request.J, request.op)

            effective_deadline = (
                None
                if request.deadline_ms is None
                else request.deadline_ms - queue_wait_ms
            )
            reuses_before = m.plan_reuses
            plan, cache_hit, degraded, speculative, overhead_s = self._prepare_plan(
                A,
                key,
                t0,
                effective_deadline,
                force_degrade,
                reuse_structure=request.reuse_structure,
            )
            plan_reused = m.plan_reuses > reuses_before
            if degraded:
                m.degraded += 1
            if speculative:
                m.speculative_misses += 1

            operand = request.operands if request.op == "sddmm" else request.B
            outcome = self._execute(A, plan, operand, request.J, op=request.op)
            plan = outcome["plan"]
            measurement = outcome["measurement"]
            failed = outcome["failed"]
            if outcome["degraded_oom"] and not failed:
                # Pin the degraded CSR plan under this key: later requests
                # for the same (matrix, J) must not re-pay the structural
                # OOM and the rebuild on every hit.  The pin also blocks
                # any in-flight speculative swap for this key.
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
                self._oom_pinned.add(key)
            exec_ms = measurement.time_ms if measurement is not None else 0.0

            overhead_ms = overhead_s * 1e3
            deadline_missed = (
                request.deadline_ms is not None
                and overhead_ms + queue_wait_ms > request.deadline_ms
            )
            if deadline_missed:
                m.deadline_misses += 1
            latency_ms = queue_wait_ms + overhead_ms + outcome["backoff_ms"] + exec_ms
            if failed:
                # Failed requests never enter the success latency series —
                # a 0 ms "latency" would drag p50/p95 down (they are tracked
                # separately, with the retry cost they actually paid).
                m.failed += 1
                m.observe_failed_latency(latency_ms)
            else:
                if outcome["recovered"]:
                    m.recovered += 1
                m.observe_latency(exec_ms, latency_ms)
                self._bandit_observe(A, key, plan, exec_ms)
            if failed:
                status = ResponseStatus.FAILED
            elif degraded or outcome["degraded_oom"] or speculative:
                status = ResponseStatus.DEGRADED
            else:
                status = ResponseStatus.OK
            req_span.set(
                cache_hit=cache_hit,
                status=status.value,
                speculative=speculative,
                deadline_missed=deadline_missed,
                sim_exec_ms=exec_ms,
            )
            m.attribution.record(
                trace_id,
                {
                    "queue_wait": queue_wait_ms,
                    "compose": overhead_ms,
                    "launch": exec_ms,
                    "retry_backoff": outcome["backoff_ms"],
                },
                total_ms=latency_ms,
            )
        return SpMMResponse(
            C=outcome["C"],
            measurement=measurement,
            plan=plan,
            key=key,
            cache_hit=cache_hit,
            status=status,
            admission_degraded=degraded,
            deadline_missed=deadline_missed,
            device_index=outcome["slot_index"],
            compose_overhead_s=overhead_s,
            latency_ms=latency_ms,
            attempts=outcome["attempts"],
            recovered=outcome["recovered"],
            backoff_ms=outcome["backoff_ms"],
            degraded_oom=outcome["degraded_oom"],
            queue_wait_ms=queue_wait_ms,
            shed=shed,
            speculative=speculative,
            trace_id=trace_id,
            op=request.op,
            plan_reused=plan_reused,
        )

    # -- async-style surface -------------------------------------------
    def submit(self, request: SpMMRequest) -> int:
        """Enqueue a request; returns a ticket for :meth:`poll`.

        The in-process server is lazy-synchronous: the work happens at
        the next :meth:`poll` / :meth:`drain` call.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending.append((ticket, request))
        return ticket

    def _process_pending(self) -> None:
        while self._pending:
            ticket, request = self._pending.popleft()
            self._completed[ticket] = self._serve_one(request)

    def poll(self, ticket: int) -> SpMMResponse | None:
        """Claim one completed response (processing anything pending
        first); None if the ticket is unknown or already claimed."""
        self._process_pending()
        return self._completed.pop(ticket, None)

    def drain(self) -> list[SpMMResponse]:
        """Serve everything pending; returns all unclaimed responses in
        submission order (each response is delivered exactly once)."""
        self._process_pending()
        out = [self._completed.pop(t) for t in sorted(self._completed)]
        return out

    def serve(self, request: SpMMRequest) -> SpMMResponse:
        """Serve one request now — thin wrapper over submit/poll."""
        ticket = self.submit(request)
        response = self.poll(ticket)
        assert response is not None  # in-process poll always completes
        return response

    # -- coalesced micro-batches ---------------------------------------
    def serve_batch(
        self,
        requests: list[SpMMRequest],
        *,
        queue_waits_ms: list[float] | None = None,
        prepared: list[tuple[sp.csr_matrix, str]] | None = None,
    ) -> list[SpMMResponse]:
        """Serve requests sharing one ``(fingerprint, J)`` key as a single
        fused launch.

        One plan lookup (or compose) covers the whole group; the dense
        operands are stacked column-wise into a ``(K, n*J)`` operand and
        executed once, then the result is split back per request — each
        slice bit-identical to an individually served response, because
        output column ``j`` depends only on operand column ``j``.  All
        requests must agree on the plan key and on operand kind (all
        numeric or all measure-only); a mixed group raises
        :exc:`ValueError` — the :class:`~repro.serve.scheduler.Batcher`
        never forms one.

        ``queue_waits_ms`` (scheduler-provided) is the per-request
        virtual queueing delay; the group's admission decision uses the
        *tightest* effective deadline (deadline minus wait) among its
        members.  ``prepared`` lets the scheduler pass pre-canonicalized
        ``(A, key)`` pairs so fingerprints are not recomputed at dispatch.
        """
        n = len(requests)
        if n == 0:
            return []
        waits = list(queue_waits_ms) if queue_waits_ms is not None else [0.0] * n
        if len(waits) != n:
            raise ValueError(f"queue_waits_ms has {len(waits)} entries for {n} requests")
        if prepared is None:
            prepared = []
            for r in requests:
                A = self._canonical(r.matrix)
                prepared.append((A, plan_key(fingerprint_csr(A), r.J, r.op)))
        keys = {key for _, key in prepared}
        if len(keys) != 1:
            raise ValueError(
                f"serve_batch requires one (fingerprint, J) group per op, "
                f"got {len(keys)} distinct plan keys: {sorted(keys)}"
            )
        numeric = [r.B is not None for r in requests]
        if any(numeric) and not all(numeric):
            raise ValueError(
                "serve_batch cannot mix numeric and measure-only requests"
            )
        A, key = prepared[0]
        if n == 1:
            return [
                self._serve_one(
                    requests[0], queue_wait_ms=waits[0], A=A, key=key
                )
            ]
        if plan_op(key) != "spmm":
            # SDDMM operand pairs and SpMV columns have no column-stacked
            # fused-launch equivalence; group members still share the one
            # plan lookup through the cache, just not a launch.
            return [
                self._serve_one(r, queue_wait_ms=w, A=a, key=k)
                for r, w, (a, k) in zip(requests, waits, prepared)
            ]

        m = self.metrics
        J = requests[0].J
        m.requests += n
        tracer = get_tracer()
        member_ids = [r.ctx.trace_id for r in requests if r.ctx is not None]
        with tracer.span("batch", size=n, J=J, key=key) as batch_span:
            if member_ids:
                # A fused launch serves many trace ids at once; list them
                # on the batch span so any member's trace finds it.
                batch_span.set(trace_ids=",".join(member_ids))
            t0 = time.perf_counter()
            deadlines = [
                r.deadline_ms - w
                for r, w in zip(requests, waits)
                if r.deadline_ms is not None
            ]
            effective_deadline = min(deadlines) if deadlines else None
            reuses_before = m.plan_reuses
            plan, cache_hit, degraded, speculative, overhead_s = self._prepare_plan(
                A,
                key,
                t0,
                effective_deadline,
                False,
                reuse_structure=any(r.reuse_structure for r in requests),
            )
            plan_reused = m.plan_reuses > reuses_before
            if degraded:
                m.degraded += n
            if speculative:
                m.speculative_misses += n

            if all(numeric):
                B = np.hstack([r.B for r in requests])
            else:
                B = None
            outcome = self._execute(A, plan, B, n * J)
            plan = outcome["plan"]
            measurement = outcome["measurement"]
            failed = outcome["failed"]
            if outcome["degraded_oom"] and not failed:
                self.cache.put(key, plan, compose_overhead_s=plan.overhead.total_s)
                self._oom_pinned.add(key)
            exec_ms = measurement.time_ms if measurement is not None else 0.0
            overhead_ms = overhead_s * 1e3
            if not failed:
                # One reward per fused launch (the per-request share), not
                # per member: the bandit's unit of evidence is a launch.
                self._bandit_observe(A, key, plan, exec_ms / n)
            batch_span.set(
                cache_hit=cache_hit,
                degraded=degraded,
                failed=failed,
                sim_exec_ms=exec_ms,
            )

        C_all = outcome["C"]
        responses = []
        for i, (request, wait) in enumerate(zip(requests, waits)):
            C_i = None
            if C_all is not None:
                C_i = np.ascontiguousarray(C_all[:, i * J : (i + 1) * J])
            deadline_missed = (
                request.deadline_ms is not None
                and overhead_ms + wait > request.deadline_ms
            )
            if deadline_missed:
                m.deadline_misses += 1
            latency_ms = wait + overhead_ms + outcome["backoff_ms"] + exec_ms
            if failed:
                m.failed += 1
                m.observe_failed_latency(latency_ms)
                status = ResponseStatus.FAILED
            else:
                if outcome["recovered"]:
                    m.recovered += 1
                m.observe_latency(exec_ms, latency_ms)
                status = (
                    ResponseStatus.DEGRADED
                    if degraded or outcome["degraded_oom"] or speculative
                    else ResponseStatus.OK
                )
            trace_id = request.ctx.trace_id if request.ctx is not None else None
            m.attribution.record(
                trace_id,
                {
                    "queue_wait": wait,
                    "compose": overhead_ms,
                    "launch": exec_ms,
                    "retry_backoff": outcome["backoff_ms"],
                },
                total_ms=latency_ms,
            )
            responses.append(
                SpMMResponse(
                    C=C_i,
                    measurement=measurement,
                    plan=plan,
                    key=key,
                    cache_hit=cache_hit,
                    status=status,
                    admission_degraded=degraded,
                    deadline_missed=deadline_missed,
                    device_index=outcome["slot_index"],
                    compose_overhead_s=overhead_s,
                    latency_ms=latency_ms,
                    attempts=outcome["attempts"],
                    recovered=outcome["recovered"],
                    backoff_ms=outcome["backoff_ms"],
                    degraded_oom=outcome["degraded_oom"],
                    batch_size=n,
                    queue_wait_ms=wait,
                    speculative=speculative,
                    trace_id=trace_id,
                    plan_reused=plan_reused,
                )
            )
        return responses

    def replay(self, requests: list[SpMMRequest]) -> ServerMetrics:
        """Serve a whole workload in order and return the scoreboard.

        The whole replay runs under one root ``replay`` span so a traced
        run attributes (nearly) all wall time to spans.
        """
        with get_tracer().span("replay", requests=len(requests)):
            for request in requests:
                self.serve(request)
            if self.speculative:
                # Settle outstanding background composes so the returned
                # scoreboard (swap counters, cache stats) is stable.
                self.wait_for_speculation()
        return self.metrics

    # -- DAG (graph) requests --------------------------------------------
    def serve_graph(self, graph):
        """Serve one :class:`repro.serve.graph.GraphRequest` end to end;
        returns its :class:`~repro.serve.graph.GraphResponse`."""
        from repro.serve.graph import GraphEngine

        return GraphEngine(self).run(graph)

    def serve_graphs(self, graphs):
        """Serve many graph requests with cross-graph stage coalescing:
        same-wave SpMM stages sharing a plan key fuse into one launch."""
        from repro.serve.graph import GraphEngine

        return GraphEngine(self).run_wave(list(graphs))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Merged metrics + cache + device-pool view (JSON-friendly)."""
        out = self.metrics.snapshot()
        out["cache"] = self.cache.stats()
        out["devices"] = [
            {
                "index": i,
                "busy_s": s.busy_s,
                "requests": s.requests,
                "failures": s.failures,
                "lost": s.lost,
                "breaker": s.breaker.state,
                "breaker_trips": s.breaker.trips,
            }
            for i, s in enumerate(self._slots)
        ]
        return out

    def report(self) -> str:
        """Plain-text report: metrics, cache, and device utilization."""
        c = self.cache.stats()
        lines = [
            self.metrics.report(),
            f"cache entries       {c['entries']} "
            f"({c['bytes'] / 2**20:.1f}/{c['max_bytes'] / 2**20:.1f} MiB, "
            f"{c['evictions']} evictions, {c['rejected']} rejected)",
        ]
        for i, s in enumerate(self._slots):
            health = f", breaker {s.breaker.state}" if s.breaker.state != "closed" else ""
            lost = ", LOST" if s.lost else ""
            lines.append(
                f"device[{i}]           {s.requests} requests, "
                f"{s.failures} failed attempts, "
                f"{s.busy_s * 1e3:.3f} ms simulated busy{health}{lost}"
            )
        return "\n".join(lines)
