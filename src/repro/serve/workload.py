"""Seeded Zipf traffic over a synthetic matrix pool — the replay workload.

Real SpMM serving (GNN inference, recommender retrieval) multiplies a
*small set* of graphs against a stream of dense operands, with popularity
following a heavy-tailed law: a handful of hot graphs take most of the
traffic.  ``generate_workload`` models that as Zipf(s)-distributed
requests over a pool mixing :class:`SuiteSparseLikeCollection` matrices
with GNN stand-ins, mixed ``J`` widths, and an optional deadline on a
fraction of the requests (the latency-sensitive tier that exercises the
server's admission control).

Traffic can also be *timed*: with ``arrival_rate_rps`` set, each request
gets a seeded ``arrival_ms`` timestamp (Poisson or bursty process) so the
open-loop :class:`~repro.serve.scheduler.Scheduler` can replay it as a
stream instead of a closed-loop list.  Arrival draws use a dedicated RNG
stream, so turning arrivals on (or changing the process) never perturbs
the matrices, picks, operands, or deadlines of an existing trace.

Everything is seeded: the same :class:`WorkloadSpec` always yields the
same request sequence, so replay benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.matrices.collection import SuiteSparseLikeCollection
from repro.matrices.gnn import GNN_DATASETS, make_gnn_standin
from repro.serve.server import SpMMRequest


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity: ``p_i ∝ 1 / (i + 1)^s`` over ranks."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if s < 0:
        raise ValueError(f"Zipf exponent must be >= 0, got {s}")
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return w / w.sum()


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one replayable traffic trace."""

    num_requests: int = 200
    num_matrices: int = 32
    #: Zipf popularity exponent (1.1 ≈ web-like skew; 0 = uniform).
    zipf_s: float = 1.1
    #: Dense-operand widths mixed into the trace.
    J_choices: tuple[int, ...] = (32, 64, 128)
    #: If True (the realistic GNN-serving default), each matrix keeps one
    #: fixed J — a model's feature width doesn't change between requests.
    #: If False, J is drawn per request (worst case for the plan cache).
    J_per_matrix: bool = True
    #: GNN stand-ins mixed into the pool (the rest is SuiteSparse-like).
    gnn_names: tuple[str, ...] = ("cora", "citeseer")
    #: Row-count cap of the SuiteSparse-like pool entries.
    max_rows: int = 4_000
    #: Deadline attached to a fraction of the requests (None = never).
    deadline_ms: float | None = None
    deadline_fraction: float = 0.0
    #: If True each request carries a dense B (full numeric execution);
    #: if False requests are measure-only (timing replay, much cheaper).
    with_operands: bool = True
    #: Mean arrival rate in requests per *simulated* second.  None (the
    #: default) keeps the legacy closed-loop trace: every ``arrival_ms``
    #: stays 0.0 and replay order is the only timing.
    arrival_rate_rps: float | None = None
    #: ``"poisson"`` — independent exponential inter-arrival gaps;
    #: ``"burst"`` — requests arrive in simultaneous groups of
    #: :attr:`burst_size` (bursts themselves Poisson at a rate keeping the
    #: overall mean at :attr:`arrival_rate_rps`).
    arrival_process: str = "poisson"
    #: Requests per burst when :attr:`arrival_process` is ``"burst"``.
    burst_size: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.num_matrices < 1:
            raise ValueError(f"num_matrices must be >= 1, got {self.num_matrices}")
        if not self.J_choices:
            raise ValueError("J_choices must not be empty")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ValueError("deadline_fraction must be in [0, 1]")
        for name in self.gnn_names:
            if name not in GNN_DATASETS:
                raise ValueError(f"unknown GNN stand-in {name!r}")
        if self.arrival_rate_rps is not None and self.arrival_rate_rps <= 0:
            raise ValueError(
                f"arrival_rate_rps must be > 0, got {self.arrival_rate_rps}"
            )
        if self.arrival_process not in ("poisson", "burst"):
            raise ValueError(
                f"arrival_process must be 'poisson' or 'burst', "
                f"got {self.arrival_process!r}"
            )
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {self.burst_size}")


def _build_pool(spec: WorkloadSpec) -> list[tuple[str, sp.csr_matrix]]:
    pool: list[tuple[str, sp.csr_matrix]] = []
    for name in spec.gnn_names[: spec.num_matrices]:
        pool.append((f"gnn:{name}", make_gnn_standin(name, seed=spec.seed)))
    remaining = spec.num_matrices - len(pool)
    if remaining > 0:
        coll = SuiteSparseLikeCollection(
            size=remaining, max_rows=spec.max_rows, seed=spec.seed
        )
        pool.extend((entry.name, entry.matrix) for entry in coll)
    return pool


def generate_workload(spec: WorkloadSpec) -> list[SpMMRequest]:
    """Materialize the request trace described by ``spec``.

    Dense operands are shared per ``(cols, J)`` pair — regenerating a
    fresh B per request would dominate replay cost without changing what
    is being measured.
    """
    rng = np.random.default_rng(spec.seed)
    pool = _build_pool(spec)
    # Popularity rank is decoupled from pool order, so the hottest matrix
    # isn't always the first GNN stand-in.
    order = rng.permutation(len(pool))
    weights = zipf_weights(len(pool), spec.zipf_s)
    fixed_J = {
        i: spec.J_choices[i % len(spec.J_choices)] for i in range(len(pool))
    }
    operands: dict[tuple[int, int], np.ndarray] = {}

    def operand(cols: int, J: int) -> np.ndarray:
        key = (cols, J)
        if key not in operands:
            operands[key] = rng.standard_normal((cols, J)).astype(np.float32)
        return operands[key]

    picks = rng.choice(len(pool), size=spec.num_requests, p=weights)
    deadline_draws = rng.random(spec.num_requests)
    requests = []
    for i, rank in enumerate(picks):
        pool_index = int(order[rank])
        name, A = pool[pool_index]
        J = (
            fixed_J[pool_index]
            if spec.J_per_matrix
            else int(rng.choice(spec.J_choices))
        )
        deadline = (
            spec.deadline_ms
            if spec.deadline_ms is not None
            and deadline_draws[i] < spec.deadline_fraction
            else None
        )
        requests.append(
            SpMMRequest(
                matrix=A,
                B=operand(A.shape[1], J) if spec.with_operands else None,
                J=J,
                deadline_ms=deadline,
                name=f"req{i:05d}:{name}",
            )
        )
    for request, arrival_ms in zip(requests, _arrival_times(spec)):
        request.arrival_ms = arrival_ms
    return requests


#: Stream tag mixed into the arrival RNG seed.  Arrival timestamps must
#: come from their own generator: drawing them from the trace RNG would
#: shift every downstream pick/operand/deadline draw, silently changing
#: all existing seeded workloads the moment arrivals are enabled.
_ARRIVAL_STREAM = 0xA221


def _arrival_times(spec: WorkloadSpec) -> np.ndarray:
    """Virtual-ms arrival timestamps for ``spec`` (zeros when untimed)."""
    n = spec.num_requests
    if spec.arrival_rate_rps is None:
        return np.zeros(n)
    rng = np.random.default_rng((spec.seed, _ARRIVAL_STREAM))
    mean_gap_ms = 1e3 / spec.arrival_rate_rps
    if spec.arrival_process == "poisson":
        return np.cumsum(rng.exponential(mean_gap_ms, size=n))
    # Bursty: groups of burst_size share one timestamp; burst gaps are
    # scaled up by burst_size so the overall mean rate is unchanged.
    num_bursts = -(-n // spec.burst_size)
    burst_times = np.cumsum(
        rng.exponential(mean_gap_ms * spec.burst_size, size=num_bursts)
    )
    return np.repeat(burst_times, spec.burst_size)[:n]
