"""Generic composition auto-tuners.

LiteForm's thesis is that *predicting* a composition beats *searching* for
one.  This package makes the search side a first-class, reusable citizen so
the claim can be tested against tuners of any budget:

* :class:`ExhaustiveTuner` — SparseTIR-style full sweep (the Fig. 7 oracle);
* :class:`RandomSearchTuner` — fixed-budget random sampling;
* :class:`HillClimbTuner` — greedy neighbourhood descent over (P, W);

all measuring real candidates on the simulated device and accounting the
same construction-overhead currency as Figures 8-9.
"""

from repro.tuning.search import (
    CandidateResult,
    ExhaustiveTuner,
    HillClimbTuner,
    RandomSearchTuner,
    TuningResult,
    cell_candidate_space,
)

__all__ = [
    "CandidateResult",
    "TuningResult",
    "ExhaustiveTuner",
    "RandomSearchTuner",
    "HillClimbTuner",
    "cell_candidate_space",
]
