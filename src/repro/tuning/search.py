"""Search strategies over the CELL composition space (P, uniform W)."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.partition_model import PARTITION_CANDIDATES
from repro.formats.base import as_csr, ceil_pow2_exponent
from repro.formats.cell import CELLFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.kernels.cell_spmm import CELLSpMM


def cell_candidate_space(
    A: sp.csr_matrix,
    partition_candidates: tuple[int, ...] = PARTITION_CANDIDATES,
    max_width_cap: int = 512,
) -> list[tuple[int, int]]:
    """All (num_partitions, uniform max width) composition candidates."""
    lengths = np.diff(A.indptr)
    max_len = int(lengths.max()) if lengths.size else 1
    max_exp = min(
        int(ceil_pow2_exponent(max(max_len, 1))), int(np.log2(max_width_cap))
    )
    parts = [p for p in partition_candidates if p <= A.shape[1]]
    return [(p, 1 << e) for p in parts for e in range(max_exp + 1)]


@dataclass(frozen=True)
class CandidateResult:
    """One measured composition candidate."""

    num_partitions: int
    max_width: int
    time_s: float


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best: CandidateResult
    evaluated: list[CandidateResult] = field(default_factory=list)
    #: Simulated construction overhead (compile + repeated measurement per
    #: candidate), same currency as Figures 8-9.
    overhead_s: float = 0.0

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluated)

    def build(self, A: sp.spmatrix, block_multiple: int = 2) -> CELLFormat:
        """Materialize the winning composition."""
        return CELLFormat.from_csr(
            as_csr(A),
            num_partitions=self.best.num_partitions,
            max_widths=self.best.max_width,
            block_multiple=block_multiple,
        )


class BaseTuner(abc.ABC):
    """Shared measurement plumbing for the search strategies."""

    def __init__(
        self,
        device: SimulatedDevice | None = None,
        compile_s: float = 1.0,
        runs_per_candidate: int = 10,
    ):
        if runs_per_candidate < 1:
            raise ValueError("runs_per_candidate must be >= 1")
        self.device = device or SimulatedDevice()
        self.compile_s = compile_s
        self.runs_per_candidate = runs_per_candidate
        self._kernel = CELLSpMM(fused=False)

    def _measure(self, A: sp.csr_matrix, cand: tuple[int, int], J: int) -> float:
        p, w = cand
        fmt = CELLFormat.from_csr(A, num_partitions=p, max_widths=w)
        return self._kernel.measure(fmt, J, self.device).time_s

    def tune(self, A: sp.spmatrix, J: int) -> TuningResult:
        A = as_csr(A)
        if A.nnz == 0:
            raise ValueError("cannot tune an empty matrix")
        if J < 1:
            raise ValueError(f"J must be >= 1, got {J}")
        result = TuningResult(best=CandidateResult(1, 1, float("inf")))
        for cand in self._candidates(A, J, result):
            try:
                t = self._measure(A, cand, J)
            except SimulatedOOMError:
                result.overhead_s += self.compile_s
                continue
            result.overhead_s += self.compile_s + self.runs_per_candidate * t
            cr = CandidateResult(cand[0], cand[1], t)
            result.evaluated.append(cr)
            if t < result.best.time_s:
                result.best = cr
        if not np.isfinite(result.best.time_s):
            raise RuntimeError("no feasible candidate found")
        return result

    @abc.abstractmethod
    def _candidates(self, A: sp.csr_matrix, J: int, result: TuningResult):
        """Yield candidates; may inspect ``result`` for adaptive search."""


class ExhaustiveTuner(BaseTuner):
    """The full sweep — SparseTIR's strategy and the Fig. 7 oracle."""

    def _candidates(self, A, J, result):
        yield from cell_candidate_space(A)


class RandomSearchTuner(BaseTuner):
    """Uniform random sampling with a fixed evaluation budget."""

    def __init__(self, budget: int = 8, seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.seed = seed

    def _candidates(self, A, J, result):
        space = cell_candidate_space(A)
        rng = np.random.default_rng(self.seed)
        k = min(self.budget, len(space))
        for i in rng.choice(len(space), size=k, replace=False):
            yield space[int(i)]


class HillClimbTuner(BaseTuner):
    """Greedy neighbourhood descent: double/halve P or W while improving."""

    def __init__(self, start: tuple[int, int] = (1, 32), max_steps: int = 16, **kwargs):
        super().__init__(**kwargs)
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self.start = start
        self.max_steps = max_steps

    def _candidates(self, A, J, result):
        space = set(cell_candidate_space(A))
        if not space:
            return
        p, w = self.start
        current = min(space, key=lambda c: abs(c[0] - p) + abs(np.log2(c[1]) - np.log2(max(w, 1))))
        seen = set()
        for _ in range(self.max_steps):
            if current not in seen:
                seen.add(current)
                yield current
            cp, cw = current
            neighbours = [
                c
                for c in ((cp * 2, cw), (max(1, cp // 2), cw), (cp, cw * 2), (cp, max(1, cw // 2)))
                if c in space and c not in seen
            ]
            if not neighbours:
                break
            for n in neighbours:
                seen.add(n)
                yield n
            best_time = {
                (r.num_partitions, r.max_width): r.time_s for r in result.evaluated
            }
            options = [c for c in (current, *neighbours) if c in best_time]
            nxt = min(options, key=lambda c: best_time[c])
            if nxt == current:
                break
            current = nxt
