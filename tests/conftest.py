"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.base import as_csr
from repro.gpu import SimulatedDevice
from repro.matrices import (
    banded_matrix,
    community_graph,
    power_law_graph,
    uniform_random_matrix,
    with_dense_rows,
)


@pytest.fixture(scope="session")
def device() -> SimulatedDevice:
    return SimulatedDevice()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _tiny_dense():
    """A small handcrafted matrix exercising empty rows, a long row, and
    duplicated column patterns."""
    A = np.zeros((8, 10), dtype=np.float32)
    A[0, [1, 5]] = [1.0, 2.0]
    A[2, :9] = np.arange(1, 10)
    A[3, 3] = 4.0
    A[5, [0, 3, 7, 9]] = [1, 2, 3, 4]
    A[7, [2, 4]] = [5, 6]
    return A


@pytest.fixture(scope="session")
def tiny_matrix() -> sp.csr_matrix:
    return as_csr(_tiny_dense())


@pytest.fixture(scope="session")
def matrix_suite() -> dict[str, sp.csr_matrix]:
    """A small, diverse set of matrices used across kernel/format tests."""
    return {
        "tiny": as_csr(_tiny_dense()),
        "power_law": power_law_graph(500, 8, seed=1),
        "community": community_graph(400, 10, num_communities=8, seed=2),
        "banded": banded_matrix(300, 4, seed=3),
        "uniform": uniform_random_matrix(256, 384, 0.02, seed=4),
        "dense_rows": with_dense_rows(
            power_law_graph(300, 6, seed=5), num_dense_rows=3, row_density=0.4, seed=6
        ),
        "single_col": as_csr(sp.csr_matrix(np.ones((50, 1), dtype=np.float32))),
    }


@pytest.fixture(scope="session")
def dense_operand() -> np.ndarray:
    rng = np.random.default_rng(777)

    def make(K: int, J: int = 32) -> np.ndarray:
        return rng.standard_normal((K, J)).astype(np.float32)

    return make
