"""End-to-end CLI smoke contracts (one module per former ci.yml heredoc).

Each test here drives ``repro.cli.main`` in-process with the same flags
the CI workflow used to pass to inline ``python - <<EOF`` steps, and
asserts the same contract.  CI runs the whole package as a single
``pytest tests/smoke -q`` step; locally they are part of tier-1.
"""
