"""Fixtures for the CLI smoke contracts."""

from __future__ import annotations

import io
import json
import os
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(scope="session")
def artifacts_dir(tmp_path_factory) -> Path:
    """Where smokes drop inspectable artifacts (traces, SLO reports).

    CI sets ``REPRO_SMOKE_ARTIFACTS`` to a workspace directory so the
    consolidated upload step can collect them; locally they land in a
    session tmpdir.
    """
    env = os.environ.get("REPRO_SMOKE_ARTIFACTS")
    if env:
        path = Path(env)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path_factory.mktemp("obs-artifacts")


@pytest.fixture(scope="session")
def run_cli():
    """Invoke the CLI in-process and return its parsed ``--json`` output.

    Equivalent to ``PYTHONPATH=src python -m repro.cli ... --json`` in
    the former workflow heredocs; stderr (training progress, trace
    summaries) passes through untouched.
    """

    def run(*args: object, parse_json: bool = True):
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = main([str(a) for a in args])
        assert rc == 0, f"cli exited {rc} for {args}"
        return json.loads(buf.getvalue()) if parse_json else buf.getvalue()

    return run
