"""Adaptive drift smoke: on a trace whose kernel costs shift mid-replay,
``serve --adaptive`` overrides the static selector (re-pinning cached
plans onto a different format family) with 100% availability."""


def test_bandit_overrides_static_model_on_shifted_trace(run_cli):
    snap = run_cli(
        "serve",
        "--requests",
        120,
        "--matrices",
        4,
        "--measure-only",
        "--adaptive",
        "--drift-after",
        60,
        "--drift-slowdown",
        3,
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )
    assert snap["failed"] == 0, f"unhandled failures: {snap['failed']}"
    assert snap["availability"] == 1.0, snap["availability"]
    assert snap["bandit_observations"] == 120, snap["bandit_observations"]
    assert snap["bandit_overrides"] > 0, "bandit never took over from the model"
    # The drift forced at least one cached plan onto a different format
    # family — the static selector alone would have stayed wrong.
    assert snap["bandit_flips"] > 0, "drift never flipped a cached plan's format"
