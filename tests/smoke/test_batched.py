"""Batched scheduling smoke: shared-key arrivals coalesce into fused
launches and nothing fails."""


def test_arrivals_coalesce_into_batches(run_cli):
    snap = run_cli(
        "serve",
        "--requests",
        80,
        "--matrices",
        8,
        "--J-values",
        32,
        "--batch",
        8,
        "--max-wait-ms",
        1.0,
        "--arrival-rate",
        100000,
        "--max-queue",
        128,
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )
    assert snap["dispatched"] + snap["shed"] == 80, snap
    assert snap["batches"] < snap["dispatched"], "nothing coalesced"
    assert snap["coalesce_rate"] > 0.0, snap["coalesce_rate"]
    assert "p95" in snap["queue_wait_ms"], snap["queue_wait_ms"]
    assert snap["server"]["failed"] == 0, snap["server"]["failed"]
