"""Chaos serving smoke: injected faults are retried, nothing is lost."""


def test_chaos_faults_are_absorbed_by_retries(run_cli):
    snap = run_cli(
        "serve",
        "--requests",
        80,
        "--matrices",
        8,
        "--measure-only",
        "--faults",
        0.1,
        "--retries",
        4,
        "--devices",
        2,
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )
    assert snap["failed"] == 0, f"unhandled failures: {snap['failed']}"
    assert snap["retries"] > 0, "fault injection never exercised retries"
    assert snap["availability"] == 1.0, snap["availability"]
