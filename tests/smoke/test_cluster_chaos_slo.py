"""Cluster chaos smoke: a shard kill mid-trace loses nothing, the SLO
fast-burn page fires, and the merged Perfetto trace links rerouted
requests across shard lanes by trace id."""

import json

import pytest


@pytest.fixture(scope="module")
def cluster(run_cli, artifacts_dir):
    # The 240-request cluster replay is the slowest smoke, so its three
    # contracts share one run.
    slo_report = artifacts_dir / "slo_report.json"
    trace_path = artifacts_dir / "cluster_trace.json"
    snap = run_cli(
        "serve",
        "--requests",
        240,
        "--matrices",
        8,
        "--measure-only",
        "--shards",
        4,
        "--devices",
        2,
        "--replication",
        2,
        "--kill-shard",
        60,
        "--death-rate",
        0.01,
        "--retries",
        2,
        "--slo",
        "--slo-window-ms",
        100,
        "--slo-report",
        slo_report,
        "--trace",
        trace_path,
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )["cluster"]
    return snap, slo_report, trace_path


def test_chaos_kill_loses_no_requests(cluster):
    snap, _, _ = cluster
    assert snap["completed"] == 240, snap["completed"]
    assert snap["failed"] == 0, f"requests lost to chaos: {snap['failed']}"
    assert snap["availability"] == 1.0, snap["availability"]
    assert snap["shards_killed"] == 1, "chaos kill never fired"
    assert snap["shards_live"] == 3, snap["shards_live"]
    assert snap["rerouted"] > 0, "no request ever crossed shards"


def test_slo_fast_burn_page_fired_without_breaching_target(cluster):
    # The fast-burn page fired during the fault storm, while
    # request-level availability never breached its 99% target.
    snap, slo_report, _ = cluster
    slo = json.loads(slo_report.read_text())
    pages = [a for a in slo["alerts"] if a["severity"] == "page"]
    assert pages, f"no page alert fired: {slo['alerts']}"
    assert all(0.0 < a["cumulative_sli"] < 1.0 for a in pages), pages
    assert snap["availability"] >= slo["slos"]["availability"]["target"]


def test_merged_trace_links_reroutes_across_shard_lanes(cluster):
    # Merged Perfetto trace: one lane per component, and at least one
    # rerouted request's spans linked across two shards' lanes by a
    # single trace id.
    _, _, trace_path = cluster
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert len(names) >= 5, f"expected frontend + 4 shard lanes: {names}"
    lanes = {}
    for e in events:
        tid = e.get("args", {}).get("trace_id")
        if e.get("ph") == "X" and tid:
            lanes.setdefault(tid, set()).add(names[e["pid"]])
    crossed = [
        t
        for t, ls in lanes.items()
        if sum(1 for lane in ls if lane.startswith("shard")) >= 2
    ]
    assert crossed, "no trace id spans two shard lanes"
