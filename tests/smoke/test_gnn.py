"""GNN graph serving smoke: DAG requests over shards reuse composed plans."""


def test_sharded_gnn_epochs_reuse_plans(run_cli):
    snap = run_cli(
        "serve",
        "--workload",
        "gnn",
        "--shards",
        2,
        "--layers",
        2,
        "--epochs",
        2,
        "--feature-dim",
        16,
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )["cluster"]
    assert snap["failed"] == 0, f"failed graphs: {snap['failed']}"
    assert snap["availability"] == 1.0, snap["availability"]
    assert snap["graphs"] == 2 and snap["graph_stages"] == 8, snap
    assert snap["plan_reuses"] >= 1, "no plan was structurally reused"
