"""Speculative serving smoke: a miss storm never blocks on composition."""


def test_miss_storm_is_served_speculatively(run_cli):
    snap = run_cli(
        "serve",
        "--requests",
        60,
        "--matrices",
        30,
        "--measure-only",
        "--speculative",
        "--train-size",
        6,
        "--seed",
        3,
        "--json",
    )
    assert snap["failed"] == 0, f"unhandled failures: {snap['failed']}"
    assert snap["availability"] == 1.0, snap["availability"]
    assert snap["speculative_misses"] > 0, "no miss was served speculatively"
    assert snap["speculative_swaps"] > 0, "no background compose landed"
    assert snap["speculative_misses"] == snap["cache_misses"], snap
