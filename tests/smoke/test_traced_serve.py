"""Traced serving smoke: every span is a well-formed Chrome trace event."""

import json


def test_traced_serve_emits_complete_spans(run_cli, artifacts_dir):
    trace_path = artifacts_dir / "serve_trace.json"
    run_cli(
        "serve",
        "--requests",
        50,
        "--train-size",
        6,
        "--seed",
        3,
        "--trace",
        trace_path,
        "--json",
    )
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert len(events) > 0, "trace has no spans"
    for e in events:
        for key in ("ph", "ts", "dur", "name", "pid", "tid"):
            assert key in e, f"event missing {key}: {e}"
