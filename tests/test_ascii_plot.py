"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.bench.ascii_plot import bars, scatter


class TestScatter:
    def test_renders_points(self):
        out = scatter([1, 10, 100], [2, 1, 0.5], title="t", hline=1.0)
        assert "t" in out
        assert out.count("o") == 3

    def test_hline_drawn(self):
        out = scatter([1, 100], [0.5, 2.0], hline=1.0)
        assert "-" in out

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            scatter([1, 2], [1])

    def test_filters_nonfinite(self):
        out = scatter([1, 2, np.inf], [1, np.nan, 3])
        assert out.count("o") == 1

    def test_empty(self):
        assert "no finite points" in scatter([], [])

    def test_single_point(self):
        out = scatter([5], [5])
        assert out.count("o") == 1

    def test_axis_labels(self):
        out = scatter([1, 10], [1, 10], xlabel="rows", ylabel="speedup")
        assert "x: rows" in out and "y: speedup" in out

    def test_linear_mode_accepts_nonpositive(self):
        out = scatter([-1, 0, 1], [-2, 0, 2], logx=False, logy=False)
        assert out.count("o") == 3


class TestBars:
    def test_basic(self):
        out = bars(["a", "bb"], [1.0, 2.0], title="demo")
        assert "demo" in out and "a" in out and "#" in out

    def test_oom_rendered(self):
        out = bars(["x"], [float("inf")])
        assert "OOM" in out

    def test_mismatch(self):
        with pytest.raises(ValueError):
            bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "no data" in bars([], [])

    def test_longest_bar_is_max(self):
        out = bars(["small", "big"], [1.0, 4.0])
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[1].count("#") > lines[0].count("#")
