"""Tests for the baseline systems (Section 7 comparison harness)."""

import numpy as np
import pytest

from repro.baselines import (
    FIG6_BASELINES,
    LiteFormBaseline,
    SparseTIRBaseline,
    STileBaseline,
    TacoBaseline,
    make_baseline,
)
from repro.core import LiteForm, generate_training_data
from repro.kernels import spmm_reference
from repro.matrices import SuiteSparseLikeCollection, mixture_matrix, power_law_graph


@pytest.fixture(scope="module")
def lf():
    coll = SuiteSparseLikeCollection(size=10, max_rows=4000, seed=21)
    return LiteForm().fit(generate_training_data(coll, J_values=(32, 128)))


@pytest.fixture(scope="module")
def workload():
    A = mixture_matrix(1500, avg_degree=14, seed=9)
    B = np.random.default_rng(1).standard_normal((A.shape[1], 32)).astype(np.float32)
    return A, B, spmm_reference(A, B)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in FIG6_BASELINES:
            assert make_baseline(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_baseline("cusparse2")


class TestCorrectness:
    @pytest.mark.parametrize("name", FIG6_BASELINES)
    def test_baseline_matches_reference(self, name, workload, device):
        A, B, ref = workload
        b = make_baseline(name)
        prep = b.prepare(A, B.shape[1], device)
        C, m = b.execute(prep, B, device)
        np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3, err_msg=name)
        assert m.time_s > 0

    def test_liteform_baseline(self, lf, workload, device):
        A, B, ref = workload
        b = LiteFormBaseline(lf)
        prep = b.prepare(A, B.shape[1], device)
        C, _ = b.execute(prep, B, device)
        np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3)


class TestTuners:
    def test_taco_picks_best_schedule(self, workload, device):
        A, B, _ = workload
        prep = TacoBaseline().prepare(A, 32, device)
        assert prep.config["schedules_tried"] == 36
        # the chosen schedule's time is what measure() reports
        t = TacoBaseline().measure(prep, 32, device).time_s
        assert t > 0

    def test_sparsetir_searches_whole_space(self, workload, device):
        A, B, _ = workload
        bl = SparseTIRBaseline()
        prep = bl.prepare(A, 32, device)
        assert prep.config["candidates"] == len(bl.candidate_space(A))
        assert prep.config["num_partitions"] >= 1

    def test_sparsetir_overhead_counts_trials(self, workload, device):
        A, B, _ = workload
        bl = SparseTIRBaseline(compile_s=1.0, runs_per_candidate=10)
        prep = bl.prepare(A, 32, device)
        # at least compile_s per candidate
        assert prep.construction_overhead_s >= prep.config["candidates"] * 1.0

    def test_sparsetir_beats_or_ties_untuned_cell(self, workload, device):
        """Exhaustive tuning can only improve on any single hyb config."""
        from repro.formats import CELLFormat
        from repro.kernels import CELLSpMM

        A, _, _ = workload
        prep = SparseTIRBaseline().prepare(A, 32, device)
        tuned = CELLSpMM(fused=False).measure(prep.fmt, 32, device).time_s
        naive = CELLSpMM(fused=False).measure(
            CELLFormat.from_csr(A, num_partitions=1), 32, device
        ).time_s
        assert tuned <= naive * 1.001

    def test_stile_panels_cover_matrix(self, workload, device):
        A, _, _ = workload
        prep = STileBaseline(panel_rows=256).prepare(A, 32, device)
        total_rows = sum(p.fmt.shape[0] for p in prep.fmt.panels)
        assert total_rows == A.shape[0]
        assert prep.config["panels"] == -(-A.shape[0] // 256)

    def test_stile_microbenchmark_overhead(self, workload, device):
        A, _, _ = workload
        cheap = STileBaseline(micro_samples=1, micro_setup_s=0.1, panel_rows=128)
        rich = STileBaseline(micro_samples=8, micro_setup_s=0.1, panel_rows=128)
        t_cheap = cheap.prepare(A, 32, device).construction_overhead_s
        t_rich = rich.prepare(A, 32, device).construction_overhead_s
        assert t_rich > t_cheap

    def test_stile_invalid_panel_rows(self):
        with pytest.raises(ValueError):
            STileBaseline(panel_rows=0)


class TestOverheadOrdering:
    def test_fig8_ordering(self, lf, workload, device):
        """LiteForm's construction overhead is orders of magnitude below the
        auto-tuning systems (the Figure 8 claim)."""
        A, B, _ = workload
        lo = LiteFormBaseline(lf).prepare(A, 32, device).construction_overhead_s
        tir = SparseTIRBaseline().prepare(A, 32, device).construction_overhead_s
        stile = STileBaseline().prepare(A, 32, device).construction_overhead_s
        assert tir > 10 * lo
        assert stile > 10 * lo

    def test_fixed_formats_cheap_construction(self, workload, device):
        A, B, _ = workload
        for name in ("cusparse", "sputnik", "dgsparse"):
            prep = make_baseline(name).prepare(A, 32, device)
            assert prep.construction_overhead_s < 1.0


class TestTritonOOM:
    def test_oom_propagates(self, device):
        from repro.gpu.device import SimulatedDevice, SimulatedOOMError, V100

        A = power_law_graph(4000, 20, seed=3)
        tiny_dev = SimulatedDevice(spec=V100.with_overrides(dram_bytes=10**6))
        b = make_baseline("triton")
        prep = b.prepare(A, 128, tiny_dev)
        with pytest.raises(SimulatedOOMError):
            b.measure(prep, 128, tiny_dev)
