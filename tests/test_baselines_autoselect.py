"""Tests for the Seer-style automatic format-selection baseline."""

import numpy as np
import pytest

from repro.baselines.autoselect import CANDIDATES, AutoSelectBaseline
from repro.kernels import spmm_reference
from repro.matrices import (
    SuiteSparseLikeCollection,
    block_diagonal_matrix,
    power_law_graph,
)


@pytest.fixture(scope="module")
def fitted(device):
    coll = SuiteSparseLikeCollection(size=12, max_rows=4000, seed=71)
    entries = list(coll) + [
        ("bd0", block_diagonal_matrix(2048, 8, 1.0, seed=1)),
        ("bd1", block_diagonal_matrix(3072, 8, 1.0, seed=2)),
    ]
    return AutoSelectBaseline().fit(entries, device, J_values=(32,))


class TestAutoSelect:
    def test_candidate_keys_unique(self):
        keys = [c.key for c in CANDIDATES]
        assert len(set(keys)) == len(keys) == 4

    def test_prepare_before_fit(self, device):
        with pytest.raises(RuntimeError):
            AutoSelectBaseline().prepare(power_law_graph(100, 4, seed=0), 32, device)

    def test_selected_key_is_valid(self, fitted, device):
        prep = fitted.prepare(power_law_graph(800, 8, seed=3), 32, device)
        assert prep.config["selected"] in {c.key for c in CANDIDATES}

    def test_execute_correct(self, fitted, device):
        A = power_law_graph(600, 7, seed=4)
        B = np.random.default_rng(0).standard_normal((A.shape[1], 16)).astype(np.float32)
        prep = fitted.prepare(A, 16, device)
        C, m = fitted.execute(prep, B, device)
        np.testing.assert_allclose(C, spmm_reference(A, B), rtol=1e-3, atol=1e-3)

    def test_selection_beats_worst_fixed_choice(self, fitted, device):
        """The category's raison d'être: picking per input beats committing
        to the single worst format."""
        from repro.bench import geomean

        rng_seeds = [11, 12, 13, 14]
        sel_t, worst_t = [], []
        for s in rng_seeds:
            A = power_law_graph(2500, 10, seed=s)
            prep = fitted.prepare(A, 64, device)
            sel_t.append(fitted.measure(prep, 64, device).time_s)
            times = []
            for cand in CANDIDATES:
                try:
                    times.append(cand.kernel().measure(cand.build(A), 64, device).time_s)
                except Exception:
                    times.append(float("inf"))
            finite = [t for t in times if np.isfinite(t)]
            worst_t.append(max(finite))
        assert geomean(sel_t) < geomean(worst_t)

    def test_low_construction_overhead(self, fitted, device):
        prep = fitted.prepare(power_law_graph(2000, 8, seed=5), 32, device)
        assert prep.construction_overhead_s < 1.0  # Table 1: overhead "low"

    def test_training_with_no_matrices_rejected(self, device):
        with pytest.raises(ValueError):
            AutoSelectBaseline().fit([], device)
