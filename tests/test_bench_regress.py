"""The benchmark-regression harness: snapshot structure, tolerance-band
comparison semantics, baseline round-trips, and the ``cli bench`` gate."""

import json

import pytest

from repro.bench.regress import (
    DEFAULT_TOLERANCES,
    SCHEMA_VERSION,
    Metric,
    compare_snapshots,
    load_snapshot,
    run_suite,
    snapshot_filename,
    write_snapshot,
)
from repro.cli import main


def snap(*metrics: Metric) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "rev": "test",
        "metrics": {m.name: m.to_json() for m in metrics},
    }


@pytest.fixture(scope="module")
def suite_snapshot():
    """One real (fast-mode) suite run shared by the structure tests."""
    return run_suite(repeats=1, include_serve=False)


class TestSuiteSnapshot:
    def test_schema_and_envelope(self, suite_snapshot):
        assert suite_snapshot["schema"] == SCHEMA_VERSION
        assert suite_snapshot["repeats"] == 1
        assert set(suite_snapshot["env"]) == {"python", "numpy", "scipy"}
        assert suite_snapshot["metrics"]

    def test_metric_kinds_are_known(self, suite_snapshot):
        for name, payload in suite_snapshot["metrics"].items():
            assert payload["kind"] in DEFAULT_TOLERANCES, name
            assert isinstance(payload["value"], float)

    def test_expected_metrics_present(self, suite_snapshot):
        names = set(suite_snapshot["metrics"])
        for required in (
            "compose.P1.wall_ms",
            "compose.P1.speedup_vs_reference",
            "compose.speedup_geomean",
            "compose.structure_checksum",
            "kernel.execute.wall_ms",
            "kernel.execute.checksum",
            "plan.virtual_ms",
            "tune.evaluations",
        ):
            assert required in names

    def test_deterministic_metrics_repeat(self, suite_snapshot):
        again = run_suite(repeats=1, include_serve=False)
        for name, payload in suite_snapshot["metrics"].items():
            if payload["kind"] in ("exact", "virtual"):
                assert again["metrics"][name]["value"] == payload["value"], name

    def test_roundtrip_through_disk(self, suite_snapshot, tmp_path):
        path = write_snapshot(suite_snapshot, tmp_path / snapshot_filename("abc"))
        assert path.name == "BENCH_abc.json"
        assert load_snapshot(path) == suite_snapshot

    def test_rejects_repeats_below_one(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(repeats=0)


class TestSnapshotIO:
    def test_load_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 1, "metrics": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)


class TestComparison:
    def test_identical_snapshots_pass(self):
        s = snap(Metric("a.wall_ms", 10.0, "wall", "ms"), Metric("b.count", 3.0, "exact"))
        report = compare_snapshots(s, s)
        assert report.ok
        assert all(r.status == "ok" for r in report.rows)

    def test_wall_within_band_passes(self):
        base = snap(Metric("a.wall_ms", 100.0, "wall", "ms"))
        cur = snap(Metric("a.wall_ms", 150.0, "wall", "ms"))
        assert compare_snapshots(base, cur).ok

    def test_wall_regression_fails(self):
        base = snap(Metric("a.wall_ms", 100.0, "wall", "ms"))
        cur = snap(Metric("a.wall_ms", 161.0, "wall", "ms"))
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert report.failures[0].name == "a.wall_ms"

    def test_wall_improvement_is_not_failure(self):
        base = snap(Metric("a.wall_ms", 100.0, "wall", "ms"))
        cur = snap(Metric("a.wall_ms", 30.0, "wall", "ms"))
        report = compare_snapshots(base, cur)
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_ratio_drop_fails_but_gain_passes(self):
        base = snap(Metric("speedup", 4.0, "ratio", "x"))
        assert not compare_snapshots(base, snap(Metric("speedup", 2.0, "ratio", "x"))).ok
        report = compare_snapshots(base, snap(Metric("speedup", 8.0, "ratio", "x")))
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_exact_drift_fails_both_directions(self):
        base = snap(Metric("evals", 320.0, "exact"))
        assert not compare_snapshots(base, snap(Metric("evals", 321.0, "exact"))).ok
        assert not compare_snapshots(base, snap(Metric("evals", 319.0, "exact"))).ok
        assert compare_snapshots(base, snap(Metric("evals", 320.0, "exact"))).ok

    def test_exact_with_tol_allows_float_noise(self):
        base = snap(Metric("checksum", 1e6, "exact", tol=1e-9))
        assert compare_snapshots(base, snap(Metric("checksum", 1e6 * (1 + 1e-12), "exact", tol=1e-9))).ok
        assert not compare_snapshots(base, snap(Metric("checksum", 1e6 * 1.01, "exact", tol=1e-9))).ok

    def test_virtual_drift_fails_both_directions(self):
        base = snap(Metric("plan.virtual_ms", 1.0, "virtual", "ms"))
        assert not compare_snapshots(base, snap(Metric("plan.virtual_ms", 1.1, "virtual", "ms"))).ok
        assert not compare_snapshots(base, snap(Metric("plan.virtual_ms", 0.9, "virtual", "ms"))).ok

    def test_vanished_metric_fails_new_metric_passes(self):
        base = snap(Metric("a.wall_ms", 10.0, "wall", "ms"))
        cur = snap(Metric("b.wall_ms", 10.0, "wall", "ms"))
        report = compare_snapshots(base, cur)
        assert not report.ok
        statuses = {r.name: r.status for r in report.rows}
        assert statuses["a.wall_ms"] == "missing"
        assert statuses["b.wall_ms"] == "new"

    def test_schema_mismatch_raises(self):
        good = snap(Metric("a", 1.0, "exact"))
        bad = dict(good, schema=SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema"):
            compare_snapshots(bad, good)
        with pytest.raises(ValueError, match="schema"):
            compare_snapshots(good, bad)

    def test_render_mentions_verdict(self):
        base = snap(Metric("a.wall_ms", 100.0, "wall", "ms"))
        assert "PASS" in compare_snapshots(base, base).render()
        text = compare_snapshots(base, snap(Metric("a.wall_ms", 999.0, "wall", "ms"))).render()
        assert "FAIL" in text and "a.wall_ms" in text


class TestCLIBenchGate:
    def test_update_then_check_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "bench", "--repeats", "1", "--no-serve",
            "--out", str(tmp_path), "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        assert baseline.exists()
        assert main([
            "bench", "--repeats", "1", "--no-serve",
            "--out", str(tmp_path), "--baseline", str(baseline), "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert any(p.name.startswith("BENCH_") for p in tmp_path.iterdir())

    def test_check_without_baseline_errors(self, tmp_path, capsys):
        rc = main([
            "bench", "--repeats", "1", "--no-serve",
            "--out", str(tmp_path),
            "--baseline", str(tmp_path / "nope.json"), "--check",
        ])
        assert rc == 2
        assert "baseline" in capsys.readouterr().err

    def test_check_fails_on_tampered_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([
            "bench", "--repeats", "1", "--no-serve",
            "--out", str(tmp_path), "--baseline", str(baseline),
            "--update-baseline",
        ])
        payload = json.loads(baseline.read_text())
        payload["metrics"]["tune.evaluations"]["value"] += 1  # impossible count
        baseline.write_text(json.dumps(payload))
        rc = main([
            "bench", "--repeats", "1", "--no-serve",
            "--out", str(tmp_path), "--baseline", str(baseline), "--check",
        ])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
