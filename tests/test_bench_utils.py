"""Tests for the benchmark reporting/harness utilities."""

import numpy as np
import pytest

from repro.bench import BenchTable, geomean, normalized_speedups, scaled_device
from repro.gpu.device import V100


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_inf_and_nan(self):
        assert geomean([2.0, float("inf"), float("nan"), 8.0]) == pytest.approx(4.0)

    def test_all_invalid(self):
        assert np.isnan(geomean([float("inf")]))

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)


class TestNormalizedSpeedups:
    def test_reference_is_one(self):
        s = normalized_speedups({"a": 2.0, "b": 1.0}, reference="a")
        assert s["a"] == 1.0
        assert s["b"] == 2.0

    def test_inf_time_becomes_zero(self):
        s = normalized_speedups({"a": 1.0, "oom": float("inf")}, reference="a")
        assert s["oom"] == 0.0

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalized_speedups({"a": 1.0}, reference="z")


class TestBenchTable:
    def test_render_contains_rows(self):
        t = BenchTable("demo", ["name", "value"])
        t.add_row("x", 1.5)
        t.add_row("oom", float("inf"))
        t.add_row("nan", float("nan"))
        out = t.render()
        assert "demo" in out and "x" in out
        assert "OOM" in out
        assert "-" in out

    def test_cell_count_validation(self):
        t = BenchTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_float_formatting(self):
        t = BenchTable("demo", ["v"])
        t.add_row(1234.5)
        t.add_row(0.0001234)
        assert "1.23e+03" in t.render() or "1230" in t.render()


class TestScaledDevice:
    def test_unscaled_dataset(self):
        dev = scaled_device("cora")
        assert dev.spec.dram_bytes == V100.dram_bytes

    def test_scaled_dataset_shrinks_dram(self):
        dev = scaled_device("reddit")
        assert dev.spec.dram_bytes < V100.dram_bytes
