"""Additional CLI coverage (compare subcommand, argument handling)."""

import pytest

from repro.cli import build_parser, main as cli_main
from repro.core import LiteForm, generate_training_data
from repro.core.persistence import save_liteform
from repro.matrices import SuiteSparseLikeCollection, power_law_graph, write_matrix_market


@pytest.fixture(scope="module")
def models_path(tmp_path_factory):
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=99)
    lf = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
    path = tmp_path_factory.mktemp("models") / "m.pkl"
    save_liteform(lf, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_compose_defaults(self):
        args = build_parser().parse_args(["compose", "gnn:cora"])
        assert args.J == 128 and not args.json


class TestCompare:
    def test_compare_prints_all_systems(self, capsys, models_path, tmp_path):
        A = power_law_graph(400, 5, seed=1)
        mtx = tmp_path / "a.mtx"
        write_matrix_market(A, mtx)
        assert cli_main(["compare", str(mtx), "--models", str(models_path), "-J", "32"]) == 0
        out = capsys.readouterr().out
        for name in ("cusparse", "sputnik", "sparsetir", "stile", "liteform"):
            assert name in out
        assert "vs_cusparse" in out


class TestComposeFallback:
    def test_adhoc_training_when_no_models(self, capsys):
        # small --train-size keeps this quick; exercises the training path
        assert cli_main(["compose", "gnn:citeseer", "--train-size", "4", "-J", "32"]) == 0
        assert "use_cell" in capsys.readouterr().out


class TestCompareOOMReference:
    def test_oom_reference_prints_dashes(self, capsys, models_path, tmp_path, monkeypatch):
        """Regression: if the cuSPARSE reference OOMs, the speedup column
        must print '-' instead of inf/garbage ratios."""
        import repro.cli as cli
        from repro.gpu.device import SimulatedOOMError

        real_make = cli.make_baseline

        class OOMSystem:
            name = "cusparse"

            def prepare(self, A, J, device):
                raise SimulatedOOMError(10**12, 16 * 2**30)

        def fake_make(name):
            return OOMSystem() if name == "cusparse" else real_make(name)

        monkeypatch.setattr(cli, "make_baseline", fake_make)
        A = power_law_graph(300, 5, seed=2)
        mtx = tmp_path / "a.mtx"
        write_matrix_market(A, mtx)
        assert cli.main(["compare", str(mtx), "--models", str(models_path), "-J", "32"]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out
        assert "inf" not in out
        # every non-reference row shows '-' in the vs_cusparse column
        for line in out.splitlines():
            if line.startswith(("sputnik", "liteform")):
                assert "-" in line.split()[2] or line.split()[2] == "-"
