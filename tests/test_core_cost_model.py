"""Tests for the Eq. 5-7 cost model and its incremental profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import matrix_cost_profiles, total_cost
from repro.core.cost_model import DEFAULT_ATOMIC_WEIGHT, PartitionCostProfile, bucket_cost
from repro.formats import CELLFormat
from repro.formats.base import as_csr
from repro.matrices import power_law_graph
import scipy.sparse as sp


class TestBucketCost:
    def test_eq7_formula(self):
        # cost = 2*I1*W + U*J + I1*J
        assert bucket_cost(10, 8, 40, 16) == 2 * 10 * 8 + 40 * 16 + 10 * 16

    def test_atomic_weight_applied(self):
        plain = bucket_cost(10, 8, 40, 16, atomic=False)
        atomic = bucket_cost(10, 8, 40, 16, atomic=True, zero_rows=0)
        assert atomic - plain == pytest.approx((DEFAULT_ATOMIC_WEIGHT - 1.0) * 10 * 16)

    def test_zero_rows_only_charged_when_atomic(self):
        assert bucket_cost(10, 8, 40, 16, atomic=False, zero_rows=100) == bucket_cost(
            10, 8, 40, 16
        )
        assert bucket_cost(10, 8, 40, 16, atomic=True, zero_rows=5) == bucket_cost(
            10, 8, 40, 16, atomic=True
        ) + 5 * 16

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bucket_cost(-1, 8, 4, 16)
        with pytest.raises(ValueError):
            bucket_cost(1, 0, 4, 16)


class TestProfileMatchesFormat:
    """The incremental profile must agree bucket-for-bucket with a freshly
    built CELLFormat for every cap width — the core invariant that makes
    Algorithm 3 trustworthy without rebuilding formats."""

    @pytest.mark.parametrize("P", [1, 2, 3])
    def test_bucket_summaries(self, P, matrix_suite):
        for name, A in matrix_suite.items():
            if P > A.shape[1]:
                continue
            profiles = matrix_cost_profiles(A, P)
            for cap in (0, 2, 4, 7):
                fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=1 << cap)
                for part, prof in zip(fmt.partitions, profiles):
                    expected = [
                        (b.width, b.num_rows, b.unique_cols) for b in part.buckets
                    ]
                    assert prof.bucket_summary(cap) == expected, (name, P, cap)

    def test_cap_beyond_natural_is_clamped(self, matrix_suite):
        A = matrix_suite["power_law"]
        prof = matrix_cost_profiles(A, 1)[0]
        huge = prof.natural_max_exp + 5
        assert prof.cost(huge, 32) == prof.cost(prof.natural_max_exp, 32)

    def test_empty_partition(self):
        prof = PartitionCostProfile(
            np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert prof.cost(3, 32) == 0.0
        assert prof.num_nonempty_rows == 0


class TestCostProperties:
    def test_cost_positive_for_nonempty(self, matrix_suite):
        for A in matrix_suite.values():
            prof = matrix_cost_profiles(A, 1)[0]
            if prof.num_nonempty_rows:
                assert prof.cost(2, 32) > 0

    def test_cost_scales_with_J_term(self, matrix_suite):
        A = matrix_suite["community"]
        prof = matrix_cost_profiles(A, 1)[0]
        assert prof.cost(3, 256) > prof.cost(3, 32)

    def test_legacy_eq7_never_exceeds_atomic_variant(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        prof = matrix_cost_profiles(A, 1)[0]
        for e in range(prof.natural_max_exp + 1):
            assert prof.cost(e, 64, legacy_eq7=True) <= prof.cost(e, 64)

    def test_multi_partition_output_term_grows(self, matrix_suite):
        A = matrix_suite["community"]
        prof = matrix_cost_profiles(A, 2)[0]
        e = min(3, prof.natural_max_exp)
        assert prof.cost(e, 64, num_partitions=2) > prof.cost(e, 64, num_partitions=1)

    def test_total_cost_sums_partitions(self, matrix_suite):
        A = matrix_suite["uniform"]
        profiles = matrix_cost_profiles(A, 3)
        exps = [min(2, p.natural_max_exp) for p in profiles]
        assert total_cost(profiles, exps, 32) == pytest.approx(
            sum(p.cost(e, 32) for p, e in zip(profiles, exps))
        )

    def test_total_cost_alignment_check(self, matrix_suite):
        profiles = matrix_cost_profiles(matrix_suite["uniform"], 2)
        with pytest.raises(ValueError):
            total_cost(profiles, [1], 32)


class TestCapBucketStatistics:
    def test_i1_counts_folds(self):
        # one row of 20 nnz: at cap 8 it folds into ceil(20/8) = 3 rows
        A = as_csr(sp.csr_matrix((np.ones(20, np.float32), (np.zeros(20, int), np.arange(20))), shape=(3, 32)))
        prof = matrix_cost_profiles(A, 1)[0]
        assert prof.cap_bucket_rows(3) == 3
        assert prof.cap_bucket_rows(5) == 1  # 2^5 = 32 >= 20: no folding

    def test_i2_distinct_rows(self):
        A = as_csr(
            sp.csr_matrix(
                (np.ones(24, np.float32), (np.repeat([0, 1], 12), np.tile(np.arange(12), 2))),
                shape=(2, 16),
            )
        )
        prof = matrix_cost_profiles(A, 1)[0]
        assert prof.cap_bucket_output_rows(2) == 2

    def test_cap_unique_is_union(self):
        A = as_csr(
            sp.csr_matrix(
                (np.ones(6, np.float32), ([0, 0, 0, 1, 1, 1], [0, 1, 2, 1, 2, 3])),
                shape=(2, 8),
            )
        )
        prof = matrix_cost_profiles(A, 1)[0]
        # both rows have exponent 2; union of cols = {0,1,2,3}
        assert prof.cap_bucket_unique(2) == 4


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), P=st.sampled_from([1, 2, 4]))
def test_profile_format_agreement_property(seed, P):
    A = power_law_graph(200, 6, seed=seed)
    profiles = matrix_cost_profiles(A, P)
    for cap in (1, 3, 5):
        fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=1 << cap)
        for part, prof in zip(fmt.partitions, profiles):
            expected = [(b.width, b.num_rows, b.unique_cols) for b in part.buckets]
            assert prof.bucket_summary(cap) == expected
