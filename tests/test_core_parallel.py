"""Partition-pool compose fan-out: bit-identity, the LPT model, plumbing."""

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.core.parallel import (
    FanoutResult,
    PoolSpec,
    _compact_cells,
    compose_partitions,
    lpt_makespan,
)
from repro.core.pipeline import compose_cell_plan
from repro.formats.cell import split_csr
from repro.matrices import (
    SuiteSparseLikeCollection,
    mixture_matrix,
    power_law_graph,
    uniform_random_matrix,
)


def _assert_identical(fmt_a, fmt_b):
    assert fmt_a.shape == fmt_b.shape
    assert fmt_a.footprint_bytes == fmt_b.footprint_bytes
    assert len(fmt_a.partitions) == len(fmt_b.partitions)
    for pa, pb in zip(fmt_a.partitions, fmt_b.partitions):
        assert (pa.col_start, pa.col_end) == (pb.col_start, pb.col_end)
        assert len(pa.buckets) == len(pb.buckets)
        for ba, bb in zip(pa.buckets, pb.buckets):
            assert ba.width == bb.width
            assert ba.block_rows == bb.block_rows
            assert np.array_equal(ba.row_ind, bb.row_ind)
            assert np.array_equal(ba.col, bb.col)
            assert np.array_equal(ba.val, bb.val)


class TestPoolSpec:
    def test_defaults(self):
        pool = PoolSpec()
        assert pool.workers == 4 and pool.kind == "thread"
        assert pool.parallel

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolSpec(workers=0)
        with pytest.raises(ValueError):
            PoolSpec(kind="fork")

    def test_serial_and_single_worker_are_not_parallel(self):
        assert not PoolSpec(workers=8, kind="serial").parallel
        assert not PoolSpec(workers=1, kind="thread").parallel


class TestBitIdentity:
    @pytest.mark.parametrize("P", [1, 2, 4])
    def test_thread_pool_matches_serial(self, P):
        A = mixture_matrix(600, avg_degree=10.0, seed=4)
        serial = compose_partitions(A, P, 128)
        pooled = compose_partitions(A, P, 128, pool=PoolSpec(workers=4))
        assert serial.widths == pooled.widths
        assert serial.predicted_cost == pooled.predicted_cost
        _assert_identical(serial.to_format(), pooled.to_format())

    def test_process_pool_matches_serial(self):
        A = power_law_graph(500, 8, seed=9)
        serial = compose_partitions(A, 4, 64)
        pooled = compose_partitions(
            A, 4, 64, pool=PoolSpec(workers=2, kind="process")
        )
        assert serial.widths == pooled.widths
        assert serial.predicted_cost == pooled.predicted_cost
        _assert_identical(serial.to_format(), pooled.to_format())

    def test_matches_compose_cell_plan(self):
        A = uniform_random_matrix(400, 300, 0.03, seed=2)
        plan = compose_cell_plan(A, 2, 128)
        fan = compose_partitions(A, 2, 128, pool=PoolSpec(workers=4))
        assert plan.max_widths == fan.widths
        assert plan.predicted_cost == fan.predicted_cost
        _assert_identical(plan.fmt, fan.to_format())

    def test_only_subset_matches_full(self):
        A = uniform_random_matrix(300, 256, 0.04, seed=6)
        full = compose_partitions(A, 4, 128)
        subset = compose_partitions(A, 4, 128, only=[1, 3])
        assert [o.index for o in subset.outcomes] == [1, 3]
        for o in subset.outcomes:
            ref = full.outcomes[o.index]
            assert o.width == ref.width
            assert np.array_equal(
                o.partition.buckets[0].col, ref.partition.buckets[0].col
            )


class TestValidationAndCompaction:
    def test_bad_only_index_raises(self):
        A = uniform_random_matrix(100, 80, 0.05, seed=1)
        with pytest.raises(ValueError):
            compose_partitions(A, 2, 32, only=[2])
        with pytest.raises(ValueError):
            compose_partitions(A, 2, 32, only=[-1])

    def test_mismatched_cells_raises(self):
        A = uniform_random_matrix(100, 80, 0.05, seed=1)
        cells = split_csr(A, 2)
        with pytest.raises(ValueError):
            compose_partitions(A, 4, 32, cells=cells)

    def test_compact_cells_preserves_rows(self):
        A = uniform_random_matrix(60, 50, 0.1, seed=3)
        _, _, counts, starts = split_csr(A, 2)
        lengths, st = counts[:, 1], starts[:, 1]
        idx, dat, new_starts = _compact_cells(lengths, st, A.indices, A.data)
        assert idx.size == dat.size == int(lengths.sum())
        for r in range(A.shape[0]):
            lo, n = int(new_starts[r]), int(lengths[r])
            np.testing.assert_array_equal(
                idx[lo:lo + n], A.indices[int(st[r]):int(st[r]) + n]
            )
            np.testing.assert_array_equal(
                dat[lo:lo + n], A.data[int(st[r]):int(st[r]) + n]
            )

    def test_compact_cells_empty_partition(self):
        lengths = np.zeros(4, dtype=np.int64)
        starts = np.zeros(4, dtype=np.int64)
        idx, dat, new_starts = _compact_cells(
            lengths, starts, np.arange(5, dtype=np.int32),
            np.ones(5, dtype=np.float32),
        )
        assert idx.size == 0 and dat.size == 0
        np.testing.assert_array_equal(new_starts, np.zeros(4, dtype=np.int64))


class TestLPTModel:
    def test_makespan_single_worker_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_makespan_balanced(self):
        # 4 equal tasks on 2 workers -> two per worker.
        assert lpt_makespan([1.0] * 4, 2) == pytest.approx(2.0)

    def test_makespan_dominant_task_is_critical_path(self):
        assert lpt_makespan([10.0, 1.0, 1.0], 4) == pytest.approx(10.0)

    def test_makespan_validation(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    def test_modeled_speedup_bounds(self):
        A = mixture_matrix(500, avg_degree=8.0, seed=5)
        fan = compose_partitions(A, 4, 128)
        s = fan.modeled_speedup(4)
        assert 1.0 <= s <= 4.0
        assert fan.modeled_speedup(1) == pytest.approx(1.0)

    def test_modeled_speedup_zero_walls(self):
        fan = FanoutResult(A=None, bounds=[], counts=np.zeros((0, 0)), outcomes=[])
        assert fan.modeled_speedup(4) == 1.0


class TestLiteFormPool:
    @pytest.fixture(scope="class")
    def trained(self):
        coll = SuiteSparseLikeCollection(size=5, max_rows=2500, seed=11)
        return generate_training_data(coll, J_values=(32,))

    def test_liteform_with_pool_is_identical(self, trained):
        serial_lf = LiteForm().fit(trained)
        pooled_lf = LiteForm(pool=PoolSpec(workers=4)).fit(trained)
        A = mixture_matrix(800, avg_degree=12.0, seed=8)
        p1 = serial_lf.compose_csr(A, 32, force_cell=True)
        p2 = pooled_lf.compose_csr(A, 32, force_cell=True)
        assert p1.use_cell and p2.use_cell
        assert p1.max_widths == p2.max_widths
        assert p1.predicted_cost == p2.predicted_cost
        _assert_identical(p1.fmt, p2.fmt)
