"""Incremental recompose (``ComposePlan.patch_rows``) delta-replay suite.

The contract under test: after any row update, the patched plan is
*bit-identical* to a from-scratch ``compose_cell_plan`` of the updated
matrix — same buckets, same tuned widths, same predicted cost, same
footprint — while rebuilding only the partitions the changed rows store
elements in (before or after the update).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LiteForm, generate_training_data
from repro.core.parallel import PoolSpec
from repro.core.pipeline import compose_cell_plan
from repro.formats.cell import touched_partitions
from repro.matrices import (
    SuiteSparseLikeCollection,
    banded_matrix,
    mixture_matrix,
    random_row_update,
    replace_rows,
    uniform_random_matrix,
)


def assert_plans_identical(patched, full):
    assert patched.use_cell and full.use_cell
    assert patched.max_widths == full.max_widths
    assert patched.num_partitions == full.num_partitions
    assert np.isclose(patched.predicted_cost, full.predicted_cost, rtol=1e-12)
    fa, fb = patched.fmt, full.fmt
    assert fa.shape == fb.shape
    assert fa.footprint_bytes == fb.footprint_bytes
    for pa, pb in zip(fa.partitions, fb.partitions):
        assert len(pa.buckets) == len(pb.buckets)
        for ba, bb in zip(pa.buckets, pb.buckets):
            assert ba.width == bb.width
            assert ba.block_rows == bb.block_rows
            assert np.array_equal(ba.row_ind, bb.row_ind)
            assert np.array_equal(ba.col, bb.col)
            assert np.array_equal(ba.val, bb.val)


class TestDeterministicEdges:
    def _base(self, seed=5):
        return uniform_random_matrix(300, 256, 0.03, seed=seed)

    def test_row_emptying_update(self):
        A = self._base()
        plan = compose_cell_plan(A, 4, 128)
        rows = np.array([0, 7])
        empty = [np.array([], dtype=np.int64)] * 2
        B = replace_rows(A, rows, empty, [np.array([], dtype=np.float32)] * 2)
        patched = plan.patch_rows(B, rows)
        assert_plans_identical(patched, compose_cell_plan(B, 4, 128))

    def test_fold_bucket_changing_growth(self):
        # Grow one row to the full column count: it must spill into the
        # folded max-width bucket, changing that partition's bucket set.
        A = self._base()
        plan = compose_cell_plan(A, 2, 128)
        rng = np.random.default_rng(0)
        cols = np.arange(A.shape[1], dtype=np.int64)
        vals = rng.standard_normal(cols.size).astype(np.float32)
        vals[vals == 0] = 1.0
        B = replace_rows(A, np.array([5]), [cols], [vals])
        patched = plan.patch_rows(B, [5])
        assert patched.incremental.patched == (0, 1)
        assert_plans_identical(patched, compose_cell_plan(B, 2, 128))

    def test_value_only_change_rebuilds_touched_partition(self):
        A = self._base()
        plan = compose_cell_plan(A, 4, 128)
        row = 3
        lo, hi = A.indptr[row], A.indptr[row + 1]
        cols = A.indices[lo:hi].astype(np.int64)
        vals = (A.data[lo:hi] * 2.0).astype(np.float32)
        B = replace_rows(A, np.array([row]), [cols], [vals])
        patched = plan.patch_rows(B, [row])
        assert patched.incremental.patched  # the row's partitions re-ran
        assert_plans_identical(patched, compose_cell_plan(B, 4, 128))

    def test_noop_patch_rebuilds_nothing(self):
        A = self._base()
        plan = compose_cell_plan(A, 4, 128)
        patched = plan.patch_rows(A, np.array([], dtype=np.int64))
        assert patched.incremental.patched == ()
        assert_plans_identical(patched, compose_cell_plan(A, 4, 128))

    def test_locality_skips_unrelated_partitions(self):
        A = banded_matrix(600, 10, fill=0.8, seed=3)
        plan = compose_cell_plan(A, 8, 128)
        rows, B = random_row_update(
            A, np.random.default_rng(1), num_rows=2, band=10
        )
        patched = plan.patch_rows(B, rows)
        assert 0 < len(patched.incremental.patched) < 8
        assert_plans_identical(patched, compose_cell_plan(B, 8, 128))

    def test_patch_with_pool_is_identical(self):
        A = self._base()
        plan = compose_cell_plan(A, 4, 128)
        rows, B = random_row_update(A, np.random.default_rng(2), num_rows=4)
        serial = plan.patch_rows(B, rows)
        pooled = plan.patch_rows(B, rows, pool=PoolSpec(workers=4))
        assert_plans_identical(serial, pooled)

    def test_non_cell_plan_raises(self):
        coll = SuiteSparseLikeCollection(size=4, max_rows=2500, seed=13)
        lf = LiteForm().fit(generate_training_data(coll, J_values=(32,)))
        A = banded_matrix(300, 2, seed=1)  # CSR-favourable
        plan = lf.compose_csr(A, 32)
        if plan.use_cell:
            pytest.skip("selector unexpectedly chose CELL")
        with pytest.raises(ValueError, match="CELL plan"):
            plan.patch_rows(A, [0])

    def test_shape_change_raises(self):
        A = self._base()
        plan = compose_cell_plan(A, 2, 128)
        B = uniform_random_matrix(301, 256, 0.03, seed=9)
        with pytest.raises(ValueError, match="shape"):
            plan.patch_rows(B, [0])

    def test_out_of_range_row_raises(self):
        A = self._base()
        plan = compose_cell_plan(A, 2, 128)
        with pytest.raises(ValueError, match="out of range"):
            plan.patch_rows(A, [A.shape[0]])


class TestTouchedPartitions:
    def test_union_of_old_and_new(self):
        old = np.zeros((4, 3), dtype=np.int32)
        new = np.zeros((4, 3), dtype=np.int32)
        old[1, 0] = 2  # row 1 had elements in partition 0
        new[1, 2] = 1  # ... and now has them in partition 2
        touched = touched_partitions(old, new, np.array([1]))
        np.testing.assert_array_equal(touched, [0, 2])

    def test_unchanged_rows_do_not_touch(self):
        old = np.ones((4, 3), dtype=np.int32)
        new = np.ones((4, 3), dtype=np.int32)
        assert touched_partitions(old, new, np.array([], dtype=np.int64)).size == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            touched_partitions(
                np.zeros((4, 3), dtype=np.int32),
                np.zeros((4, 2), dtype=np.int32),
                np.array([0]),
            )


@st.composite
def _update_stream(draw):
    seed = draw(st.integers(0, 2**16))
    P = draw(st.sampled_from([1, 2, 4, 8]))
    steps = draw(st.integers(1, 3))
    return seed, P, steps


class TestHypothesisDeltaReplay:
    @settings(max_examples=15, deadline=None)
    @given(_update_stream())
    def test_patch_stream_stays_bit_identical(self, stream):
        seed, P, steps = stream
        rng = np.random.default_rng(seed)
        A = mixture_matrix(240, avg_degree=8.0, seed=seed % 97)
        plan = compose_cell_plan(A, P, 128)
        for _ in range(steps):
            rows, A = random_row_update(
                A, rng, num_rows=3, empty_fraction=0.3, grow_fraction=0.3
            )
            plan = plan.patch_rows(A, rows)
            full = compose_cell_plan(A, P, 128)
            assert_plans_identical(plan, full)
            # The incremental state itself must round-trip: the full
            # plan's counts/widths match what the patch carried forward.
            np.testing.assert_array_equal(
                plan.incremental.counts, full.incremental.counts
            )
            assert plan.incremental.widths == full.incremental.widths
