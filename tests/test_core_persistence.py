"""Persistence round trips and corrupt-input rejection for model bundles."""

import pickle

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.core.persistence import MAGIC, load_liteform, save_liteform
from repro.matrices import SuiteSparseLikeCollection, power_law_graph


@pytest.fixture(scope="module")
def fitted():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=123)
    return LiteForm(block_multiple=4, bcsr_occupancy_threshold=0.4).fit(
        generate_training_data(coll, J_values=(32,))
    )


class TestRoundTrip:
    def test_round_trip_preserves_plans_and_config(self, tmp_path, fitted):
        path = tmp_path / "models.pkl"
        save_liteform(fitted, path)
        loaded = load_liteform(path)
        assert loaded._fitted
        assert loaded.block_multiple == 4
        assert loaded.bcsr_occupancy_threshold == 0.4
        for seed in (1, 2):
            A = power_law_graph(600, 7, seed=seed)
            a = fitted.compose(A, 32)
            b = loaded.compose(A, 32)
            assert a.use_cell == b.use_cell
            assert a.num_partitions == b.num_partitions
            assert a.max_widths == b.max_widths

    def test_loaded_models_execute(self, tmp_path, fitted):
        path = tmp_path / "models.pkl"
        save_liteform(fitted, path)
        loaded = load_liteform(path)
        A = power_law_graph(400, 6, seed=3)
        B = np.random.default_rng(0).standard_normal((A.shape[1], 32)).astype(np.float32)
        plan = loaded.compose(A, 32)
        C, m = loaded.run(plan, B)
        assert C.shape == (A.shape[0], 32) and m.time_s > 0

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_liteform(LiteForm(), tmp_path / "x.pkl")


class TestCorruptInputs:
    def test_non_bundle_pickle_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as fh:
            pickle.dump({"surprise": 42}, fh)
        with pytest.raises(ValueError, match="not a saved LiteForm model bundle"):
            load_liteform(path)

    def test_non_dict_pickle_rejected(self, tmp_path):
        path = tmp_path / "list.pkl"
        with path.open("wb") as fh:
            pickle.dump(["nothing", "useful"], fh)
        with pytest.raises(ValueError, match="not a saved LiteForm model bundle"):
            load_liteform(path)

    def test_wrong_magic_names_both_tags(self, tmp_path, fitted):
        path = tmp_path / "old.pkl"
        save_liteform(fitted, path)
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        payload["magic"] = "repro-liteform-v0"
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(ValueError) as exc:
            load_liteform(path)
        message = str(exc.value)
        assert "repro-liteform-v0" in message  # what was found
        assert MAGIC in message  # what was expected

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_liteform(tmp_path / "nope.pkl")
