"""End-to-end tests for the LiteForm pipeline and its predictors."""

import numpy as np
import pytest

from repro.core import (
    LiteForm,
    FormatSelector,
    PartitionPredictor,
    generate_training_data,
)
from repro.core.partition_model import PARTITION_CANDIDATES
from repro.kernels import spmm_reference
from repro.matrices import (
    SuiteSparseLikeCollection,
    block_diagonal_matrix,
    format_selection_features,
    partition_features,
    power_law_graph,
)


@pytest.fixture(scope="module")
def trained():
    coll = SuiteSparseLikeCollection(size=14, max_rows=5000, seed=11)
    data = generate_training_data(coll, J_values=(32, 128))
    return LiteForm().fit(data), data


class TestFormatSelector:
    def test_learns_training_labels(self, trained):
        lf, data = trained
        preds = lf.selector.predict_features(data.format_X)
        # Random forest memorizes most of its own training set
        assert (preds == data.format_y).mean() > 0.8

    def test_constant_labels_handled(self):
        sel = FormatSelector()
        X = np.random.default_rng(0).normal(size=(5, 7))
        sel.fit(X, np.ones(5, dtype=bool))
        assert sel.predict_features(X).all()

    def test_inference_is_timed(self, trained):
        lf, _ = trained
        lf.selector.predict(power_law_graph(200, 5, seed=0))
        assert lf.selector.last_inference_s > 0


class TestPartitionPredictor:
    def test_prediction_in_candidates(self, trained):
        lf, _ = trained
        p = lf.partition_model.predict(power_law_graph(300, 6, seed=1), J=64)
        assert p in PARTITION_CANDIDATES

    def test_rejects_foreign_labels(self):
        pm = PartitionPredictor()
        X = np.random.default_rng(0).normal(size=(4, 8))
        with pytest.raises(ValueError):
            pm.fit(X, np.array([1, 3, 1, 3]))

    def test_clamped_to_columns(self):
        pm = PartitionPredictor()
        X = np.random.default_rng(0).normal(size=(4, 8))
        pm.fit(X, np.array([32, 32, 1, 32]))
        import scipy.sparse as sp
        from repro.formats.base import as_csr

        narrow = as_csr(sp.random(50, 4, density=0.5, random_state=0, dtype=np.float32))
        assert pm.predict(narrow, J=32) <= 4


class TestLiteFormPipeline:
    def test_compose_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LiteForm().compose(power_law_graph(100, 4, seed=0), 32)

    def test_force_cell_without_fit(self):
        lf = LiteForm()
        plan = lf.compose(power_law_graph(100, 4, seed=0), 32, force_cell=True)
        assert plan.use_cell
        assert plan.num_partitions == 1

    def test_force_cell_resets_stale_inference_time(self, trained):
        """Regression: ``force_cell`` skips the selector, so the previous
        compose's ``last_inference_s`` must not leak into this plan's
        overhead attribution (Figures 8-9 read it per compose)."""
        lf, _ = trained
        lf.compose(power_law_graph(300, 6, seed=4), 32)  # runs the selector
        assert lf.selector.last_inference_s > 0
        lf.compose(power_law_graph(200, 5, seed=7), 32, force_cell=True)
        assert lf.selector.last_inference_s == 0.0

    def test_plan_fields(self, trained):
        lf, _ = trained
        A = power_law_graph(500, 8, seed=2)
        plan = lf.compose(A, 64)
        assert plan.overhead.total_s > 0
        if plan.use_cell:
            assert len(plan.max_widths) == plan.num_partitions
            assert plan.predicted_cost and plan.predicted_cost > 0

    def test_run_correctness(self, trained, dense_operand):
        lf, _ = trained
        A = power_law_graph(400, 7, seed=3)
        plan = lf.compose(A, 16)
        B = dense_operand(A.shape[1], 16)
        C, m = lf.run(plan, B)
        np.testing.assert_allclose(C, spmm_reference(A, B), rtol=1e-4, atol=1e-4)
        assert m.time_s > 0

    def test_fixed_fallback_correctness(self, trained, dense_operand):
        lf, _ = trained
        A = block_diagonal_matrix(256, 8, 1.0, seed=5)
        plan = lf.compose(A, 16, force_cell=False)
        assert not plan.use_cell
        B = dense_operand(A.shape[1], 16)
        C, _ = lf.run(plan, B)
        np.testing.assert_allclose(C, spmm_reference(A, B), rtol=1e-4, atol=1e-4)

    def test_fixed_fallback_picks_bcsr_for_dense_blocks(self, trained):
        lf, _ = trained
        A = block_diagonal_matrix(256, 8, 1.0, seed=5)
        plan = lf.compose(A, 16, force_cell=False)
        from repro.formats import BCSRFormat

        assert isinstance(plan.fmt, BCSRFormat)

    def test_fixed_fallback_picks_csr_for_scattered(self, trained):
        lf, _ = trained
        A = power_law_graph(500, 4, seed=6)
        plan = lf.compose(A, 16, force_cell=False)
        from repro.formats import CSRFormat

        assert isinstance(plan.fmt, CSRFormat)

    def test_invalid_J(self, trained):
        lf, _ = trained
        with pytest.raises(ValueError):
            lf.compose(power_law_graph(100, 4, seed=0), 0)

    def test_overhead_breakdown_sums(self, trained):
        lf, _ = trained
        plan = lf.compose(power_law_graph(300, 6, seed=7), 32)
        o = plan.overhead
        assert o.total_s == pytest.approx(
            o.selection_s + o.partition_s + o.search_s + o.build_s
        )

    def test_compose_is_fast(self, trained):
        """The headline property: composition takes milliseconds, no kernel
        trials (Figures 8-9)."""
        lf, _ = trained
        A = power_law_graph(5000, 10, seed=8)
        plan = lf.compose(A, 128)
        assert plan.overhead.total_s < 2.0


class TestFeatureExtractors:
    def test_table2_features(self, matrix_suite):
        A = matrix_suite["power_law"]
        f = format_selection_features(A)
        lengths = np.diff(A.indptr)
        assert f.shape == (7,)
        assert f[0] == A.shape[0] and f[1] == A.shape[1] and f[2] == A.nnz
        assert f[3] == pytest.approx(lengths.mean())
        assert f[5] == lengths.max()

    def test_table3_features(self, matrix_suite):
        A = matrix_suite["community"]
        f = partition_features(A, J=128)
        assert f.shape == (8,)
        assert f[7] == A.shape[1] * 128
        # densities, not raw counts
        assert f[3] == pytest.approx(np.diff(A.indptr).mean() / A.shape[1])

    def test_invalid_J(self, matrix_suite):
        with pytest.raises(ValueError):
            partition_features(matrix_suite["tiny"], J=0)


class TestComposePlanDefaults:
    def test_default_overheads_do_not_alias(self):
        """Regression: the overhead default must be a fresh instance per
        plan, not one shared OverheadBreakdown object."""
        from repro.core.pipeline import ComposePlan
        from repro.formats import CSRFormat
        from repro.kernels import RowSplitCSRSpMM

        A = power_law_graph(50, 3, seed=1)
        a = ComposePlan(use_cell=False, fmt=CSRFormat.from_csr(A),
                        kernel=RowSplitCSRSpMM(), num_partitions=1)
        b = ComposePlan(use_cell=False, fmt=CSRFormat.from_csr(A),
                        kernel=RowSplitCSRSpMM(), num_partitions=1)
        assert a.overhead is not b.overhead
        assert a.max_widths is not b.max_widths
        assert a.overhead.total_s == 0.0

    def test_compose_csr_skips_revalidation_but_matches_compose(self, trained):
        lf, _ = trained
        A = power_law_graph(500, 8, seed=21)
        via_compose = lf.compose(A, 32)
        via_csr = lf.compose_csr(A, 32)
        assert via_compose.use_cell == via_csr.use_cell
        assert via_compose.num_partitions == via_csr.num_partitions
        assert via_compose.max_widths == via_csr.max_widths

    def test_compose_csr_validates_J(self, trained):
        lf, _ = trained
        with pytest.raises(ValueError):
            lf.compose_csr(power_law_graph(50, 3, seed=1), 0)
