"""Tests for Algorithm 3 and training-data generation."""

import numpy as np
import pytest

from repro.core import (
    build_buckets,
    exhaustive_width_search,
    generate_training_data,
    matrix_cost_profiles,
)
from repro.core.partition_model import PARTITION_CANDIDATES
from repro.core.training import compose_cell_for_partitions
from repro.matrices import (
    SuiteSparseLikeCollection,
    mixture_matrix,
    power_law_graph,
    uniform_random_matrix,
)


class TestBucketSearch:
    def test_matches_exhaustive_on_many_matrices(self, matrix_suite):
        for name, A in matrix_suite.items():
            prof = matrix_cost_profiles(A, 1)[0]
            if not prof.num_nonempty_rows:
                continue
            for J in (32, 256):
                alg3 = build_buckets(prof, J)
                best = exhaustive_width_search(prof, J)
                # Algorithm 3 assumes unimodality; allow a tiny slack but the
                # chosen cost must essentially match the optimum.
                assert alg3.cost <= best.cost * 1.05, (name, J)

    def test_logarithmic_evaluations(self):
        A = power_law_graph(2000, 10, seed=3)
        prof = matrix_cost_profiles(A, 1)[0]
        alg3 = build_buckets(prof, 64)
        full = exhaustive_width_search(prof, 64)
        assert alg3.evaluations <= 2 * (prof.natural_max_exp.bit_length() + 1) + 1
        assert alg3.evaluations <= full.evaluations + 2

    def test_result_width_property(self):
        A = mixture_matrix(1000, seed=2)
        prof = matrix_cost_profiles(A, 1)[0]
        r = build_buckets(prof, 128)
        assert r.max_width == 1 << r.max_exp
        assert 0 <= r.max_exp <= prof.natural_max_exp

    def test_invalid_J(self):
        A = power_law_graph(100, 4, seed=0)
        prof = matrix_cost_profiles(A, 1)[0]
        with pytest.raises(ValueError):
            build_buckets(prof, 0)
        with pytest.raises(ValueError):
            exhaustive_width_search(prof, -1)

    def test_uniform_matrix_prefers_natural_width(self):
        """With no skew, capping below the natural width only adds folds."""
        A = uniform_random_matrix(500, 500, 0.01, seed=1)
        prof = matrix_cost_profiles(A, 1)[0]
        r = build_buckets(prof, 64)
        assert r.max_exp >= prof.natural_max_exp - 1


class TestComposeCell:
    def test_widths_respect_partitions(self):
        A = mixture_matrix(800, seed=4)
        fmt = compose_cell_for_partitions(A, 4, J=64)
        assert fmt.num_partitions == 4
        diff = fmt.to_csr() - A
        assert diff.nnz == 0 or abs(diff).max() < 1e-5

    def test_per_partition_widths_can_differ(self):
        # heavy columns on the left half only -> partition caps should differ
        import scipy.sparse as sp
        from repro.formats.base import as_csr

        rng = np.random.default_rng(0)
        left = sp.random(400, 200, density=0.2, random_state=1)
        right = sp.random(400, 200, density=0.002, random_state=2)
        A = as_csr(sp.hstack([left, right]).tocsr().astype(np.float32))
        fmt = compose_cell_for_partitions(A, 2, J=64)
        assert fmt.max_widths[0] != fmt.max_widths[1]


class TestTrainingData:
    @pytest.fixture(scope="class")
    def data(self):
        coll = SuiteSparseLikeCollection(size=10, max_rows=4000, seed=7)
        return generate_training_data(coll, J_values=(32, 128))

    def test_sample_counts(self, data):
        assert len(data.format_samples) == 10
        assert len(data.partition_samples) == 20  # 10 matrices x 2 widths

    def test_feature_shapes(self, data):
        assert data.format_X.shape == (10, 7)
        assert data.partition_X.shape == (20, 8)

    def test_labels_well_formed(self, data):
        assert data.format_y.dtype == np.bool_
        assert set(np.unique(data.partition_y)) <= set(PARTITION_CANDIDATES)

    def test_label_rule_consistency(self, data):
        for s in data.format_samples:
            assert s.label == (s.fixed_time_s / s.cell_time_s > 1.1)

    def test_best_partition_is_argmin(self, data):
        for s in data.partition_samples:
            best = min(s.times_by_partition, key=s.times_by_partition.get)
            assert s.best_partitions == best

    def test_accepts_tuples(self):
        A = power_law_graph(300, 5, seed=1)
        data = generate_training_data([("m0", A)], J_values=(32,))
        assert data.format_samples[0].name == "m0"

    def test_merged_with(self, data):
        merged = data.merged_with(data)
        assert len(merged.format_samples) == 2 * len(data.format_samples)
