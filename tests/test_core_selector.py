"""FormatSelector fit-state contract (regression: predict before fit).

Calling ``predict`` on an unfitted selector used to surface as an
``AttributeError`` from deep inside the Random Forest; it now raises a
descriptive ``RuntimeError`` at the API boundary.
"""

import numpy as np
import pytest

from repro.core.selector import FormatSelector
from repro.matrices import power_law_graph


@pytest.fixture()
def matrix():
    return power_law_graph(300, 6, seed=1)


def test_predict_before_fit_raises_runtime_error(matrix):
    selector = FormatSelector()
    assert not selector.is_fitted
    with pytest.raises(RuntimeError, match="has not been fitted"):
        selector.predict(matrix)


def test_predict_features_before_fit_raises_runtime_error():
    with pytest.raises(RuntimeError, match="call fit"):
        FormatSelector().predict_features(np.zeros((2, 7)))


def test_fit_then_predict_works(matrix):
    rng = np.random.default_rng(0)
    X = rng.standard_normal((40, 7))
    y = X[:, 0] > 0
    selector = FormatSelector().fit(X, y)
    assert selector.is_fitted
    assert isinstance(selector.predict(matrix), bool)
    assert selector.predict_features(X).shape == (40,)


def test_degenerate_single_class_fit_is_fitted(matrix):
    selector = FormatSelector().fit(np.zeros((3, 7)), np.ones(3, dtype=bool))
    assert selector.is_fitted
    assert selector.predict(matrix) is True
    assert selector.predict_features(np.zeros((5, 7))).all()


def test_legacy_pickle_without_fitted_flag_still_predicts(matrix):
    """Selectors pickled before ``_fitted`` existed only ever saved
    post-``fit`` state; ``is_fitted`` must infer that from ``_constant``."""
    selector = FormatSelector().fit(np.zeros((3, 7)), np.zeros(3, dtype=bool))
    del selector.__dict__["_fitted"]
    assert selector.is_fitted
    assert selector.predict(matrix) is False
