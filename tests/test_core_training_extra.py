"""Additional training/label coverage: OOM handling, label stability."""

import numpy as np
import pytest

from repro.core import generate_training_data
from repro.core.selector import CELL_ADVANTAGE_THRESHOLD
from repro.gpu import SimulatedDevice
from repro.gpu.device import V100
from repro.matrices import block_diagonal_matrix, power_law_graph, with_dense_rows


class TestLabelSemantics:
    def test_threshold_constant(self):
        assert CELL_ADVANTAGE_THRESHOLD == pytest.approx(1.1)

    def test_block_diagonal_labelled_false(self):
        """A perfectly blockwise matrix is the fixed-format home turf: the
        8x8-dense BCSR representation should beat CELL's bucketing, so the
        selection label must be FALSE."""
        A = block_diagonal_matrix(4096, block_size=8, block_density=1.0, seed=1)
        data = generate_training_data([("bd", A)], J_values=(32, 128))
        assert not data.format_samples[0].label

    def test_skewed_graph_labelled_true(self):
        """Hub-heavy graphs are CELL's home turf (Section 2.1 pathology)."""
        A = with_dense_rows(power_law_graph(6000, 8, seed=2), 3, 0.3, seed=3)
        data = generate_training_data([("pl", A)], J_values=(32, 128))
        assert data.format_samples[0].label

    def test_bcsr_oom_counts_as_infinite_fixed_time(self):
        """When BCSR conversion blows past device memory, the fixed-format
        side falls back to CSR's time rather than crashing."""
        A = power_law_graph(3000, 6, seed=4)
        tiny = SimulatedDevice(spec=V100.with_overrides(dram_bytes=2 * 10**6))
        # must not raise; BCSR measurement OOMs internally
        data = generate_training_data([("m", A)], device=tiny, J_values=(32,))
        assert len(data.format_samples) == 1

    def test_skips_empty_matrices(self):
        import scipy.sparse as sp

        from repro.formats.base import as_csr

        empty = as_csr(sp.csr_matrix((10, 10), dtype=np.float32))
        data = generate_training_data([("e", empty)], J_values=(32,))
        assert len(data.format_samples) == 0

    def test_partition_candidates_clamped_to_columns(self):
        import scipy.sparse as sp

        from repro.formats.base import as_csr

        narrow = as_csr(sp.random(3000, 8, density=0.2, random_state=0, dtype=np.float32))
        data = generate_training_data([("n", narrow)], J_values=(32,))
        assert max(data.partition_samples[0].times_by_partition) <= 8

    def test_times_positive_and_finite_for_normal_inputs(self):
        A = power_law_graph(1500, 8, seed=5)
        data = generate_training_data([("m", A)], J_values=(32, 128))
        for s in data.partition_samples:
            finite = [t for t in s.times_by_partition.values() if np.isfinite(t)]
            assert finite and all(t > 0 for t in finite)
        fs = data.format_samples[0]
        assert fs.cell_time_s > 0 and fs.fixed_time_s > 0
