"""Guardrails keeping documentation and examples in sync with the code."""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestExamples:
    """Examples must at least parse and follow the runnable-script shape."""

    EXAMPLES = sorted((REPO / "examples").glob("*.py"))

    def test_at_least_five_examples(self):
        assert len(self.EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=[p.name for p in EXAMPLES])
    def test_example_parses(self, path):
        tree = ast.parse(path.read_text())
        # every example is a script with a main() and a __main__ guard
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, path.name
        assert "__main__" in path.read_text(), path.name

    @pytest.mark.parametrize("path", EXAMPLES, ids=[p.name for p in EXAMPLES])
    def test_example_has_docstring(self, path):
        doc = ast.get_docstring(ast.parse(path.read_text()))
        assert doc and len(doc) > 40, path.name


class TestModuleInventory:
    """Every module DESIGN.md's inventory references must import."""

    MODULES = [
        "repro",
        "repro.gpu.device",
        "repro.gpu.memory",
        "repro.gpu.executor",
        "repro.gpu.timing",
        "repro.gpu.stats",
        "repro.gpu.profiler",
        "repro.gpu.multi",
        "repro.gpu.microsim",
        "repro.formats.base",
        "repro.formats.coo",
        "repro.formats.csr",
        "repro.formats.ell",
        "repro.formats.sliced_ell",
        "repro.formats.bcsr",
        "repro.formats.blocked_ell",
        "repro.formats.cell",
        "repro.kernels.base",
        "repro.kernels.csr_spmm",
        "repro.kernels.ell_spmm",
        "repro.kernels.bcsr_spmm",
        "repro.kernels.cell_spmm",
        "repro.kernels.taco_spmm",
        "repro.kernels.spmv",
        "repro.kernels.sddmm",
        "repro.matrices.generators",
        "repro.matrices.gnn",
        "repro.matrices.collection",
        "repro.matrices.features",
        "repro.matrices.io",
        "repro.ml.base",
        "repro.ml.metrics",
        "repro.ml.preprocessing",
        "repro.ml.model_selection",
        "repro.ml.tree",
        "repro.ml.forest",
        "repro.ml.knn",
        "repro.ml.svm",
        "repro.ml.naive_bayes",
        "repro.ml.qda",
        "repro.ml.neural_net",
        "repro.ml.adaboost",
        "repro.ml.gaussian_process",
        "repro.ml.zoo",
        "repro.core.cost_model",
        "repro.core.bucket_search",
        "repro.core.selector",
        "repro.core.partition_model",
        "repro.core.training",
        "repro.core.pipeline",
        "repro.core.persistence",
        "repro.core.transfer",
        "repro.baselines.base",
        "repro.baselines.fixed",
        "repro.baselines.taco",
        "repro.baselines.sparsetir",
        "repro.baselines.stile",
        "repro.baselines.liteform",
        "repro.baselines.registry",
        "repro.baselines.taxonomy",
        "repro.baselines.autoselect",
        "repro.obs",
        "repro.obs.trace",
        "repro.obs.registry",
        "repro.obs.merge",
        "repro.obs.slo",
        "repro.obs.attribution",
        "repro.serve.fingerprint",
        "repro.serve.plan_cache",
        "repro.serve.metrics",
        "repro.serve.server",
        "repro.serve.scheduler",
        "repro.serve.workload",
        "repro.serve.cluster",
        "repro.serve.cluster.ring",
        "repro.serve.cluster.hotkeys",
        "repro.serve.cluster.metrics",
        "repro.serve.cluster.frontend",
        "repro.kernels.registry",
        "repro.bench.harness",
        "repro.bench.reporting",
        "repro.bench.ascii_plot",
        "repro.tuning.search",
        "repro.cli",
    ]

    @pytest.mark.parametrize("module", MODULES)
    def test_module_imports(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", MODULES)
    def test_module_has_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).exists(), name
        for name in ("API.md", "SIMULATOR.md", "REPRODUCING.md"):
            assert (REPO / "docs" / name).exists(), name

    def test_design_lists_every_figure_and_table(self):
        text = (REPO / "DESIGN.md").read_text()
        for item in ("Table 1", "Table 4", "Table 5", "Table 6",
                     "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"):
            assert item in text, item

    def test_every_bench_target_in_design_exists(self):
        text = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(test_\w+\.py)", text):
            assert (REPO / "benchmarks" / target).exists(), target

    def test_experiments_covers_all_benchmark_files(self):
        """Every figure/table bench file appears in EXPERIMENTS.md."""
        text = (REPO / "EXPERIMENTS.md").read_text()
        for path in (REPO / "benchmarks").glob("test_fig*.py"):
            assert path.name in text, path.name
        for path in (REPO / "benchmarks").glob("test_table*.py"):
            if path.name == "test_table1_taxonomy.py":
                continue  # qualitative table, covered by DESIGN
            assert path.name in text, path.name

    def test_readme_mentions_paper_identity(self):
        text = (REPO / "README.md").read_text()
        assert "LiteForm" in text and "HPDC" in text
        assert "10.1145/3731545.3731574" in text
