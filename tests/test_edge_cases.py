"""Edge-case coverage: degenerate matrices through the full stack."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import CELLFormat, CSRFormat, ELLFormat
from repro.formats.base import as_csr
from repro.kernels import CELLSpMM, RowSplitCSRSpMM, SputnikSpMM, spmm_reference
from repro.core import matrix_cost_profiles, build_buckets


def _empty(rows=6, cols=9):
    return as_csr(sp.csr_matrix((rows, cols), dtype=np.float32))


def _single_entry():
    return as_csr(sp.csr_matrix(([3.0], ([2], [4])), shape=(5, 8), dtype=np.float32))


class TestEmptyMatrix:
    def test_formats(self):
        A = _empty()
        for cls, kw in [(CSRFormat, {}), (ELLFormat, {}), (CELLFormat, {"num_partitions": 2})]:
            f = cls.from_csr(A, **kw)
            assert f.nnz == 0
            assert f.to_csr().nnz == 0

    def test_kernels_produce_zero(self, device):
        A = _empty()
        B = np.ones((9, 4), dtype=np.float32)
        for kernel, fmt in [
            (RowSplitCSRSpMM(), CSRFormat.from_csr(A)),
            (CELLSpMM(), CELLFormat.from_csr(A)),
        ]:
            C, m = kernel.run(fmt, B, device)
            assert np.all(C == 0.0)
            assert m.time_s >= 0

    def test_cost_profile(self):
        profiles = matrix_cost_profiles(_empty(), 2)
        for p in profiles:
            assert p.cost(3, 32) == 0.0
            assert build_buckets(p, 32).cost == 0.0


class TestSingleEntry:
    def test_roundtrip_and_execute(self, device):
        A = _single_entry()
        B = np.arange(8 * 3, dtype=np.float32).reshape(8, 3)
        ref = spmm_reference(A, B)
        for kernel, fmt in [
            (RowSplitCSRSpMM(), CSRFormat.from_csr(A)),
            (SputnikSpMM(), CSRFormat.from_csr(A)),
            (CELLSpMM(), CELLFormat.from_csr(A)),
        ]:
            np.testing.assert_allclose(kernel.execute(fmt, B), ref)

    def test_cell_structure(self):
        f = CELLFormat.from_csr(_single_entry())
        buckets = list(f.iter_buckets())
        assert len(buckets) == 1
        _, b = buckets[0]
        assert b.width == 1 and b.num_rows == 1 and b.nnz == 1


class TestExtremeShapes:
    def test_single_column_matrix(self, device):
        A = as_csr(np.ones((40, 1), dtype=np.float32))
        B = np.full((1, 5), 2.0, dtype=np.float32)
        f = CELLFormat.from_csr(A, num_partitions=1)
        np.testing.assert_allclose(CELLSpMM().execute(f, B), spmm_reference(A, B))
        # partitions cannot exceed columns
        with pytest.raises(ValueError):
            CELLFormat.from_csr(A, num_partitions=2)

    def test_single_row_matrix(self, device):
        A = as_csr(np.ones((1, 64), dtype=np.float32))
        B = np.random.default_rng(0).standard_normal((64, 8)).astype(np.float32)
        for P, W in [(1, None), (4, 8)]:
            f = CELLFormat.from_csr(A, num_partitions=P, max_widths=W)
            np.testing.assert_allclose(
                CELLSpMM().execute(f, B), spmm_reference(A, B), rtol=1e-4, atol=1e-5
            )

    def test_fully_dense_matrix(self, device):
        rng = np.random.default_rng(1)
        A = as_csr(rng.standard_normal((32, 32)).astype(np.float32))
        B = rng.standard_normal((32, 4)).astype(np.float32)
        f = CELLFormat.from_csr(A, num_partitions=2)
        np.testing.assert_allclose(
            CELLSpMM().execute(f, B), spmm_reference(A, B), rtol=1e-3, atol=1e-3
        )
        assert f.padding_ratio < 0.01  # dense rows fill their buckets exactly

    def test_J_one_spmv(self, device):
        """SpMV is the J=1 corner of SpMM."""
        from repro.matrices import power_law_graph

        A = power_law_graph(300, 6, seed=1)
        x = np.random.default_rng(2).standard_normal((A.shape[1], 1)).astype(np.float32)
        f = CELLFormat.from_csr(A)
        np.testing.assert_allclose(
            CELLSpMM().execute(f, x), spmm_reference(A, x), rtol=1e-4, atol=1e-4
        )
        m = CELLSpMM().measure(f, 1, device)
        assert m.time_s > 0

    def test_rectangular_wide(self, device):
        A = as_csr(sp.random(50, 4000, density=0.01, random_state=3, dtype=np.float32))
        B = np.random.default_rng(4).standard_normal((4000, 4)).astype(np.float32)
        f = CELLFormat.from_csr(A, num_partitions=8)
        np.testing.assert_allclose(
            CELLSpMM().execute(f, B), spmm_reference(A, B), rtol=1e-3, atol=1e-3
        )

    def test_rectangular_tall(self, device):
        A = as_csr(sp.random(4000, 50, density=0.01, random_state=5, dtype=np.float32))
        B = np.random.default_rng(6).standard_normal((50, 4)).astype(np.float32)
        f = CELLFormat.from_csr(A, num_partitions=4)
        np.testing.assert_allclose(
            CELLSpMM().execute(f, B), spmm_reference(A, B), rtol=1e-3, atol=1e-3
        )


class TestNumericRobustness:
    def test_large_values(self):
        A = as_csr(sp.csr_matrix(([1e20, -1e20], ([0, 1], [0, 1])), shape=(2, 2)))
        B = np.eye(2, dtype=np.float32)
        C = CELLSpMM().execute(CELLFormat.from_csr(A), B)
        assert np.isfinite(C).all()

    def test_negative_values_roundtrip(self):
        A = as_csr(sp.csr_matrix(([-1.5, 2.5], ([0, 1], [1, 0])), shape=(2, 2)))
        f = CELLFormat.from_csr(A)
        assert abs(f.to_csr() - A).max() == 0
