"""Tests for the extension features: CLI, persistence, multi-GPU SpMM."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import LiteForm, generate_training_data
from repro.core.persistence import load_liteform, save_liteform
from repro.formats import CSRFormat
from repro.gpu.multi import (
    MultiGPUSimulator,
    MultiGPUSpec,
    liteform_compose_fn,
    partition_rows_by_nnz,
)
from repro.kernels import RowSplitCSRSpMM
from repro.matrices import (
    SuiteSparseLikeCollection,
    power_law_graph,
    write_matrix_market,
)


@pytest.fixture(scope="module")
def small_liteform():
    coll = SuiteSparseLikeCollection(size=8, max_rows=3000, seed=55)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


class TestPersistence:
    def test_roundtrip(self, tmp_path, small_liteform):
        path = tmp_path / "models.pkl"
        save_liteform(small_liteform, path)
        loaded = load_liteform(path)
        A = power_law_graph(500, 6, seed=1)
        original = small_liteform.compose(A, 32)
        restored = loaded.compose(A, 32)
        assert original.use_cell == restored.use_cell
        assert original.num_partitions == restored.num_partitions
        assert original.max_widths == restored.max_widths

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_liteform(LiteForm(), tmp_path / "x.pkl")

    def test_bad_file_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a model"}))
        with pytest.raises(ValueError):
            load_liteform(path)


class TestRowPartitioning:
    def test_covers_all_rows(self):
        A = power_law_graph(1000, 8, seed=2)
        shards = partition_rows_by_nnz(A, 4)
        assert shards[0][0] == 0 and shards[-1][1] == A.shape[0]
        for (a0, a1), (b0, b1) in zip(shards, shards[1:]):
            assert a1 == b0

    def test_balances_nonzeros(self):
        A = power_law_graph(4000, 10, seed=3)
        shards = partition_rows_by_nnz(A, 4)
        nnz = [A[r0:r1].nnz for r0, r1 in shards]
        assert max(nnz) < 1.6 * (A.nnz / 4)

    def test_single_shard(self):
        A = power_law_graph(100, 4, seed=4)
        assert partition_rows_by_nnz(A, 1) == [(0, 100)]

    def test_invalid(self):
        A = power_law_graph(100, 4, seed=4)
        with pytest.raises(ValueError):
            partition_rows_by_nnz(A, 0)


class TestMultiGPU:
    @staticmethod
    def csr_compose(sub, J):
        return CSRFormat.from_csr(sub), RowSplitCSRSpMM()

    def test_compute_scales_down_with_gpus(self):
        A = power_law_graph(20_000, 16, seed=5)
        t1 = MultiGPUSimulator(MultiGPUSpec(num_gpus=1)).measure(A, 128, self.csr_compose)
        t4 = MultiGPUSimulator(MultiGPUSpec(num_gpus=4)).measure(A, 128, self.csr_compose)
        assert t4.compute_s < t1.compute_s
        assert t1.broadcast_s == 0.0 and t4.broadcast_s > 0.0

    def test_communication_limits_small_inputs(self):
        """On a tiny matrix, broadcast/gather dominates and multi-GPU loses
        — the standard strong-scaling crossover."""
        A = power_law_graph(500, 6, seed=6)
        t1 = MultiGPUSimulator(MultiGPUSpec(num_gpus=1)).measure(A, 64, self.csr_compose)
        t8 = MultiGPUSimulator(MultiGPUSpec(num_gpus=8)).measure(A, 64, self.csr_compose)
        assert t8.total_s > t1.total_s

    def test_balance_metric(self):
        A = power_law_graph(8000, 10, seed=7)
        r = MultiGPUSimulator(MultiGPUSpec(num_gpus=4)).measure(A, 64, self.csr_compose)
        assert r.balance < 2.0  # nnz-balanced shards stay comparable

    def test_liteform_compose_fn(self, small_liteform):
        A = power_law_graph(3000, 10, seed=8)
        sim = MultiGPUSimulator(MultiGPUSpec(num_gpus=2))
        r = sim.measure(A, 32, liteform_compose_fn(small_liteform))
        assert r.total_s > 0
        assert len(r.shard_times_s) == 2

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            MultiGPUSpec(num_gpus=0)
        with pytest.raises(ValueError):
            MultiGPUSpec(interconnect_gbs=0.0)


class TestCLI:
    def test_info_on_standin(self, capsys):
        assert cli_main(["info", "gnn:cora"]) == 0
        out = capsys.readouterr().out
        assert "CELL natural" in out and "CSR" in out

    def test_compose_json(self, tmp_path, capsys, small_liteform):
        models = tmp_path / "m.pkl"
        save_liteform(small_liteform, models)
        A = power_law_graph(400, 6, seed=9)
        mtx = tmp_path / "a.mtx"
        write_matrix_market(A, mtx)
        assert cli_main(["compose", str(mtx), "--models", str(models), "--json", "-J", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"]["nnz"] == A.nnz
        assert payload["J"] == 64
        assert "simulated_time_ms" in payload

    def test_train_then_compose(self, tmp_path, capsys):
        models = tmp_path / "trained.pkl"
        assert cli_main(["train", str(models), "--train-size", "4", "--max-rows", "2500"]) == 0
        assert models.exists()
        assert cli_main(["compose", "gnn:cora", "--models", str(models)]) == 0
        assert "use_cell" in capsys.readouterr().out

    def test_missing_matrix_file(self):
        with pytest.raises(SystemExit):
            cli_main(["info", "/nonexistent/file.mtx"])
