"""Tests for repro.formats.base helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.base import (
    as_csr,
    ceil_pow2,
    ceil_pow2_exponent,
    padding_ratio,
)


class TestCeilPow2:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (7, 8), (8, 8), (9, 16), (1000, 1024)],
    )
    def test_scalar(self, n, expected):
        assert ceil_pow2(n) == expected

    def test_vectorized_matches_scalar(self):
        ns = np.arange(1, 200)
        out = ceil_pow2(ns)
        assert list(out) == [ceil_pow2(int(n)) for n in ns]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_pow2(0)
        with pytest.raises(ValueError):
            ceil_pow2(np.array([1, 0]))

    def test_exact_powers_are_fixed_points(self):
        for e in range(20):
            assert ceil_pow2(1 << e) == 1 << e


class TestCeilPow2Exponent:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)])
    def test_scalar(self, n, expected):
        assert ceil_pow2_exponent(n) == expected

    def test_consistent_with_ceil_pow2(self):
        for n in range(1, 300):
            assert 1 << ceil_pow2_exponent(n) == ceil_pow2(n)

    def test_bucket_membership_rule(self):
        # A row of length l belongs to bucket i with 2^(i-1) < l <= 2^i.
        for l in range(1, 500):
            i = ceil_pow2_exponent(l)
            assert l <= (1 << i)
            if i > 0:
                assert l > (1 << (i - 1))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_pow2_exponent(0)


class TestPaddingRatio:
    def test_no_padding(self):
        assert padding_ratio(100, 100) == 0.0

    def test_half_padding(self):
        assert padding_ratio(200, 100) == pytest.approx(0.5)

    def test_empty(self):
        assert padding_ratio(0, 0) == 0.0


class TestAsCsr:
    def test_sums_duplicates(self):
        A = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([1, 1]))), shape=(2, 3)
        )
        out = as_csr(A)
        assert out.nnz == 1
        assert out[0, 1] == pytest.approx(3.0)

    def test_drops_explicit_zeros(self):
        A = sp.csr_matrix(
            (np.array([0.0, 1.0], dtype=np.float32), np.array([0, 1]), np.array([0, 2, 2])),
            shape=(2, 2),
        )
        out = as_csr(A)
        assert out.nnz == 1

    def test_accepts_dense(self):
        D = np.eye(3, dtype=np.float32)
        out = as_csr(D)
        assert out.nnz == 3
        assert out.dtype == np.float32

    def test_sorted_indices(self, matrix_suite):
        for A in matrix_suite.values():
            assert A.has_sorted_indices
