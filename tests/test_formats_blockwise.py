"""Tests for BCSR and Blocked-ELL formats."""

import numpy as np
import pytest

from repro.formats import BCSRFormat, BlockedELLFormat
from repro.formats.base import as_csr
from repro.matrices import block_diagonal_matrix, power_law_graph


def roundtrip_equal(fmt, A):
    diff = fmt.to_csr() - A
    return diff.nnz == 0 or abs(diff).max() < 1e-6


class TestBCSR:
    @pytest.mark.parametrize("block", [(2, 2), (4, 4), (8, 8), (3, 5)])
    def test_roundtrip(self, matrix_suite, block):
        for name, A in matrix_suite.items():
            f = BCSRFormat.from_csr(A, block_shape=block)
            assert roundtrip_equal(f, A), (name, block)

    def test_non_divisible_dimensions(self):
        A = as_csr(np.ones((7, 11), dtype=np.float32))
        f = BCSRFormat.from_csr(A, block_shape=(4, 4))
        assert roundtrip_equal(f, A)
        assert f.shape == (7, 11)

    def test_dense_blocks_have_no_padding(self):
        A = block_diagonal_matrix(64, block_size=8, block_density=1.0, seed=0)
        f = BCSRFormat.from_csr(A, block_shape=(8, 8))
        # fully dense aligned blocks: padding only from block alignment
        assert f.padding_ratio < 0.05

    def test_sparse_matrix_has_high_padding(self):
        A = power_law_graph(600, 4, seed=1)
        f = BCSRFormat.from_csr(A, block_shape=(8, 8))
        # Section 2.1: padding ratio approaches 99% on sparse irregular input
        assert f.padding_ratio > 0.9

    def test_footprint_blowup_on_sparse_input(self):
        A = power_law_graph(600, 4, seed=1)
        csr_bytes = 2 * 4 * A.nnz
        f = BCSRFormat.from_csr(A, block_shape=(8, 8))
        assert f.footprint_bytes > 5 * csr_bytes

    def test_invalid_block_shape(self, tiny_matrix):
        with pytest.raises(ValueError):
            BCSRFormat.from_csr(tiny_matrix, block_shape=(0, 4))

    def test_num_blocks_counts_nonzero_tiles(self):
        A = as_csr(np.diag(np.ones(8, dtype=np.float32)))
        f = BCSRFormat.from_csr(A, block_shape=(4, 4))
        assert f.num_blocks == 2


class TestBlockedELL:
    @pytest.mark.parametrize("block", [(4, 4), (16, 16)])
    def test_roundtrip(self, matrix_suite, block):
        for name, A in matrix_suite.items():
            f = BlockedELLFormat.from_csr(A, block_shape=block)
            assert roundtrip_equal(f, A), (name, block)

    def test_uniform_tile_rows(self, matrix_suite):
        f = BlockedELLFormat.from_csr(matrix_suite["power_law"], block_shape=(8, 8))
        # every block-row stores the same number of tiles (the ELL property)
        assert f.block_cols.ndim == 2

    def test_padding_at_least_bcsr(self, matrix_suite):
        # Blocked-ELL pads both within tiles and across the tile row, so it
        # never stores fewer padded elements than BCSR at equal tile size.
        A = matrix_suite["power_law"]
        bell = BlockedELLFormat.from_csr(A, block_shape=(8, 8))
        bcsr = BCSRFormat.from_csr(A, block_shape=(8, 8))
        assert bell.footprint_bytes >= bcsr.blocks.nbytes
